#!/usr/bin/env python
"""Failure drill: run the full 55-HAU BCP application on a simulated
56-node cluster, sample failures from the Table-I-calibrated model, kill
a whole rack mid-run, and watch Meteor Shower recover — then contrast
with the 1-safe baseline, which loses data under the same burst.

Run:  python examples/burst_failure_drill.py
"""

from repro.apps import bcp
from repro.cluster import ClusterSpec
from repro.core import BaselineScheme, MSSrcAP
from repro.dsps import DSPSRuntime, RuntimeConfig
from repro.simulation import Environment

WINDOW = 120.0
FAIL_AT = 60.0


def run(scheme_name: str):
    env = Environment()
    app = bcp.build(seed=3, state_scale=0.25)
    if scheme_name == "baseline":
        scheme = BaselineScheme(checkpoint_period=30.0, enable_recovery=True)
    else:
        scheme = MSSrcAP(checkpoint_times=[25.0, 50.0], enable_recovery=True)
    runtime = DSPSRuntime(
        env,
        app,
        scheme,
        RuntimeConfig(
            seed=3,
            cluster=ClusterSpec(workers=55, spares=60, racks=4),
            channel_capacity=16,
            inbox_capacity=32,
        ),
    )
    runtime.start()

    def rack_burst():
        yield env.timeout(FAIL_AT)
        victims = runtime.dc.racks[1].fail_all("rack-power-failure")
        print(f"  t={env.now:.0f}s: rack1 power failure — {len(victims)} nodes down")

    env.process(rack_burst(), label="drill")
    env.run(until=WINDOW)

    probe = app.params["probe_prefix"]
    before = runtime.metrics.stage_throughput(probe, 0.0, FAIL_AT)
    after = runtime.metrics.stage_throughput(probe, FAIL_AT + 15.0, WINDOW)
    print(f"  throughput before failure: {before} tuples; after (+15s grace): {after}")

    if scheme_name == "baseline":
        print(f"  baseline outcome: {len(scheme.recovered)} HAUs recovered, "
              f"{len(scheme.unrecoverable)} UNRECOVERABLE (retained tuples lost)")
    else:
        for rec in scheme.recoveries:
            print(
                f"  Meteor Shower global rollback: {rec.haus_recovered} HAUs in "
                f"{rec.total:.1f}s (disk {rec.disk_io_seconds:.1f}s, "
                f"{rec.bytes_read / 1e6:.0f} MB of checkpoints read)"
            )
    alive = sum(1 for h in runtime.haus.values() if h.node.alive)
    print(f"  HAUs alive at the end: {alive}/55")


def main() -> None:
    print("=== MS-src+ap under a rack-scale burst ===")
    run("ms")
    print("\n=== Baseline (1-safe) under the same burst ===")
    run("baseline")
    print(
        "\nThe baseline recovers only HAUs whose upstream neighbours survived;"
        "\nvictims that lost their upstream's retained buffer are unrecoverable"
        "\n— the failure mode that motivates Meteor Shower (paper §II-B1)."
    )


if __name__ == "__main__":
    main()
