#!/usr/bin/env python
"""Regenerate the paper's Table I failure model and run a year of sampled
failures against a simulated 55-worker cluster to show what a DSPS is up
against in a commodity data center.

Run:  python examples/failure_model_report.py
"""

import numpy as np

from repro.cluster import ClusterSpec, DataCenter
from repro.failures import ABE_CLUSTER, ClusterFailureModel, FailureInjector, GOOGLE_DC
from repro.failures.injector import sample_plan
from repro.failures.model import SECONDS_PER_YEAR
from repro.harness import format_table
from repro.simulation import Environment


def table1() -> None:
    for profile in (GOOGLE_DC, ABE_CLUSTER):
        model = ClusterFailureModel(profile, rng=np.random.default_rng(0))
        expected = model.expected_afn100()
        rows = [[cat, f"{val:.1f}"] for cat, val in sorted(expected.items())]
        print(format_table(["cause", "AFN100"], rows, title=f"\n{profile.name}"))
        _rows, stats = model.sample_year()
        print(f"one sampled year: {stats['total_node_failures']:.0f} node failures, "
              f"{stats['burst_event_share']:.1%} of events in correlated bursts")


def cluster_year() -> None:
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=55, spares=8, racks=4))
    plan = sample_plan(np.random.default_rng(42), dc, horizon=SECONDS_PER_YEAR)
    print(f"\nSampled failure plan for a 55-worker year: "
          f"{plan.single_count} single-node failures, {plan.burst_count} rack bursts")
    injector = FailureInjector(env, dc, plan)
    injector.start()
    env.run(until=SECONDS_PER_YEAR)
    survivors = len(dc.alive_workers())
    print(f"Without fault tolerance: {survivors}/55 workers still alive after a year;")
    print(f"{len(injector.injected)} failure events actually landed.")
    bursts = [e for e in injector.injected if e.kind == "rack"]
    if bursts:
        print(f"First rack burst at t={bursts[0].at / 86400:.0f} days — any 1-safe "
              "scheme running then would have lost data (see bench_ablation_burst).")


if __name__ == "__main__":
    table1()
    cluster_year()
