#!/usr/bin/env python
"""Quickstart: build a small stream application, run it under Meteor
Shower (MS-src+ap), inject a correlated two-node failure, and verify
exactly-once recovery.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterSpec
from repro.core import MSSrcAP
from repro.dsps import (
    DSPSRuntime,
    QueryGraph,
    RuntimeConfig,
    StreamApplication,
)
from repro.dsps.operator import Emit, Operator
from repro.dsps.testing import IntervalSource, VerifySink, WindowSum
from repro.simulation import Environment


def build_app(holder: dict) -> StreamApplication:
    """source -> window-sum -> doubler -> sink."""

    class Doubler(Operator):
        def on_tuple(self, port, tup):
            return [Emit(payload=tup.payload * 2, size=tup.size, key=tup.key)]

    def make_sink():
        sink = VerifySink()
        holder["sink"] = sink
        return [sink]

    g = QueryGraph()
    g.add_hau("source", lambda: [IntervalSource(count=200, interval=0.05)], is_source=True)
    g.add_hau("window", lambda: [WindowSum(window=10)])
    g.add_hau("double", lambda: [Doubler()])
    g.add_hau("sink", make_sink, is_sink=True)
    g.connect("source", "window")
    g.connect("window", "double")
    g.connect("double", "sink")
    return StreamApplication(name="quickstart", graph=g)


def run(inject_failure: bool) -> list:
    env = Environment()
    holder: dict = {}
    app = build_app(holder)
    scheme = MSSrcAP(checkpoint_times=[3.0, 7.0], enable_recovery=inject_failure)
    runtime = DSPSRuntime(
        env,
        app,
        scheme,
        RuntimeConfig(seed=7, cluster=ClusterSpec(workers=4, spares=4, racks=2)),
    )
    runtime.start()

    if inject_failure:

        def burst():
            yield env.timeout(8.0)
            print(f"  t={env.now:.1f}s: killing the nodes hosting 'window' and 'double'")
            runtime.haus["window"].node.fail("demo-burst")
            runtime.haus["double"].node.fail("demo-burst")

        env.process(burst())

    env.run(until=60.0)

    if inject_failure:
        for rec in scheme.recoveries:
            print(
                f"  recovered {rec.haus_recovered} HAUs in {rec.total:.2f}s "
                f"(disk {rec.disk_io_seconds:.2f}s, reconnect {rec.reconnect_seconds:.2f}s, "
                f"{rec.bytes_read / 1e6:.1f} MB read)"
            )
    print(f"  sink received {holder['sink'].received_count} tuples")
    return holder["sink"].payload_log


def main() -> None:
    print("Clean run (no failures):")
    clean = run(inject_failure=False)

    print("\nRun with a correlated burst failure at t=8s:")
    failed = run(inject_failure=True)

    print("\nExactly-once check:", "PASS" if clean == failed else "FAIL")
    assert clean == failed, "recovered output differs from the failure-free run!"
    print(f"First window sums: {clean[:5]}")


if __name__ == "__main__":
    main()
