#!/usr/bin/env python
"""Application-aware checkpointing in action.

Runs SignalGuru (the heaviest-state application) twice with identical
checkpoint budgets:

* MS-src+ap   — checkpoints at fixed instants, oblivious to state;
* MS-src+ap+aa — profiles the motion filters' bursty state, enters alert
  mode when the aggregate drops below smax, and fires each round at the
  first rising turning point (aggregated ICR > 0).

Prints the profiling outcome, each round's trigger, and the checkpointed
dynamic state of both runs — the aa rounds should be much lighter.

Run:  python examples/aware_checkpointing.py
"""

from repro.harness import ExperimentConfig, run_experiment
from repro.harness.figures import default_app_params

WINDOW = 150.0
WARMUP = 30.0
ROUNDS = 2


def run(scheme_name: str):
    extra = WINDOW / ROUNDS if scheme_name == "ms-src+ap+aa" else 0.0
    cfg = ExperimentConfig(
        app="signalguru",
        scheme=scheme_name,
        n_checkpoints=ROUNDS,
        window=WINDOW,
        warmup=WARMUP + extra,  # aa profiles through one extra period
        app_params=default_app_params("signalguru", WINDOW),
    )
    return run_experiment(cfg, trace_state=True)


def dynamic_ckpt_mb(res) -> list:
    sizes = []
    for log in res.checkpoint_logs:
        dyn = sum(bd.state_bytes for h, bd in log.haus.items() if h.startswith("M"))
        if log.haus:
            sizes.append(dyn / 1e6)
    return sizes


def main() -> None:
    print("=== MS-src+ap (fixed-time checkpoints) ===")
    ap = run("ms-src+ap")
    ap_sizes = dynamic_ckpt_mb(ap)
    print(f"  checkpointed motion-filter state per round: "
          f"{[f'{s:.0f}MB' for s in ap_sizes]}")

    print("\n=== MS-src+ap+aa (application-aware) ===")
    aa = run("ms-src+ap+aa")
    scheme = aa.scheme
    print(f"  profiling: dynamic HAUs = {scheme.dynamic_haus}")
    print(f"  smax = {scheme.profile_result.smax / 1e6:.0f} MB "
          f"(smin {scheme.profile_result.smin / 1e6:.0f} MB, "
          f"relaxation {scheme.profile_result.relaxation:.2f})")
    for t, reason in scheme.decisions:
        print(f"  round fired at t={t:.1f}s because: "
              f"{'aggregated ICR turned positive in alert mode' if reason == 'icr' else 'period-end fallback'}")
    aa_sizes = dynamic_ckpt_mb(aa)
    print(f"  checkpointed motion-filter state per round: "
          f"{[f'{s:.0f}MB' for s in aa_sizes]}")

    series = aa.state_trace.series("M")
    values = [s for (_t, s) in series]
    avg = sum(values) / len(values) / 1e6
    peak = max(values) / 1e6
    print(f"\nMotion-filter state over the run: avg {avg:.0f} MB, peak {peak:.0f} MB")
    if aa_sizes:
        print(f"Aware rounds averaged {sum(aa_sizes)/len(aa_sizes):.0f} MB — below the "
              f"average and far below the peak a fixed-time round can hit.")
    if ap_sizes:
        print(f"(This run's fixed-time rounds drew {[f'{s:.0f}MB' for s in ap_sizes]} — "
              "fixed timing is a lottery between the minima and the peak;")
        print(" aware timing is anchored near the minima every period.)")
    print("Smaller checkpoints mean shorter writes, less storage contention")
    print("and (Fig. 16) proportionally faster worst-case recovery.")


if __name__ == "__main__":
    main()
