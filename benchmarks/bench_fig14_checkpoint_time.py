"""Fig. 14: checkpoint time and its breakdown.

Per app: MS-src total wall clock (token propagation overlaps individual
checkpoints), and for MS-src+ap / MS-src+ap+aa / Oracle the slowest
individual checkpoint split into token collection / disk I/O / other.

Paper (600 s windows): TMI 61.9 / 22.1 / 6.7 / 5.8 s; BCP 82.9 / 55.7 /
29.0 / 26.4 s; SignalGuru 151.7 / 133.2 / 27.2 / 24.6 s.  Expected
shape: disk I/O dominates; +ap cuts time vs MS-src; +aa cuts it hard and
lands near the Oracle.
"""

from repro.harness import format_table
from repro.harness.figures import fig14_checkpoint_time


def test_fig14_checkpoint_time(benchmark):
    data = benchmark.pedantic(fig14_checkpoint_time, rounds=1, iterations=1)
    for app, per_scheme in data.items():
        rows = []
        for scheme in ("ms-src", "ms-src+ap", "ms-src+ap+aa", "oracle"):
            d = per_scheme.get(scheme, {})
            rows.append([
                scheme,
                f"{d.get('token_collection', float('nan')):.2f}",
                f"{d.get('disk_io', float('nan')):.2f}",
                f"{d.get('other', float('nan')):.2f}",
                f"{d.get('total', float('nan')):.2f}",
            ])
        print("\n" + format_table(
            ["scheme", "token-collect", "disk I/O", "other", "total (s)"],
            rows, title=f"Fig. 14 — checkpoint time, {app}",
        ))

        total = {s: per_scheme[s]["total"] for s in per_scheme if per_scheme[s].get("total") == per_scheme[s].get("total")}
        if {"ms-src", "ms-src+ap", "ms-src+ap+aa", "oracle"} <= set(total):
            # parallel+async is faster than the serial token cascade
            assert total["ms-src+ap"] < total["ms-src"]
            assert total["ms-src+ap+aa"] <= total["ms-src"]
            ap = per_scheme["ms-src+ap"]
            # the I/O side of the breakdown dominates the pure-CPU side
            assert ap["disk_io"] >= ap["other"]
            # The aa-vs-fixed-time storage-I/O comparison is asserted on
            # BCP, whose state dynamics are slow enough for the scaled-down
            # fast-mode windows to resolve; see EXPERIMENTS.md for the
            # TMI/SignalGuru discussion.
            if app == "bcp":
                aa = per_scheme["ms-src+ap+aa"]
                oracle = per_scheme["oracle"]
                assert aa["disk_io"] <= ap["disk_io"] * 1.30
                assert aa["disk_io"] <= oracle["disk_io"] * 2.5
