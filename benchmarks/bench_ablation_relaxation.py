"""A1 ablation: sensitivity of application-aware checkpointing to the
relaxation factor bound.

§III-C2 bounds the relaxation factor to a minimum of 20% "so that there
are more occasions where the state size stays below smax in each
period".  This bench replays one BCP state trace through the profiling
machinery with different bounds and reports (a) the derived smax, (b)
the fraction of time alert mode could engage, and (c) the expected
checkpointed size if the round fires at the first below-threshold
local minimum per period — showing the trade-off: too tight a bound
misses minima (falls back to period-end checkpoints), too loose a bound
fires early at larger states.
"""

from repro.harness.experiment import (
    DEFAULT_WINDOW,
    ExperimentConfig,
    run_experiment,
)
from repro.harness import format_table
from repro.harness.figures import default_app_params
from repro.state import StateProfile

ALPHAS = (0.0, 0.1, 0.2, 0.4, 0.8)


def trace_once():
    cfg = ExperimentConfig(
        app="bcp", scheme="none",
        app_params=default_app_params("bcp", DEFAULT_WINDOW),
    )
    res = run_experiment(cfg, trace_state=True)
    return res.state_trace


def analyze(trace, alpha: float, period: float):
    profile = StateProfile(checkpoint_period=period, min_relaxation=alpha,
                           min_dynamic_bytes=1e6, startup_skip=0.25)
    for hau_id, samples in trace.samples.items():
        for t, s in samples:
            profile.observe(hau_id, t, float(s))
    result = profile.result()
    agg = profile.aggregate_series(result.dynamic_haus)
    below = sum(1 for (_t, s) in agg if s < result.smax)
    frac_below = below / max(1, len(agg))
    # expected checkpointed size: per period, the first local minimum
    # below smax (else the period-end value — the fallback)
    t0 = agg[0][0] if agg else 0.0
    sizes = []
    p = t0
    horizon = agg[-1][0] if agg else 0.0
    while p < horizon:
        window = [(t, s) for (t, s) in agg if p <= t < p + period]
        picked = None
        for (_ta, sa), (_tb, sb), (_tc, sc) in zip(window, window[1:], window[2:]):
            if sb < result.smax and sb <= sa and sb <= sc:
                picked = sb
                break
        if picked is None and window:
            picked = window[-1][1]
        if picked is not None:
            sizes.append(picked)
        p += period
    mean_size = sum(sizes) / len(sizes) if sizes else 0.0
    return result.smax, frac_below, mean_size


def test_ablation_relaxation(benchmark):
    trace = benchmark.pedantic(trace_once, rounds=1, iterations=1)
    period = DEFAULT_WINDOW / 3.0
    rows = []
    results = {}
    for alpha in ALPHAS:
        smax, frac, size = analyze(trace, alpha, period)
        results[alpha] = (smax, frac, size)
        rows.append([f"{alpha:.1f}", f"{smax / 1e6:.1f}", f"{frac:.0%}", f"{size / 1e6:.1f}"])
    print("\n" + format_table(
        ["min relaxation", "smax (MB)", "time below smax", "expected ckpt size (MB)"],
        rows, title="A1 — relaxation-factor ablation (BCP state trace)",
    ))
    # a looser bound gives (weakly) more opportunity to enter alert mode
    assert results[0.8][1] >= results[0.0][1]
    # and smax is monotone in the bound
    assert results[0.8][0] >= results[0.2][0] >= results[0.0][0]
