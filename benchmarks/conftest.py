"""Shared state for the benchmark suite.

The Fig. 12 / Fig. 13 / headline benches all consume the same
(expensive) scheme x checkpoint-count sweep; it is computed once per
session and cached here.  Set ``REPRO_FULL=1`` for paper-scale windows
(600 s); the default fast mode uses 150 s windows with state sizes
scaled accordingly (see DESIGN.md).
"""

import os

import pytest

from repro.harness.figures import fig12_fig13_sweep

_CACHE: dict = {}

SWEEP_COUNTS = [0, 1, 3, 5, 8]
SWEEP_APPS = ["tmi", "bcp", "signalguru"]


def get_sweep():
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = fig12_fig13_sweep(
            apps=SWEEP_APPS, checkpoint_counts=SWEEP_COUNTS
        )
    return _CACHE["sweep"]


@pytest.fixture(scope="session")
def sweep():
    return get_sweep()


def pytest_configure(config):
    mode = "FULL (600s windows)" if os.environ.get("REPRO_FULL") else "fast (150s windows)"
    print(f"\n[repro benchmarks] measurement mode: {mode}")
