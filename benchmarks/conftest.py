"""Shared fixtures for the benchmark suite.

The Fig. 12 / Fig. 13 / headline benches all consume the same
(expensive) scheme x checkpoint-count sweep; it is computed once per
session through the session-scoped ``get_sweep`` fixture (no module
globals, so ``pytest -p no:cacheprovider`` reruns and parallel sessions
stay independent).  Set ``REPRO_FULL=1`` for paper-scale windows
(600 s); the default fast mode uses 150 s windows with state sizes
scaled accordingly (see DESIGN.md).

Set ``REPRO_ARTIFACT_DIR`` to a directory to make benches write their
machine-readable results (``BENCH_*.json``) and trace artifacts there —
this is how CI collects the smoke-bench output for the regression gate.

The sweep fans out through :func:`repro.harness.sweep.run_cells`:
``REPRO_JOBS`` sets the worker count (default: all cores) and
``REPRO_CACHE_DIR`` relocates the content-addressed result cache
(default ``.repro-cache/`` at the repo root).  Cached cells are
byte-identical to freshly computed ones, so the gate numbers do not
depend on cache state; the per-session cache traffic is recorded in the
``BENCH_headline.json`` artifact under ``sweep_stats``.
"""

import json
import os

import pytest

from repro.harness.figures import fig12_fig13_sweep
from repro.harness.sweep import SweepStats

SWEEP_COUNTS = [0, 1, 3, 5, 8]
SWEEP_APPS = ["tmi", "bcp", "signalguru"]


@pytest.fixture(scope="session")
def sweep_cache():
    """Session-lifetime storage for the expensive sweep result."""
    return {}


@pytest.fixture(scope="session")
def sweep_stats():
    """Runner/cache statistics accumulated by the session's sweeps."""
    return SweepStats()


@pytest.fixture(scope="session")
def get_sweep(sweep_cache, sweep_stats):
    """A compute-or-cached thunk, so the first bench to call it still
    times the real computation under ``benchmark.pedantic``."""

    def _get():
        if "sweep" not in sweep_cache:
            sweep_cache["sweep"] = fig12_fig13_sweep(
                apps=SWEEP_APPS, checkpoint_counts=SWEEP_COUNTS, stats=sweep_stats
            )
        return sweep_cache["sweep"]

    return _get


@pytest.fixture(scope="session")
def sweep(get_sweep):
    return get_sweep()


@pytest.fixture(scope="session")
def artifact_dir():
    """Where to drop machine-readable bench output; None disables it."""
    path = os.environ.get("REPRO_ARTIFACT_DIR", "")
    if not path:
        return None
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def write_artifact(artifact_dir):
    """Writer for ``BENCH_*.json`` artifacts (no-op without the env var)."""

    def _write(name: str, payload) -> str | None:
        if artifact_dir is None:
            return None
        path = os.path.join(artifact_dir, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    return _write


def pytest_configure(config):
    mode = "FULL (600s windows)" if os.environ.get("REPRO_FULL") else "fast (150s windows)"
    print(f"\n[repro benchmarks] measurement mode: {mode}")
