"""Table I: commodity data-center failure models (AFN100).

Regenerates the per-cause Annual Failure Number per 100 nodes for the
Google-like 2400-node data center and the NCSA Abe cluster, plus the
correlated-burst share ("about 10% failures are part of a correlated
burst").

Paper values: Network >300 (Google) / ~250 (Abe); Environment 100~150;
Ooops ~100 / ~40; Disk 1.7~8.6 / 2~6; Memory 1.3 / NA.
"""

from repro.harness import format_table
from repro.harness.figures import table1_failure_model

PAPER = {
    "Google's Data Center": {
        "Network": ">300", "Environment": "100~150", "Ooops": "~100",
        "Disk": "1.7~8.6", "Memory": "1.3",
    },
    "Abe Cluster": {
        "Network": "~250", "Environment": "NA", "Ooops": "~40",
        "Disk": "2~6", "Memory": "NA",
    },
}


def test_table1_failure_model(benchmark):
    data = benchmark.pedantic(table1_failure_model, rounds=1, iterations=1)
    for cluster, payload in data.items():
        rows = []
        for cat in ("Network", "Environment", "Ooops", "Disk", "Memory"):
            if cat not in payload["expected"]:
                continue
            lo, hi = payload["ranges"].get(cat, (float("nan"), float("nan")))
            rows.append(
                [cat, f"{payload['expected'][cat]:.1f}", f"{lo:.1f}~{hi:.1f}",
                 PAPER[cluster].get(cat, "NA")]
            )
        print("\n" + format_table(
            ["Failure Source", "AFN100 (expected)", "AFN100 (sampled years)", "paper"],
            rows,
            title=f"Table I — {cluster}",
        ))
        print(f"correlated-burst share of events: {payload['burst_event_share']:.1%} (paper: ~10%)")

    google = data["Google's Data Center"]["expected"]
    assert google["Network"] > 300.0
    assert 100.0 <= google["Environment"] <= 150.0
    assert 0.02 <= data["Google's Data Center"]["burst_event_share"] <= 0.25
