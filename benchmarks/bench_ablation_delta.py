"""A4 ablation: delta-checkpointing composed with MS-src+ap (paper §V).

"We believe that distributed checkpointing and delta-checkpointing
complement Meteor Shower's application-aware checkpointing and could be
applied jointly."  This bench quantifies the composition on BCP:

* common case: bytes shipped per checkpoint round (full vs delta);
* recovery: bytes read back (one object vs the full+delta chain).
"""

from repro.core import DeltaPolicy
from repro.harness import format_table
from repro.harness.experiment import (
    DEFAULT_WARMUP,
    DEFAULT_WINDOW,
)
from repro.harness.figures import default_app_params


def run_variant(delta: bool):
    from repro.apps import APPS
    from repro.cluster.topology import ClusterSpec
    from repro.core import MSSrcAP
    from repro.dsps.runtime import DSPSRuntime, RuntimeConfig
    from repro.simulation import Environment

    params = default_app_params("bcp", DEFAULT_WINDOW)
    times = [DEFAULT_WARMUP + (k + 0.5) * DEFAULT_WINDOW / 4 for k in range(4)]
    scheme = MSSrcAP(
        checkpoint_times=times,
        delta=DeltaPolicy(full_every=4) if delta else None,
        enable_recovery=True,
    )
    env = Environment()
    app = APPS["bcp"].build(seed=1, **params)
    rt = DSPSRuntime(
        env, app, scheme,
        RuntimeConfig(seed=1, cluster=ClusterSpec(workers=55, spares=60, racks=4),
                      channel_capacity=8, inbox_capacity=16),
    )
    rt.start()

    fail_at = DEFAULT_WARMUP + 0.95 * DEFAULT_WINDOW  # after several rounds

    def killer():
        yield env.timeout(fail_at)
        for node_id in sorted({h.node.node_id for h in rt.haus.values()}):
            node = rt.dc.node(node_id)
            if node.alive:
                node.fail("ablation")

    env.process(killer())
    env.run(until=DEFAULT_WARMUP + DEFAULT_WINDOW + 40.0)

    per_round_bytes = [
        sum(bd.state_bytes for bd in log.haus.values())
        for log in scheme.checkpoint_logs()
        if log.complete
    ]
    rec = scheme.recoveries[0] if scheme.recoveries else None
    return per_round_bytes, rec


def test_ablation_delta(benchmark):
    def both():
        return {"full": run_variant(False), "delta": run_variant(True)}

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = []
    for name, (rounds, rec) in results.items():
        shipped = sum(rounds) / 1e6 if rounds else float("nan")
        read = rec.bytes_read / 1e6 if rec else float("nan")
        total = rec.total if rec else float("nan")
        rows.append([name, len(rounds), f"{shipped:.1f}", f"{read:.1f}", f"{total:.2f}"])
    print("\n" + format_table(
        ["variant", "rounds done", "MB shipped (all rounds)", "MB read at recovery", "recovery (s)"],
        rows, title="A4 — delta-checkpointing composed with MS-src+ap (BCP)",
    ))

    full_rounds, full_rec = results["full"]
    delta_rounds, delta_rec = results["delta"]
    assert full_rec is not None and delta_rec is not None
    if len(full_rounds) >= 2 and len(delta_rounds) >= 2:
        # the common case ships less under deltas...
        assert sum(delta_rounds) < sum(full_rounds)
        # ...and the recovery reads at least as much (the chain)
        assert delta_rec.bytes_read >= 0.8 * full_rec.bytes_read
