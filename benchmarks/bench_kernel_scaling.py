"""Kernel scaling: events/sec at 100/1k/10k HAUs x scheduler x batching.

One synthetic aligned-chain app (S -> W -> A -> K, equal replicas) is
run at three sizes under every {heap, calendar} x {unbatched, batched}
combination, timing the ``env.run`` phase only (graph construction is
the same work in every mode and would dilute the ratios).  Recorded
per cell: wall seconds, kernel events popped, tuples processed, and
the derived events/sec + tuples/sec rates.

Hard assertions are determinism facts: the same tuples drain in every
mode at a given size, the two schedulers pop identical event counts
for the same configuration, and batching strictly reduces the kernel
event count.  The *rates* are host-dependent and therefore gated
warn-only by ``check_regression.py --scaling`` against the committed
``benchmarks/BENCH_scaling_baseline.json`` — including the headline
claim that batched mode sustains >= 3x the unbatched tuple throughput
at the 10k-HAU point.
"""

import gc
import os
import time

from repro.apps.synth import build
from repro.cluster.topology import ClusterSpec
from repro.dsps.runtime import CheckpointScheme, DSPSRuntime, RuntimeConfig
from repro.simulation.core import Environment

SIZES = (100, 1_000, 10_000)  # total HAUs (4 stages x replicas)
SCHEDULERS = ("heap", "calendar")
QUANTA = (0.0, 0.25)
WINDOW = 1.25  # covers the 0.12 s burst plus three quantum-deep flush waves

# repeat cheap cells to shed scheduler noise; the 10k cells run once
ROUNDS = {100: 3, 1_000: 2, 10_000: 1}


def _topology(replicas: int) -> dict:
    return {
        "stages": [
            {"name": "S", "kind": "source", "replicas": replicas,
             "count": 24, "interval": 0.005, "size": 4096},
            {"name": "W", "kind": "map", "replicas": replicas, "size": 4096},
            {"name": "A", "kind": "map", "replicas": replicas, "size": 4096},
            {"name": "K", "kind": "sink", "replicas": replicas},
        ],
        "edges": [
            {"src": "S", "dst": "W", "pairing": "aligned"},
            {"src": "W", "dst": "A", "pairing": "aligned"},
            {"src": "A", "dst": "K", "pairing": "aligned"},
        ],
    }


def _run_cell(haus: int, scheduler: str, quantum: float) -> dict:
    replicas = haus // 4
    best_wall = float("inf")
    popped = set()
    tuples = 0
    build_wall = 0.0
    for _ in range(ROUNDS[haus]):
        t0 = time.perf_counter()  # repro-lint: disable=DET001 (host timing, not simulated)
        env = Environment(scheduler=scheduler)
        app = build(seed=1, topology=_topology(replicas))
        rt = DSPSRuntime(
            env,
            app,
            CheckpointScheme(),
            RuntimeConfig(
                seed=1,
                cluster=ClusterSpec(workers=max(4, replicas // 4), spares=2, racks=4),
                channel_capacity=16,
                inbox_capacity=32,
                batch_quantum=quantum,
            ),
        )
        rt.start()
        # the timed region measures the kernel, not the allocator: collect
        # construction garbage now and keep the collector out of the loop
        gc.collect()
        gc.freeze()
        gc.disable()
        t1 = time.perf_counter()  # repro-lint: disable=DET001 (host timing, not simulated)
        env.run(until=WINDOW)
        wall = time.perf_counter() - t1  # repro-lint: disable=DET001 (host timing, not simulated)
        gc.enable()
        gc.unfreeze()
        popped.add(env.events_popped)
        tuples = sum(h.tuples_processed for h in rt.haus.values())
        if wall < best_wall:
            best_wall = wall
            build_wall = t1 - t0
    assert len(popped) == 1, f"events_popped varied across identical runs: {popped}"
    n_popped = popped.pop()
    return {
        "haus": haus,
        "scheduler": scheduler,
        "batch_quantum": quantum,
        "wall_seconds": best_wall,
        "build_seconds": build_wall,
        "events_popped": n_popped,
        "tuples": tuples,
        "events_per_sec": n_popped / best_wall,
        "tuples_per_sec": tuples / best_wall,
    }


def test_kernel_scaling(write_artifact):
    cells = [
        _run_cell(haus, scheduler, quantum)
        for haus in SIZES
        for scheduler in SCHEDULERS
        for quantum in QUANTA
    ]
    by_key = {(c["haus"], c["scheduler"], c["batch_quantum"]): c for c in cells}

    speedups = []
    for haus in SIZES:
        # the drained workload is a model fact: identical across every mode
        drained = {c["tuples"] for c in cells if c["haus"] == haus}
        assert len(drained) == 1, f"{haus} HAUs: tuple drain varied: {drained}"
        assert drained.pop() == 3 * 24 * (haus // 4)  # W + A + K, full drain
        for quantum in QUANTA:
            # scheduler equivalence: same event count, only its cost differs
            heap_c = by_key[(haus, "heap", quantum)]
            cal_c = by_key[(haus, "calendar", quantum)]
            assert heap_c["events_popped"] == cal_c["events_popped"], (
                f"{haus} HAUs q={quantum}: calendar popped "
                f"{cal_c['events_popped']} vs heap {heap_c['events_popped']}"
            )
        for scheduler in SCHEDULERS:
            unb = by_key[(haus, scheduler, 0.0)]
            bat = by_key[(haus, scheduler, QUANTA[1])]
            assert bat["events_popped"] < unb["events_popped"]
            speedups.append({
                "haus": haus,
                "scheduler": scheduler,
                "batched_speedup": bat["tuples_per_sec"] / unb["tuples_per_sec"],
                "event_reduction": unb["events_popped"] / bat["events_popped"],
            })

    header = f"{'haus':>6} {'sched':>8} {'quantum':>7} {'wall':>7} {'popped':>9} {'ev/s':>10} {'tup/s':>9}"
    lines = [header]
    for c in cells:
        lines.append(
            f"{c['haus']:>6} {c['scheduler']:>8} {c['batch_quantum']:>7.2f} "
            f"{c['wall_seconds']:>6.2f}s {c['events_popped']:>9} "
            f"{c['events_per_sec']:>10,.0f} {c['tuples_per_sec']:>9,.0f}"
        )
    for s in speedups:
        lines.append(
            f"  {s['haus']} HAUs / {s['scheduler']}: batched {s['batched_speedup']:.2f}x "
            f"tuple throughput, {s['event_reduction']:.2f}x fewer kernel events"
        )
    print("\n" + "\n".join(lines))

    write_artifact("BENCH_kernel_scaling.json", {
        "mode": "full" if os.environ.get("REPRO_FULL") else "fast",
        "window_seconds": WINDOW,
        "cells": cells,
        "speedups": speedups,
    })
