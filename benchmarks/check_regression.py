#!/usr/bin/env python3
"""CI throughput/latency regression gate for the headline bench.

Compares a freshly produced ``BENCH_headline.json`` (written by
``bench_headline.py`` when ``REPRO_ARTIFACT_DIR`` is set) against the
checked-in ``benchmarks/BENCH_baseline.json``.  The simulation is
deterministic, so per-cell numbers should match the baseline exactly;
the tolerances absorb intentional model changes small enough not to
matter.

Two gates, each per cell:

* **throughput** — drops more than ``--tolerance`` (default 15%) below
  the baseline fail;
* **latency** — increases more than ``--latency-tolerance`` (default
  15%) above the baseline fail.  Baseline cells without a ``latency``
  value are noted and skipped, so the gate is backward compatible with
  throughput-only baselines.

A third, **warn-only** gate covers the kernel microbenchmark
(``BENCH_kernel.json``, written next to the headline report): wall-clock
growth or ``events_per_sec`` drop beyond ``--wall-tolerance`` (default
50% — host timing varies wildly across runners) prints a warning but
never changes the exit status.  ``events_popped`` drift, by contrast, is
deterministic and *does* fail: the engine doing a different amount of
work for the same config means the event order changed.

A fourth, also **warn-only**, gate tracks each cell's
``critical_path_seconds`` (the slowest per-round checkpoint critical
path, reconstructed from the cell's trace): growth beyond
``--critical-path-tolerance`` (default 25%) prints a warning.  The
quantity is deterministic, but it measures the *checkpoint wave's*
shape rather than the paper's headline throughput/latency, so it warns
rather than fails while the profiler is young.

Usage::

    python benchmarks/check_regression.py artifacts/BENCH_headline.json \
        [--baseline benchmarks/BENCH_baseline.json] [--tolerance 0.15] \
        [--latency-tolerance 0.15] [--kernel artifacts/BENCH_kernel.json] \
        [--wall-tolerance 0.5]

Exit status: 0 = no regression, 1 = throughput regression / mode
mismatch / events_popped drift, 2 = bad invocation / unreadable input,
3 = latency-only regression (throughput held; CI can choose to warn
instead of fail), 4 = a report parses but one of its cells is missing a
gate field (``app`` / ``scheme`` / ``n_checkpoints`` / ``throughput``)
— the baseline or report needs regenerating, nothing was compared.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"

Cell = tuple[str, str, int]  # (app, scheme, n_checkpoints)

EXIT_OK = 0
EXIT_THROUGHPUT = 1
EXIT_BAD_INVOCATION = 2
EXIT_LATENCY = 3
EXIT_BAD_BASELINE = 4

# Every cell must carry these for the gates to have anything to compare.
REQUIRED_CELL_FIELDS = ("app", "scheme", "n_checkpoints", "throughput")


class MalformedReportError(ValueError):
    """A report parsed, but a cell is missing/mistyping a gate field."""


def validate_cells(report: dict, path: str) -> None:
    """Fail loudly (not with a KeyError traceback) on malformed cells."""
    for i, c in enumerate(report["cells"]):
        if not isinstance(c, dict):
            raise MalformedReportError(
                f"{path}: cells[{i}] is not an object — regenerate the report"
            )
        missing = [f for f in REQUIRED_CELL_FIELDS if f not in c]
        if missing:
            raise MalformedReportError(
                f"{path}: cells[{i}] is missing gate field(s) {', '.join(missing)} "
                f"(has: {', '.join(sorted(c)) or 'nothing'}) — regenerate the "
                "report with bench_headline.py, or restore the committed baseline"
            )
        try:
            int(c["n_checkpoints"])
            float(c["throughput"])
        except (TypeError, ValueError) as exc:
            raise MalformedReportError(
                f"{path}: cells[{i}] ({c.get('app')}/{c.get('scheme')}) has a "
                f"non-numeric gate field: {exc}"
            ) from exc


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if "cells" not in report or "mode" not in report:
        raise ValueError(f"{path}: not a BENCH_headline report (missing 'cells'/'mode')")
    return report


def cell_values(report: dict, field: str) -> dict[Cell, float]:
    """Per-cell values of one field; cells lacking the field are omitted."""
    out: dict[Cell, float] = {}
    for c in report["cells"]:
        if field in c:
            out[(c["app"], c["scheme"], int(c["n_checkpoints"]))] = float(c[field])
    return out


def cell_throughput(report: dict) -> dict[Cell, float]:
    return cell_values(report, "throughput")


def compare(
    current: dict,
    baseline: dict,
    tolerance: float,
    latency_tolerance: float = 0.15,
) -> tuple[list[str], list[str], list[str]]:
    """Return (throughput_regressions, latency_regressions, notes).

    Non-empty throughput regressions mean exit 1; latency regressions
    alone mean exit 3.
    """
    regressions: list[str] = []
    lat_regressions: list[str] = []
    notes: list[str] = []
    if current["mode"] != baseline["mode"]:
        regressions.append(
            f"measurement mode mismatch: current={current['mode']!r} "
            f"baseline={baseline['mode']!r} (numbers are not comparable)"
        )
        return regressions, lat_regressions, notes

    cur = cell_throughput(current)
    base = cell_throughput(baseline)
    cur_lat = cell_values(current, "latency")
    base_lat = cell_values(baseline, "latency")
    for key in sorted(base):
        app, scheme, n = key
        b = base[key]
        if key not in cur:
            regressions.append(f"{app}/{scheme}@{n}: cell missing from current report")
            continue
        c = cur[key]
        if b <= 0:
            notes.append(f"{app}/{scheme}@{n}: baseline throughput {b:g}, skipped")
            continue
        delta = c / b - 1.0
        if delta < -tolerance:
            regressions.append(
                f"{app}/{scheme}@{n}: throughput {c:g} vs baseline {b:g} ({delta:+.1%})"
            )
        elif abs(delta) > 1e-9:
            notes.append(f"{app}/{scheme}@{n}: {delta:+.1%}")
        # latency gate (higher is worse)
        bl = base_lat.get(key)
        if bl is None:
            notes.append(f"{app}/{scheme}@{n}: baseline has no latency, gate skipped")
            continue
        if bl <= 0:
            notes.append(f"{app}/{scheme}@{n}: baseline latency {bl:g}, gate skipped")
            continue
        cl = cur_lat.get(key)
        if cl is None:
            lat_regressions.append(
                f"{app}/{scheme}@{n}: latency missing from current report"
            )
            continue
        lat_delta = cl / bl - 1.0
        if lat_delta > latency_tolerance:
            lat_regressions.append(
                f"{app}/{scheme}@{n}: latency {cl:g} vs baseline {bl:g} ({lat_delta:+.1%})"
            )
        elif abs(lat_delta) > 1e-9:
            notes.append(f"{app}/{scheme}@{n}: latency {lat_delta:+.1%}")
    for key in sorted(set(cur) - set(base)):
        app, scheme, n = key
        notes.append(f"{app}/{scheme}@{n}: new cell (no baseline), throughput {cur[key]:g}")
    return regressions, lat_regressions, notes


def compare_critical_path(
    current: dict,
    baseline: dict,
    tolerance: float,
) -> list[str]:
    """Warn-only: per-cell critical-path seconds growing past tolerance.

    Cells absent from either report, or with a non-positive baseline
    (no round completed in that cell), are skipped silently — the gate
    is backward compatible with baselines that predate the profiler.
    """
    warnings: list[str] = []
    cur = cell_values(current, "critical_path_seconds")
    base = cell_values(baseline, "critical_path_seconds")
    for key in sorted(base):
        app, scheme, n = key
        b = base[key]
        c = cur.get(key)
        if c is None or b <= 0.0:
            continue
        delta = c / b - 1.0
        if delta > tolerance:
            warnings.append(
                f"{app}/{scheme}@{n}: critical path {c:g}s vs baseline {b:g}s "
                f"({delta:+.1%}), beyond --critical-path-tolerance "
                f"{tolerance:.0%} (warn-only)"
            )
    return warnings


def compare_kernel(
    kernel: dict,
    baseline_kernel: dict,
    wall_tolerance: float,
) -> tuple[list[str], list[str]]:
    """Return (hard_failures, warnings) for the kernel microbenchmark.

    Wall-clock / events-per-second are host-dependent → warn-only.
    ``events_popped`` is part of the determinism contract → hard.
    """
    failures: list[str] = []
    warnings: list[str] = []
    if kernel.get("mode") != baseline_kernel.get("mode"):
        warnings.append(
            f"kernel: mode mismatch (current={kernel.get('mode')!r} "
            f"baseline={baseline_kernel.get('mode')!r}), comparison skipped"
        )
        return failures, warnings
    b_popped = baseline_kernel.get("events_popped")
    c_popped = kernel.get("events_popped")
    if b_popped is not None and c_popped is not None and b_popped != c_popped:
        failures.append(
            f"kernel: events_popped {c_popped} vs baseline {b_popped} — the "
            "engine's work changed for an identical config (event-order drift)"
        )
    for field_name, worse_when in (("wall_seconds", "higher"), ("events_per_sec", "lower")):
        b = baseline_kernel.get(field_name)
        c = kernel.get(field_name)
        if not b or c is None:
            continue
        delta = c / b - 1.0
        regressed = delta > wall_tolerance if worse_when == "higher" else delta < -wall_tolerance
        if regressed:
            warnings.append(
                f"kernel: {field_name} {c:g} vs baseline {b:g} ({delta:+.1%}), "
                f"beyond --wall-tolerance {wall_tolerance:.0%} (warn-only)"
            )
    return failures, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_headline.json to check")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed fractional throughput drop (default 0.15)")
    parser.add_argument("--latency-tolerance", type=float, default=0.15,
                        help="max allowed fractional latency increase (default 0.15)")
    parser.add_argument("--kernel", default=None,
                        help="BENCH_kernel.json to check (default: sibling of current)")
    parser.add_argument("--wall-tolerance", type=float, default=0.5,
                        help="warn-only threshold for kernel wall-clock growth / "
                             "events-per-second drop (default 0.5)")
    parser.add_argument("--critical-path-tolerance", type=float, default=0.25,
                        help="warn-only threshold for per-cell checkpoint "
                             "critical-path growth (default 0.25)")
    args = parser.parse_args(argv)

    try:
        current = load_report(args.current)
        baseline = load_report(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INVOCATION
    try:
        validate_cells(current, args.current)
        validate_cells(baseline, args.baseline)
    except MalformedReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_BASELINE

    regressions, lat_regressions, notes = compare(
        current, baseline, args.tolerance, args.latency_tolerance
    )
    notes.extend(
        compare_critical_path(current, baseline, args.critical_path_tolerance)
    )

    # kernel microbenchmark (wall-clock warn-only; events_popped hard)
    kernel_path = args.kernel or str(Path(args.current).parent / "BENCH_kernel.json")
    baseline_kernel = baseline.get("kernel")
    if baseline_kernel and Path(kernel_path).is_file():
        try:
            with open(kernel_path, encoding="utf-8") as fh:
                kernel = json.load(fh)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_BAD_INVOCATION
        kernel_failures, kernel_warnings = compare_kernel(
            kernel, baseline_kernel, args.wall_tolerance
        )
        regressions.extend(kernel_failures)
        notes.extend(kernel_warnings)
    elif baseline_kernel:
        notes.append(f"kernel: no {kernel_path}, kernel gate skipped")
    print(f"regression check: {len(cell_throughput(baseline))} baseline cells, "
          f"throughput tolerance {args.tolerance:.0%}, "
          f"latency tolerance {args.latency_tolerance:.0%}")
    for line in notes:
        print(f"  note: {line}")
    if regressions:
        print(f"FAIL: {len(regressions)} throughput regression(s)")
        for line in regressions:
            print(f"  regression: {line}")
        for line in lat_regressions:
            print(f"  latency regression: {line}")
        return EXIT_THROUGHPUT
    if lat_regressions:
        print(f"FAIL (latency): {len(lat_regressions)} latency regression(s)")
        for line in lat_regressions:
            print(f"  latency regression: {line}")
        return EXIT_LATENCY
    print("OK: no throughput or latency regression")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
