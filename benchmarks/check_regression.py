#!/usr/bin/env python3
"""CI throughput/latency regression gate for the headline bench.

Compares a freshly produced ``BENCH_headline.json`` (written by
``bench_headline.py`` when ``REPRO_ARTIFACT_DIR`` is set) against the
checked-in ``benchmarks/BENCH_baseline.json``.  The simulation is
deterministic, so per-cell numbers should match the baseline exactly;
the tolerances absorb intentional model changes small enough not to
matter.

Two gates, each per cell:

* **throughput** — drops more than ``--tolerance`` (default 15%) below
  the baseline fail;
* **latency** — increases more than ``--latency-tolerance`` (default
  15%) above the baseline fail.  Baseline cells without a ``latency``
  value are noted and skipped, so the gate is backward compatible with
  throughput-only baselines.

Usage::

    python benchmarks/check_regression.py artifacts/BENCH_headline.json \
        [--baseline benchmarks/BENCH_baseline.json] [--tolerance 0.15] \
        [--latency-tolerance 0.15]

Exit status: 0 = no regression, 1 = throughput regression or mode
mismatch, 2 = bad invocation / unreadable input, 3 = latency-only
regression (throughput held; CI can choose to warn instead of fail).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"

Cell = tuple[str, str, int]  # (app, scheme, n_checkpoints)

EXIT_OK = 0
EXIT_THROUGHPUT = 1
EXIT_BAD_INVOCATION = 2
EXIT_LATENCY = 3


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if "cells" not in report or "mode" not in report:
        raise ValueError(f"{path}: not a BENCH_headline report (missing 'cells'/'mode')")
    return report


def cell_values(report: dict, field: str) -> dict[Cell, float]:
    """Per-cell values of one field; cells lacking the field are omitted."""
    out: dict[Cell, float] = {}
    for c in report["cells"]:
        if field in c:
            out[(c["app"], c["scheme"], int(c["n_checkpoints"]))] = float(c[field])
    return out


def cell_throughput(report: dict) -> dict[Cell, float]:
    return cell_values(report, "throughput")


def compare(
    current: dict,
    baseline: dict,
    tolerance: float,
    latency_tolerance: float = 0.15,
) -> tuple[list[str], list[str], list[str]]:
    """Return (throughput_regressions, latency_regressions, notes).

    Non-empty throughput regressions mean exit 1; latency regressions
    alone mean exit 3.
    """
    regressions: list[str] = []
    lat_regressions: list[str] = []
    notes: list[str] = []
    if current["mode"] != baseline["mode"]:
        regressions.append(
            f"measurement mode mismatch: current={current['mode']!r} "
            f"baseline={baseline['mode']!r} (numbers are not comparable)"
        )
        return regressions, lat_regressions, notes

    cur = cell_throughput(current)
    base = cell_throughput(baseline)
    cur_lat = cell_values(current, "latency")
    base_lat = cell_values(baseline, "latency")
    for key in sorted(base):
        app, scheme, n = key
        b = base[key]
        if key not in cur:
            regressions.append(f"{app}/{scheme}@{n}: cell missing from current report")
            continue
        c = cur[key]
        if b <= 0:
            notes.append(f"{app}/{scheme}@{n}: baseline throughput {b:g}, skipped")
            continue
        delta = c / b - 1.0
        if delta < -tolerance:
            regressions.append(
                f"{app}/{scheme}@{n}: throughput {c:g} vs baseline {b:g} ({delta:+.1%})"
            )
        elif abs(delta) > 1e-9:
            notes.append(f"{app}/{scheme}@{n}: {delta:+.1%}")
        # latency gate (higher is worse)
        bl = base_lat.get(key)
        if bl is None:
            notes.append(f"{app}/{scheme}@{n}: baseline has no latency, gate skipped")
            continue
        if bl <= 0:
            notes.append(f"{app}/{scheme}@{n}: baseline latency {bl:g}, gate skipped")
            continue
        cl = cur_lat.get(key)
        if cl is None:
            lat_regressions.append(
                f"{app}/{scheme}@{n}: latency missing from current report"
            )
            continue
        lat_delta = cl / bl - 1.0
        if lat_delta > latency_tolerance:
            lat_regressions.append(
                f"{app}/{scheme}@{n}: latency {cl:g} vs baseline {bl:g} ({lat_delta:+.1%})"
            )
        elif abs(lat_delta) > 1e-9:
            notes.append(f"{app}/{scheme}@{n}: latency {lat_delta:+.1%}")
    for key in sorted(set(cur) - set(base)):
        app, scheme, n = key
        notes.append(f"{app}/{scheme}@{n}: new cell (no baseline), throughput {cur[key]:g}")
    return regressions, lat_regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_headline.json to check")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed fractional throughput drop (default 0.15)")
    parser.add_argument("--latency-tolerance", type=float, default=0.15,
                        help="max allowed fractional latency increase (default 0.15)")
    args = parser.parse_args(argv)

    try:
        current = load_report(args.current)
        baseline = load_report(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INVOCATION

    regressions, lat_regressions, notes = compare(
        current, baseline, args.tolerance, args.latency_tolerance
    )
    print(f"regression check: {len(cell_throughput(baseline))} baseline cells, "
          f"throughput tolerance {args.tolerance:.0%}, "
          f"latency tolerance {args.latency_tolerance:.0%}")
    for line in notes:
        print(f"  note: {line}")
    if regressions:
        print(f"FAIL: {len(regressions)} throughput regression(s)")
        for line in regressions:
            print(f"  regression: {line}")
        for line in lat_regressions:
            print(f"  latency regression: {line}")
        return EXIT_THROUGHPUT
    if lat_regressions:
        print(f"FAIL (latency): {len(lat_regressions)} latency regression(s)")
        for line in lat_regressions:
            print(f"  latency regression: {line}")
        return EXIT_LATENCY
    print("OK: no throughput or latency regression")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
