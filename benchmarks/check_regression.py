#!/usr/bin/env python3
"""CI throughput/latency regression gate for the headline bench.

Compares a freshly produced ``BENCH_headline.json`` (written by
``bench_headline.py`` when ``REPRO_ARTIFACT_DIR`` is set) against the
checked-in ``benchmarks/BENCH_baseline.json``.  The simulation is
deterministic, so per-cell numbers should match the baseline exactly;
the tolerances absorb intentional model changes small enough not to
matter.

Two gates, each per cell:

* **throughput** — drops more than ``--tolerance`` (default 15%) below
  the baseline fail;
* **latency** — increases more than ``--latency-tolerance`` (default
  15%) above the baseline fail.  Baseline cells without a ``latency``
  value are noted and skipped, so the gate is backward compatible with
  throughput-only baselines.

A third, **warn-only** gate covers the kernel microbenchmark
(``BENCH_kernel.json``, written next to the headline report): wall-clock
growth or ``events_per_sec`` drop beyond ``--wall-tolerance`` (default
50% — host timing varies wildly across runners) prints a warning but
never changes the exit status.  ``events_popped`` drift, by contrast, is
deterministic and *does* fail: the engine doing a different amount of
work for the same config means the event order changed.

A fourth, also **warn-only**, gate tracks each cell's
``critical_path_seconds`` (the slowest per-round checkpoint critical
path, reconstructed from the cell's trace): growth beyond
``--critical-path-tolerance`` (default 25%) prints a warning.  The
quantity is deterministic, but it measures the *checkpoint wave's*
shape rather than the paper's headline throughput/latency, so it warns
rather than fails while the profiler is young.

A fifth, **warn-only**, gate covers the kernel scaling benchmark
(``BENCH_kernel_scaling.json``, written by ``bench_kernel_scaling.py``)
against the committed ``benchmarks/BENCH_scaling_baseline.json``.  It
watches the largest (10k-HAU) point: the batched-over-unbatched tuple
throughput ratio falling below ``--scaling-speedup-floor`` (default
3.0), any cell's ``tuples_per_sec`` dropping beyond
``--wall-tolerance``, and per-cell ``events_popped`` drift.  All of it
warns rather than fails: the rates are host timing, and the batched
event count is not digest-pinned — an intentional batched-path
optimisation legitimately changes it.

A sixth, **warn-only**, gate covers the monitored headline run
(``ALERTS_headline.json``, written by ``bench_headline.py``) against the
committed ``benchmarks/ALERTS_baseline.json``: any drift in the
fired/resolved alert counts (total or per SLO kind), the alert-log
length or the number of health-timeline transitions prints a warning.
The counts are deterministic for a fixed config, so drift is a real
behaviour change — but an intentional SLO-bound tweak produces the same
signature, so the gate warns rather than fails while the monitoring
plane is young.

Usage::

    python benchmarks/check_regression.py artifacts/BENCH_headline.json \
        [--baseline benchmarks/BENCH_baseline.json] [--tolerance 0.15] \
        [--latency-tolerance 0.15] [--kernel artifacts/BENCH_kernel.json] \
        [--wall-tolerance 0.5] [--alerts artifacts/ALERTS_headline.json] \
        [--alerts-baseline benchmarks/ALERTS_baseline.json]

Every gate runs every time: a tripped throughput gate never hides the
latency, kernel or critical-path verdicts — the FAIL summary lists all
failing gates in one run.  On any trip, an **attributed explanation**
follows (via ``repro.inspect``): the per-cell top movers from the
report diff, plus — when both the candidate bundle (``--bundle``,
default ``BUNDLE_headline`` next to the current report) and the
baseline bundle (``--baseline-bundle``, default
``benchmarks/BUNDLE_baseline``) exist — the phase-span / HAU
attribution from the bundle diff.  ``--no-explain`` suppresses both.

Exit status: 0 = no regression, 1 = throughput regression / mode
mismatch / events_popped drift, 2 = bad invocation / unreadable input,
3 = latency-only regression (throughput held; CI can choose to warn
instead of fail), 4 = a report parses but one of its cells is missing a
gate field (``app`` / ``scheme`` / ``n_checkpoints`` / ``throughput``)
— the baseline or report needs regenerating, nothing was compared.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"

Cell = tuple[str, str, int]  # (app, scheme, n_checkpoints)

EXIT_OK = 0
EXIT_THROUGHPUT = 1
EXIT_BAD_INVOCATION = 2
EXIT_LATENCY = 3
EXIT_BAD_BASELINE = 4

# Every cell must carry these for the gates to have anything to compare.
REQUIRED_CELL_FIELDS = ("app", "scheme", "n_checkpoints", "throughput")


class MalformedReportError(ValueError):
    """A report parsed, but a cell is missing/mistyping a gate field."""


def validate_cells(report: dict, path: str) -> None:
    """Fail loudly (not with a KeyError traceback) on malformed cells."""
    for i, c in enumerate(report["cells"]):
        if not isinstance(c, dict):
            raise MalformedReportError(
                f"{path}: cells[{i}] is not an object — regenerate the report"
            )
        missing = [f for f in REQUIRED_CELL_FIELDS if f not in c]
        if missing:
            raise MalformedReportError(
                f"{path}: cells[{i}] is missing gate field(s) {', '.join(missing)} "
                f"(has: {', '.join(sorted(c)) or 'nothing'}) — regenerate the "
                "report with bench_headline.py, or restore the committed baseline"
            )
        try:
            int(c["n_checkpoints"])
            float(c["throughput"])
        except (TypeError, ValueError) as exc:
            raise MalformedReportError(
                f"{path}: cells[{i}] ({c.get('app')}/{c.get('scheme')}) has a "
                f"non-numeric gate field: {exc}"
            ) from exc


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if "cells" not in report or "mode" not in report:
        raise ValueError(f"{path}: not a BENCH_headline report (missing 'cells'/'mode')")
    return report


def cell_values(report: dict, field: str) -> dict[Cell, float]:
    """Per-cell values of one field; cells lacking the field are omitted."""
    out: dict[Cell, float] = {}
    for c in report["cells"]:
        if field in c:
            out[(c["app"], c["scheme"], int(c["n_checkpoints"]))] = float(c[field])
    return out


def cell_throughput(report: dict) -> dict[Cell, float]:
    return cell_values(report, "throughput")


def compare(
    current: dict,
    baseline: dict,
    tolerance: float,
    latency_tolerance: float = 0.15,
) -> tuple[list[str], list[str], list[str]]:
    """Return (throughput_regressions, latency_regressions, notes).

    Non-empty throughput regressions mean exit 1; latency regressions
    alone mean exit 3.
    """
    regressions: list[str] = []
    lat_regressions: list[str] = []
    notes: list[str] = []
    if current["mode"] != baseline["mode"]:
        regressions.append(
            f"measurement mode mismatch: current={current['mode']!r} "
            f"baseline={baseline['mode']!r} (numbers are not comparable)"
        )
        return regressions, lat_regressions, notes

    cur = cell_throughput(current)
    base = cell_throughput(baseline)
    cur_lat = cell_values(current, "latency")
    base_lat = cell_values(baseline, "latency")
    for key in sorted(base):
        app, scheme, n = key
        b = base[key]
        if key not in cur:
            regressions.append(f"{app}/{scheme}@{n}: cell missing from current report")
            continue
        c = cur[key]
        if b <= 0:
            # note-and-carry-on: a zero-throughput baseline cell must not
            # swallow the cell's latency gate (all gates report, always)
            notes.append(f"{app}/{scheme}@{n}: baseline throughput {b:g}, skipped")
        else:
            delta = c / b - 1.0
            if delta < -tolerance:
                regressions.append(
                    f"{app}/{scheme}@{n}: throughput {c:g} vs baseline {b:g} ({delta:+.1%})"
                )
            elif abs(delta) > 1e-9:
                notes.append(f"{app}/{scheme}@{n}: {delta:+.1%}")
        # latency gate (higher is worse)
        bl = base_lat.get(key)
        if bl is None:
            notes.append(f"{app}/{scheme}@{n}: baseline has no latency, gate skipped")
            continue
        if bl <= 0:
            notes.append(f"{app}/{scheme}@{n}: baseline latency {bl:g}, gate skipped")
            continue
        cl = cur_lat.get(key)
        if cl is None:
            lat_regressions.append(
                f"{app}/{scheme}@{n}: latency missing from current report"
            )
            continue
        lat_delta = cl / bl - 1.0
        if lat_delta > latency_tolerance:
            lat_regressions.append(
                f"{app}/{scheme}@{n}: latency {cl:g} vs baseline {bl:g} ({lat_delta:+.1%})"
            )
        elif abs(lat_delta) > 1e-9:
            notes.append(f"{app}/{scheme}@{n}: latency {lat_delta:+.1%}")
    for key in sorted(set(cur) - set(base)):
        app, scheme, n = key
        notes.append(f"{app}/{scheme}@{n}: new cell (no baseline), throughput {cur[key]:g}")
    return regressions, lat_regressions, notes


def compare_critical_path(
    current: dict,
    baseline: dict,
    tolerance: float,
) -> list[str]:
    """Warn-only: per-cell critical-path seconds growing past tolerance.

    Cells absent from either report, or with a non-positive baseline
    (no round completed in that cell), are skipped silently — the gate
    is backward compatible with baselines that predate the profiler.
    """
    warnings: list[str] = []
    cur = cell_values(current, "critical_path_seconds")
    base = cell_values(baseline, "critical_path_seconds")
    for key in sorted(base):
        app, scheme, n = key
        b = base[key]
        c = cur.get(key)
        if c is None or b <= 0.0:
            continue
        delta = c / b - 1.0
        if delta > tolerance:
            warnings.append(
                f"{app}/{scheme}@{n}: critical path {c:g}s vs baseline {b:g}s "
                f"({delta:+.1%}), beyond --critical-path-tolerance "
                f"{tolerance:.0%} (warn-only)"
            )
    return warnings


def compare_kernel(
    kernel: dict,
    baseline_kernel: dict,
    wall_tolerance: float,
) -> tuple[list[str], list[str]]:
    """Return (hard_failures, warnings) for the kernel microbenchmark.

    Wall-clock / events-per-second are host-dependent → warn-only.
    ``events_popped`` is part of the determinism contract → hard.
    """
    failures: list[str] = []
    warnings: list[str] = []
    if kernel.get("mode") != baseline_kernel.get("mode"):
        warnings.append(
            f"kernel: mode mismatch (current={kernel.get('mode')!r} "
            f"baseline={baseline_kernel.get('mode')!r}), comparison skipped"
        )
        return failures, warnings
    b_popped = baseline_kernel.get("events_popped")
    c_popped = kernel.get("events_popped")
    if b_popped is not None and c_popped is not None and b_popped != c_popped:
        failures.append(
            f"kernel: events_popped {c_popped} vs baseline {b_popped} — the "
            "engine's work changed for an identical config (event-order drift)"
        )
    for field_name, worse_when in (("wall_seconds", "higher"), ("events_per_sec", "lower")):
        b = baseline_kernel.get(field_name)
        c = kernel.get(field_name)
        if not b or c is None:
            continue
        delta = c / b - 1.0
        regressed = delta > wall_tolerance if worse_when == "higher" else delta < -wall_tolerance
        if regressed:
            warnings.append(
                f"kernel: {field_name} {c:g} vs baseline {b:g} ({delta:+.1%}), "
                f"beyond --wall-tolerance {wall_tolerance:.0%} (warn-only)"
            )
    return failures, warnings


def compare_scaling(
    scaling: dict,
    baseline_scaling: dict,
    wall_tolerance: float,
    speedup_floor: float,
) -> list[str]:
    """Warn-only verdicts for the kernel scaling benchmark.

    The headline claim rides on the largest size present in both
    reports (the 10k-HAU point in the committed baseline): batched mode
    must sustain ``speedup_floor`` times the unbatched tuple throughput
    there.  Per-cell rate drops and ``events_popped`` drift also warn —
    nothing in this gate can change the exit status.
    """
    warnings: list[str] = []
    if scaling.get("mode") != baseline_scaling.get("mode"):
        warnings.append(
            f"scaling: mode mismatch (current={scaling.get('mode')!r} "
            f"baseline={baseline_scaling.get('mode')!r}), comparison skipped"
        )
        return warnings

    def by_key(report: dict) -> dict[tuple, dict]:
        return {
            (c["haus"], c["scheduler"], c["batch_quantum"]): c
            for c in report.get("cells", [])
        }

    cur, base = by_key(scaling), by_key(baseline_scaling)
    for key in sorted(base, key=str):
        haus, scheduler, quantum = key
        b, c = base[key], cur.get(key)
        if c is None:
            warnings.append(
                f"scaling: {haus}/{scheduler}/q={quantum} missing from current "
                "report (warn-only)"
            )
            continue
        if b.get("events_popped") != c.get("events_popped"):
            warnings.append(
                f"scaling: {haus}/{scheduler}/q={quantum} events_popped "
                f"{c.get('events_popped')} vs baseline {b.get('events_popped')} "
                "(warn-only: batched event counts are not digest-pinned)"
            )
        b_rate, c_rate = b.get("tuples_per_sec"), c.get("tuples_per_sec")
        if b_rate and c_rate is not None:
            delta = c_rate / b_rate - 1.0
            if delta < -wall_tolerance:
                warnings.append(
                    f"scaling: {haus}/{scheduler}/q={quantum} tuples_per_sec "
                    f"{c_rate:,.0f} vs baseline {b_rate:,.0f} ({delta:+.1%}), "
                    f"beyond --wall-tolerance {wall_tolerance:.0%} (warn-only)"
                )

    gated = [s for s in scaling.get("speedups", []) if s.get("haus") in
             {c["haus"] for c in baseline_scaling.get("cells", [])}]
    if gated:
        top = max(s["haus"] for s in gated)
        for s in (s for s in gated if s["haus"] == top):
            if s["batched_speedup"] < speedup_floor:
                warnings.append(
                    f"scaling: {top} HAUs / {s['scheduler']} batched speedup "
                    f"{s['batched_speedup']:.2f}x below --scaling-speedup-floor "
                    f"{speedup_floor:g}x (warn-only)"
                )
    else:
        warnings.append("scaling: current report has no speedups to gate (warn-only)")
    return warnings


def compare_alerts(
    alerts: dict,
    baseline_alerts: dict,
) -> list[str]:
    """Warn-only verdicts for the monitored headline run's alert counts.

    Everything compared here is deterministic for a fixed config, but an
    intentional SLO/bound change legitimately moves all of it — nothing
    in this gate can change the exit status.
    """
    warnings: list[str] = []
    if alerts.get("mode") != baseline_alerts.get("mode"):
        warnings.append(
            f"alerts: mode mismatch (current={alerts.get('mode')!r} "
            f"baseline={baseline_alerts.get('mode')!r}), comparison skipped"
        )
        return warnings
    b_sum = baseline_alerts.get("summary") or {}
    c_sum = alerts.get("summary") or {}
    for field_name in ("fired", "resolved", "active"):
        b, c = b_sum.get(field_name), c_sum.get(field_name)
        if b is not None and c is not None and b != c:
            warnings.append(
                f"alerts: {field_name} {c} vs baseline {b} (warn-only: "
                "deterministic, so this is a behaviour or SLO-bound change)"
            )
    b_by = b_sum.get("by_slo") or {}
    c_by = c_sum.get("by_slo") or {}
    for slo in sorted(set(b_by) | set(c_by)):
        if b_by.get(slo) != c_by.get(slo):
            warnings.append(
                f"alerts: {slo} {c_by.get(slo)} vs baseline {b_by.get(slo)} (warn-only)"
            )
    for field_name in ("ticks", "log_length", "health_transitions"):
        b, c = baseline_alerts.get(field_name), alerts.get(field_name)
        if b is not None and c is not None and b != c:
            warnings.append(f"alerts: {field_name} {c} vs baseline {b} (warn-only)")
    return warnings


def _inspect_modules():
    """Lazily import repro.inspect (with a src/ fallback for bare checkouts).

    Returns ``None`` when the package cannot be imported — the gate then
    degrades to unattributed numbers instead of crashing.
    """
    try:
        import repro.inspect  # noqa: F401
    except ImportError:
        src = Path(__file__).resolve().parent.parent / "src"
        if src.is_dir():
            sys.path.insert(0, str(src))
    try:
        from repro.inspect import diff_bundles, diff_reports, read_bundle
        from repro.inspect.explain import explain_diff
    except ImportError:
        return None
    return diff_reports, diff_bundles, read_bundle, explain_diff


def explain_trip(
    current: dict,
    baseline: dict,
    bundle: str | None,
    baseline_bundle: str | None,
    limit: int = 5,
) -> list[str]:
    """Attributed explanation lines for a tripped gate (best effort).

    Always tries the report-level diff (cell x metric top movers); when
    both bundle directories exist, adds the bundle-level attribution
    (phase spans, HAUs, critical-path hops).  Any failure inside the
    explainer becomes a parenthetical line, never a crash — explanations
    decorate the gate, they must not be able to flip it.
    """
    mods = _inspect_modules()
    if mods is None:
        return ["(repro.inspect unavailable; no attribution)"]
    diff_reports, diff_bundles, read_bundle, explain_diff = mods
    lines: list[str] = []
    try:
        lines.extend(explain_diff(diff_reports(baseline, current), limit=limit))
    except Exception as exc:  # noqa: BLE001 — explainer must never flip the gate
        lines.append(f"(report attribution failed: {exc})")
    if bundle and baseline_bundle and Path(bundle).is_dir() and Path(baseline_bundle).is_dir():
        try:
            diff = diff_bundles(read_bundle(baseline_bundle), read_bundle(bundle))
            lines.append(f"bundle attribution ({baseline_bundle} -> {bundle}):")
            lines.extend("  " + line for line in explain_diff(diff, limit=limit))
        except Exception as exc:  # noqa: BLE001
            lines.append(f"(bundle attribution failed: {exc})")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_headline.json to check")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed fractional throughput drop (default 0.15)")
    parser.add_argument("--latency-tolerance", type=float, default=0.15,
                        help="max allowed fractional latency increase (default 0.15)")
    parser.add_argument("--kernel", default=None,
                        help="BENCH_kernel.json to check (default: sibling of current)")
    parser.add_argument("--wall-tolerance", type=float, default=0.5,
                        help="warn-only threshold for kernel wall-clock growth / "
                             "events-per-second drop (default 0.5)")
    parser.add_argument("--critical-path-tolerance", type=float, default=0.25,
                        help="warn-only threshold for per-cell checkpoint "
                             "critical-path growth (default 0.25)")
    parser.add_argument("--scaling", default=None,
                        help="BENCH_kernel_scaling.json to check "
                             "(default: sibling of current)")
    parser.add_argument("--scaling-baseline",
                        default=str(DEFAULT_BASELINE.parent / "BENCH_scaling_baseline.json"),
                        help="committed scaling baseline "
                             "(default: benchmarks/BENCH_scaling_baseline.json)")
    parser.add_argument("--scaling-speedup-floor", type=float, default=3.0,
                        help="warn-only floor for the largest-size batched "
                             "tuple-throughput speedup (default 3.0)")
    parser.add_argument("--alerts", default=None,
                        help="ALERTS_headline.json to check (default: sibling "
                             "of current)")
    parser.add_argument("--alerts-baseline",
                        default=str(DEFAULT_BASELINE.parent / "ALERTS_baseline.json"),
                        help="committed alert-count baseline "
                             "(default: benchmarks/ALERTS_baseline.json)")
    parser.add_argument("--bundle", default=None,
                        help="candidate RunBundle directory for attributed "
                             "explanations (default: BUNDLE_headline next to current)")
    parser.add_argument("--baseline-bundle", default=None,
                        help="baseline RunBundle directory "
                             "(default: benchmarks/BUNDLE_baseline)")
    parser.add_argument("--no-explain", action="store_true",
                        help="suppress attributed explanations on gate trips")
    args = parser.parse_args(argv)

    try:
        current = load_report(args.current)
        baseline = load_report(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INVOCATION
    try:
        validate_cells(current, args.current)
        validate_cells(baseline, args.baseline)
    except MalformedReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_BASELINE

    regressions, lat_regressions, notes = compare(
        current, baseline, args.tolerance, args.latency_tolerance
    )
    notes.extend(
        compare_critical_path(current, baseline, args.critical_path_tolerance)
    )

    # kernel microbenchmark (wall-clock warn-only; events_popped hard)
    kernel_path = args.kernel or str(Path(args.current).parent / "BENCH_kernel.json")
    baseline_kernel = baseline.get("kernel")
    if baseline_kernel and Path(kernel_path).is_file():
        try:
            with open(kernel_path, encoding="utf-8") as fh:
                kernel = json.load(fh)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_BAD_INVOCATION
        kernel_failures, kernel_warnings = compare_kernel(
            kernel, baseline_kernel, args.wall_tolerance
        )
        regressions.extend(kernel_failures)
        notes.extend(kernel_warnings)
    elif baseline_kernel:
        notes.append(f"kernel: no {kernel_path}, kernel gate skipped")

    # kernel scaling benchmark (entirely warn-only; see module docstring)
    scaling_path = args.scaling or str(
        Path(args.current).parent / "BENCH_kernel_scaling.json"
    )
    if Path(args.scaling_baseline).is_file() and Path(scaling_path).is_file():
        try:
            with open(scaling_path, encoding="utf-8") as fh:
                scaling = json.load(fh)
            with open(args.scaling_baseline, encoding="utf-8") as fh:
                baseline_scaling = json.load(fh)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_BAD_INVOCATION
        notes.extend(compare_scaling(
            scaling, baseline_scaling, args.wall_tolerance,
            args.scaling_speedup_floor,
        ))
    elif Path(args.scaling_baseline).is_file():
        notes.append(f"scaling: no {scaling_path}, scaling gate skipped")

    # monitored headline run (entirely warn-only; see module docstring)
    alerts_path = args.alerts or str(Path(args.current).parent / "ALERTS_headline.json")
    if Path(args.alerts_baseline).is_file() and Path(alerts_path).is_file():
        try:
            with open(alerts_path, encoding="utf-8") as fh:
                alerts = json.load(fh)
            with open(args.alerts_baseline, encoding="utf-8") as fh:
                baseline_alerts = json.load(fh)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_BAD_INVOCATION
        notes.extend(compare_alerts(alerts, baseline_alerts))
    elif Path(args.alerts_baseline).is_file():
        notes.append(f"alerts: no {alerts_path}, alert gate skipped")
    print(f"regression check: {len(cell_throughput(baseline))} baseline cells, "
          f"throughput tolerance {args.tolerance:.0%}, "
          f"latency tolerance {args.latency_tolerance:.0%}")
    for line in notes:
        print(f"  note: {line}")
    if not regressions and not lat_regressions:
        print("OK: no throughput or latency regression")
        return EXIT_OK

    # every failing gate in one report (never just the first tripped one),
    # then the attributed explanation of *why* the numbers moved
    print(
        f"FAIL: {len(regressions)} hard regression(s), "
        f"{len(lat_regressions)} latency regression(s)"
    )
    for line in regressions:
        print(f"  regression: {line}")
    for line in lat_regressions:
        print(f"  latency regression: {line}")
    if not args.no_explain:
        bundle = args.bundle or str(Path(args.current).parent / "BUNDLE_headline")
        baseline_bundle = args.baseline_bundle or str(
            Path(args.baseline).resolve().parent / "BUNDLE_baseline"
        )
        for line in explain_trip(current, baseline, bundle, baseline_bundle):
            print(f"  explain: {line}")
    return EXIT_THROUGHPUT if regressions else EXIT_LATENCY


if __name__ == "__main__":
    sys.exit(main())
