#!/usr/bin/env python3
"""CI throughput-regression gate for the headline bench.

Compares a freshly produced ``BENCH_headline.json`` (written by
``bench_headline.py`` when ``REPRO_ARTIFACT_DIR`` is set) against the
checked-in ``benchmarks/BENCH_baseline.json``.  The simulation is
deterministic, so per-cell throughput should match the baseline exactly;
the tolerance absorbs intentional model changes small enough not to
matter.  Any cell whose throughput drops more than ``--tolerance``
(default 15%) below the baseline fails the run.

Usage::

    python benchmarks/check_regression.py artifacts/BENCH_headline.json \
        [--baseline benchmarks/BENCH_baseline.json] [--tolerance 0.15]

Exit status: 0 = no regression, 1 = regression or mode mismatch,
2 = bad invocation / unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"

Cell = tuple[str, str, int]  # (app, scheme, n_checkpoints)


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if "cells" not in report or "mode" not in report:
        raise ValueError(f"{path}: not a BENCH_headline report (missing 'cells'/'mode')")
    return report


def cell_throughput(report: dict) -> dict[Cell, float]:
    return {
        (c["app"], c["scheme"], int(c["n_checkpoints"])): float(c["throughput"])
        for c in report["cells"]
    }


def compare(current: dict, baseline: dict, tolerance: float) -> tuple[list[str], list[str]]:
    """Return (regressions, notes); non-empty regressions means failure."""
    regressions: list[str] = []
    notes: list[str] = []
    if current["mode"] != baseline["mode"]:
        regressions.append(
            f"measurement mode mismatch: current={current['mode']!r} "
            f"baseline={baseline['mode']!r} (numbers are not comparable)"
        )
        return regressions, notes

    cur = cell_throughput(current)
    base = cell_throughput(baseline)
    for key in sorted(base):
        app, scheme, n = key
        b = base[key]
        if key not in cur:
            regressions.append(f"{app}/{scheme}@{n}: cell missing from current report")
            continue
        c = cur[key]
        if b <= 0:
            notes.append(f"{app}/{scheme}@{n}: baseline throughput {b:g}, skipped")
            continue
        delta = c / b - 1.0
        if delta < -tolerance:
            regressions.append(
                f"{app}/{scheme}@{n}: throughput {c:g} vs baseline {b:g} ({delta:+.1%})"
            )
        elif abs(delta) > 1e-9:
            notes.append(f"{app}/{scheme}@{n}: {delta:+.1%}")
    for key in sorted(set(cur) - set(base)):
        app, scheme, n = key
        notes.append(f"{app}/{scheme}@{n}: new cell (no baseline), throughput {cur[key]:g}")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_headline.json to check")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed fractional throughput drop (default 0.15)")
    args = parser.parse_args(argv)

    try:
        current = load_report(args.current)
        baseline = load_report(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    regressions, notes = compare(current, baseline, args.tolerance)
    print(f"regression check: {len(cell_throughput(baseline))} baseline cells, "
          f"tolerance {args.tolerance:.0%}")
    for line in notes:
        print(f"  note: {line}")
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s)")
        for line in regressions:
            print(f"  regression: {line}")
        return 1
    print("OK: no throughput regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
