"""Fig. 12: normalised throughput vs number of checkpoints per window.

Series per application, all normalised to the baseline at zero
checkpoints.  Expected shape (paper): baseline degrades the most with
checkpoint count (worst on SignalGuru, the heaviest state); MS-src sits
above the baseline everywhere (source preservation); MS-src+ap stays
nearly flat (asynchronous checkpointing); MS-src+ap+aa is the best.
"""

from repro.harness import format_table

PAPER_NOTES = {
    "tmi": "paper: baseline 1.00->0.71, ms-src 1.24->0.87, ap 1.15->1.03, aa 1.22->1.13",
    "bcp": "paper: baseline 1.00->0.47, ms-src 1.31->0.66, ap 1.25->1.01, aa 1.29->1.16",
    "signalguru": "paper: baseline 1.00->0.21, ms-src 1.51->0.33, ap 1.38->0.35*, aa 1.48->1.25",
}


def test_fig12_throughput(benchmark, get_sweep):
    sweep = benchmark.pedantic(get_sweep, rounds=1, iterations=1)
    for app in ("tmi", "bcp", "signalguru"):
        series = sweep.normalized_throughput(app)
        counts = sorted({n for pts in series.values() for (n, _v) in pts})
        headers = ["scheme"] + [str(n) for n in counts]
        rows = []
        for scheme in ("baseline", "ms-src", "ms-src+ap", "ms-src+ap+aa"):
            pts = dict(series.get(scheme, []))
            rows.append([scheme] + [f"{pts.get(n, float('nan')):.2f}" for n in counts])
        print("\n" + format_table(headers, rows, title=f"Fig. 12 — {app} (normalised throughput)"))
        print("  " + PAPER_NOTES[app])

        # shape assertions
        base = dict(series["baseline"])
        src = dict(series["ms-src"])
        ap = dict(series["ms-src+ap"])
        aa = dict(series["ms-src+ap+aa"])
        # source preservation wins at zero checkpoints
        assert src[0] > 1.10, f"{app}: MS-src should beat baseline at 0 ckpts"
        # baseline monotonically degrades (allowing small noise)
        assert base[max(counts)] <= base[0] + 0.02
        # at the highest checkpoint count the full system beats the baseline
        assert aa[max(counts)] > base[max(counts)]
        # ap resists checkpoint-count degradation better than ms-src
        assert ap[max(counts)] >= src[max(counts)] - 0.05
