"""Fig. 15: instantaneous latency during a checkpoint.

One mid-window checkpoint; the per-bin average latency series shows the
disruption.  Expected shape (paper): MS-src spikes instantaneous latency
5-12x over the steady state; MS-src+ap bumps mildly; MS-src+ap+aa's
bump is the smallest (~1.5x), "effectively hiding the negative impact of
checkpointing".
"""

from repro.harness.figures import fig15_instantaneous_latency


def _steady_and_peak(series):
    values = [v for (_t, v) in series if v > 0]
    if not values:
        return 0.0, 0.0
    n = max(3, len(values) // 5)
    steady = sum(values[:n]) / n  # before the checkpoint fires mid-window
    return steady, max(values)


def test_fig15_instantaneous_latency(benchmark):
    data = benchmark.pedantic(
        fig15_instantaneous_latency, kwargs={"app": "bcp"}, rounds=1, iterations=1
    )
    print("\nFig. 15 — instantaneous latency during a checkpoint (BCP)")
    spikes = {}
    for scheme, series in data.items():
        steady, peak = _steady_and_peak(series)
        spikes[scheme] = peak / max(steady, 1e-9)
        print(f"  {scheme:14s} steady={steady:7.2f}s  peak={peak:7.2f}s  spike x{spikes[scheme]:.2f}")

    # the synchronous scheme disrupts the most; aa no worse than ap
    assert spikes["ms-src"] >= spikes["ms-src+ap"] - 0.05
    assert spikes["ms-src+ap+aa"] <= spikes["ms-src"] + 0.05
    # the asynchronous schemes stay within a modest factor of steady state
    assert spikes["ms-src+ap+aa"] < 3.0
