"""Headline claims (§I) and per-technique ablations (X1/X2 in DESIGN.md).

Derived from the Fig. 12/13 sweep:

* source preservation: +35% throughput / -9% latency at 0 checkpoints;
* parallel+asynchronous checkpointing: +28% throughput at 3 checkpoints
  (over MS-src);
* application-aware checkpointing: +14% throughput at 3 checkpoints
  (over MS-src+ap);
* all three together: +226% throughput / -57% latency vs the baseline at
  3 checkpoints (averaged over the three applications).

The reproduction asserts directions and coarse magnitudes — per
EXPERIMENTS.md, the simulated baseline degrades less steeply than the
paper's C++ system, so combined gains land lower but ordered the same.
"""

import os

from repro.harness import format_table
from repro.harness.figures import headline_numbers

PAPER = {
    "src_thpt_gain_0ckpt": 0.35,
    "src_lat_gain_0ckpt": 0.09,
    "ap_thpt_gain_3ckpt": 0.28,
    "aa_thpt_gain_3ckpt": 0.14,
    "total_thpt_gain_3ckpt": 2.26,
    "total_lat_gain_3ckpt": 0.57,
}


def test_headline_numbers(benchmark, get_sweep, sweep_stats, write_artifact):
    numbers = benchmark.pedantic(lambda: headline_numbers(get_sweep()), rounds=1, iterations=1)
    rows = [
        [key, f"{value:+.1%}", f"{PAPER[key]:+.1%}"]
        for key, value in numbers.items()
    ]
    print("\n" + format_table(
        ["claim", "measured", "paper"], rows, title="Headline claims (3-app averages)"
    ))

    # machine-readable result for CI's regression gate (see
    # benchmarks/check_regression.py); no-op unless REPRO_ARTIFACT_DIR is set
    sweep = get_sweep()
    write_artifact("BENCH_headline.json", {
        "mode": "full" if os.environ.get("REPRO_FULL") else "fast",
        "headline": numbers,
        "sweep_stats": {
            "jobs": sweep_stats.jobs,
            "cells": sweep_stats.cells,
            "cache_hits": sweep_stats.cache_hits,
            "cache_misses": sweep_stats.cache_misses,
            "executed": sweep_stats.executed,
        },
        "cells": [
            {
                "app": c.app,
                "scheme": c.scheme,
                "n_checkpoints": c.n_checkpoints,
                "throughput": c.throughput,
                "latency": c.latency,
                "latency_p50": c.latency_p50,
                "latency_p95": c.latency_p95,
                "latency_p99": c.latency_p99,
                "rounds_completed": c.rounds_completed,
                "critical_path_seconds": c.critical_path_seconds,
                "phase_totals": c.phase_totals,
            }
            for c in sweep.cells
        ],
    })

    # directions must all hold
    assert numbers["src_thpt_gain_0ckpt"] > 0.10  # source preservation helps
    assert numbers["src_lat_gain_0ckpt"] > 0.0
    assert numbers["ap_thpt_gain_3ckpt"] > -0.05  # ap never hurts vs src
    assert numbers["aa_thpt_gain_3ckpt"] > -0.05
    assert numbers["total_thpt_gain_3ckpt"] > 0.15  # the full system wins
    assert numbers["total_lat_gain_3ckpt"] > 0.0


def test_kernel_microbench(write_artifact):
    """Kernel fast-path smoke: wall-clock + events/sec on one headline cell.

    The wall-clock here is host-dependent, so the regression gate treats
    the recorded numbers as warn-only (``check_regression.py
    --wall-tolerance``); the determinism and pool-efficiency assertions
    are hard.
    """
    import time

    from repro.harness import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(
        app="tmi", scheme="ms-src+ap", n_checkpoints=2, window=60.0, warmup=20.0,
        workers=8, spares=12, racks=2, seed=1, app_params={"n_minutes": 0.25},
    )
    run_experiment(cfg)  # warm-up: imports, allocator, caches
    wall = float("inf")
    stats = None
    popped = set()
    for _ in range(3):
        t0 = time.perf_counter()  # repro-lint: disable=DET001 (host timing, not simulated)
        res = run_experiment(cfg)
        elapsed = time.perf_counter() - t0  # repro-lint: disable=DET001 (host timing, not simulated)
        kernel = res.runtime.env.kernel_stats()
        popped.add(kernel["events_popped"])
        if elapsed < wall:
            wall, stats = elapsed, kernel
    events_per_sec = stats["events_popped"] / wall
    hit_rate = stats["pool_hits"] / max(1, stats["pool_hits"] + stats["pool_misses"])
    print(
        f"\nkernel microbench: {wall:.3f}s wall, {events_per_sec:,.0f} events/sec, "
        f"pool hit-rate {hit_rate:.2%} ({stats['pool_hits']} hits / {stats['pool_misses']} misses)"
    )
    # the engine's work is part of the determinism contract
    assert len(popped) == 1, f"events_popped varied across identical runs: {popped}"
    # the free lists must actually absorb the steady-state churn
    assert hit_rate > 0.90, f"pool hit-rate collapsed: {hit_rate:.2%}"
    write_artifact("BENCH_kernel.json", {
        "mode": "full" if os.environ.get("REPRO_FULL") else "fast",
        "wall_seconds": wall,
        "events_per_sec": events_per_sec,
        "events_popped": stats["events_popped"],
        "pool_hits": stats["pool_hits"],
        "pool_misses": stats["pool_misses"],
    })


def test_trace_artifact(write_artifact):
    """A small traced checkpoint+failure+recovery run, exported as JSONL
    and summary artifacts so every CI run ships an inspectable timeline."""
    from repro.harness import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(
        app="tmi", scheme="ms-src+ap", n_checkpoints=2, window=60.0, warmup=20.0,
        workers=8, spares=12, racks=2, seed=1, enable_recovery=True,
        app_params={"n_minutes": 0.25},
    )
    res = run_experiment(cfg, trace=True, failure_at=45.0)
    summary = res.trace_summary()
    assert summary["rounds"], "traced run should record checkpoint rounds"
    assert summary["recoveries"], "traced run should record the global rollback"
    # causal reconstruction: every completed round has a critical path
    # that tiles [round.start, round.complete] exactly
    paths = res.critical_paths()
    assert paths, "traced run should yield at least one critical path"
    for p in paths:
        assert abs(p.hop_sum() - p.seconds) < 1e-9
    print("\n" + res.trace_report())
    path = write_artifact("TRACE_summary.json", summary)
    if path is not None:
        art_dir = os.path.dirname(path)
        res.write_trace(os.path.join(art_dir, "TRACE_events.jsonl"))
        # Perfetto-loadable timeline (ui.perfetto.dev -> Open trace file)
        res.write_chrome_trace(os.path.join(art_dir, "TRACE_headline.perfetto.json"))
        # the comparable RunBundle: CI diffs it against the committed
        # benchmarks/BUNDLE_baseline via `python -m repro.inspect diff`
        res.write_run_bundle(art_dir, name="BUNDLE_headline")


def test_monitor_artifact(write_artifact):
    """A monitored headline run: the live plane watches the same cell with
    a deliberately tight checkpoint-staleness SLO, so every CI run ships a
    fired-and-resolved alert log plus the per-HAU health timeline.  The
    counts are deterministic; ``check_regression.py`` gates them warn-only
    against the committed ``benchmarks/ALERTS_baseline.json``."""
    from repro.harness import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(
        app="tmi", scheme="ms-src+ap", n_checkpoints=2, window=60.0, warmup=20.0,
        workers=8, spares=12, racks=2, seed=1, app_params={"n_minutes": 0.25},
        monitor_period=1.0,
        # staleness below the ~20s between rounds fires; latency relaxed so
        # only the staleness SLO alerts here (mirrors slo-staleness-alert.yaml)
        monitor_slos={"checkpoint-staleness": 12.0, "latency-p99": 60.0},
    )
    res = run_experiment(cfg)
    alerts = res.alerts
    assert alerts["ticks"] > 0, "monitored run should tick"
    assert alerts["summary"]["fired"] > 0, "staleness SLO should fire between rounds"
    assert alerts["summary"]["resolved"] > 0, "commits should resolve staleness alerts"
    timeline = res.health_timeline
    assert timeline, "monitored run should record health transitions"
    write_artifact("ALERTS_headline.json", {
        "mode": "full" if os.environ.get("REPRO_FULL") else "fast",
        "period": alerts["period"],
        "ticks": alerts["ticks"],
        "summary": alerts["summary"],
        "log_length": len(alerts["log"]),
        "health_transitions": len(timeline),
    })
    write_artifact("HEALTH_headline.json", {"timeline": timeline})


def test_telemetry_artifact(write_artifact):
    """A small telemetry-enabled run, exported as the deterministic JSON
    snapshot artifact (the metrics counterpart of the trace artifact)."""
    from repro.harness import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(
        app="tmi", scheme="ms-src+ap", n_checkpoints=2, window=60.0, warmup=20.0,
        workers=8, spares=12, racks=2, seed=1,
        app_params={"n_minutes": 0.25},
    )
    res = run_experiment(cfg, telemetry=True)
    snap = res.telemetry_snapshot()
    assert snap["metrics"], "telemetry run should register metrics"
    names = {m["name"] for m in snap["metrics"]}
    assert "ms_hau_tuples_total" in names
    assert "ms_checkpoint_write_seconds" in names
    assert any(snap["series"].values()), "sampler should record per-HAU series"
    path = write_artifact("TELEMETRY_snapshot.json", snap)
    if path is not None:
        # canonical re-write: the artifact is byte-stable across same-seed
        # runs (sort_keys + repr floats), unlike write_artifact's default
        res.write_telemetry(path)
