"""Headline claims (§I) and per-technique ablations (X1/X2 in DESIGN.md).

Derived from the Fig. 12/13 sweep:

* source preservation: +35% throughput / -9% latency at 0 checkpoints;
* parallel+asynchronous checkpointing: +28% throughput at 3 checkpoints
  (over MS-src);
* application-aware checkpointing: +14% throughput at 3 checkpoints
  (over MS-src+ap);
* all three together: +226% throughput / -57% latency vs the baseline at
  3 checkpoints (averaged over the three applications).

The reproduction asserts directions and coarse magnitudes — per
EXPERIMENTS.md, the simulated baseline degrades less steeply than the
paper's C++ system, so combined gains land lower but ordered the same.
"""

from conftest import get_sweep

from repro.harness import format_table
from repro.harness.figures import headline_numbers

PAPER = {
    "src_thpt_gain_0ckpt": 0.35,
    "src_lat_gain_0ckpt": 0.09,
    "ap_thpt_gain_3ckpt": 0.28,
    "aa_thpt_gain_3ckpt": 0.14,
    "total_thpt_gain_3ckpt": 2.26,
    "total_lat_gain_3ckpt": 0.57,
}


def test_headline_numbers(benchmark, sweep):
    numbers = benchmark.pedantic(lambda: headline_numbers(get_sweep()), rounds=1, iterations=1)
    rows = [
        [key, f"{value:+.1%}", f"{PAPER[key]:+.1%}"]
        for key, value in numbers.items()
    ]
    print("\n" + format_table(
        ["claim", "measured", "paper"], rows, title="Headline claims (3-app averages)"
    ))

    # directions must all hold
    assert numbers["src_thpt_gain_0ckpt"] > 0.10  # source preservation helps
    assert numbers["src_lat_gain_0ckpt"] > 0.0
    assert numbers["ap_thpt_gain_3ckpt"] > -0.05  # ap never hurts vs src
    assert numbers["aa_thpt_gain_3ckpt"] > -0.05
    assert numbers["total_thpt_gain_3ckpt"] > 0.15  # the full system wins
    assert numbers["total_lat_gain_3ckpt"] > 0.0
