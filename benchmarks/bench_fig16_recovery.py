"""Fig. 16: worst-case recovery time and its breakdown.

Every node hosting the application fails; all 55 HAUs restart on spare
nodes from shared storage.  Breakdown: reconnection / disk I/O / other
(reload + deserialise).

Paper (600 s windows): MS-src(+ap) 11.3 / 17.4 / 43.2 s for TMI / BCP /
SignalGuru; MS-src+ap+aa 4.7 / 9.9 / 10.0 s; Oracle 4.4 / 9.1 / 8.5 s.
Expected shape: disk I/O dominates; +aa cuts recovery time ~59% vs
MS-src(+ap), close to the Oracle.
"""

from repro.harness import format_table
from repro.harness.experiment import FULL_SCALE
from repro.harness.figures import fig16_recovery_time


def test_fig16_recovery_time(benchmark):
    data = benchmark.pedantic(fig16_recovery_time, rounds=1, iterations=1)
    for app, per_scheme in data.items():
        rows = []
        for scheme in ("ms-src+ap", "ms-src+ap+aa", "oracle"):
            d = per_scheme.get(scheme, {})
            rows.append([
                scheme,
                f"{d.get('reconnection', float('nan')):.2f}",
                f"{d.get('disk_io', float('nan')):.2f}",
                f"{d.get('other', float('nan')):.2f}",
                f"{d.get('total', float('nan')):.2f}",
                f"{d.get('bytes_read_mb', float('nan')):.1f}",
            ])
        print("\n" + format_table(
            ["scheme", "reconnect", "disk I/O", "other", "total (s)", "MB read"],
            rows, title=f"Fig. 16 — worst-case recovery, {app} (MS-src and MS-src+ap share recovery)",
        ))

        totals = {s: d["total"] for s, d in per_scheme.items() if d.get("total") == d.get("total")}
        if {"ms-src+ap", "ms-src+ap+aa", "oracle"} <= set(totals):
            ap = per_scheme["ms-src+ap"]
            # disk I/O dominates recovery over the reconnection round
            assert ap["disk_io"] >= ap["reconnection"]
            # The aa-vs-fixed-time read-volume ordering holds when the
            # operator state dominates the checkpoint.  In fast mode the
            # scaled-down states are comparable to the saved in-flight
            # tuples (whose volume is queue-depth noise at the chosen
            # instant), so the strict ordering is asserted at paper scale
            # only (REPRO_FULL=1); see EXPERIMENTS.md.
            aa = per_scheme["ms-src+ap+aa"]
            assert aa["total"] <= ap["total"] * 2.5  # noise-bounded always
            if FULL_SCALE and app == "bcp":
                assert aa["bytes_read_mb"] <= ap["bytes_read_mb"] * 1.10
                assert aa["disk_io"] <= ap["disk_io"] * 1.15
                assert totals["ms-src+ap+aa"] <= totals["ms-src+ap"] * 1.15
