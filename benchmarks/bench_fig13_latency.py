"""Fig. 13: normalised latency vs number of checkpoints per window.

Same sweep as Fig. 12 (cached).  Expected shape (paper): baseline
latency grows steeply with checkpoint count (2.7-5.9x at 8); MS-src
grows too; MS-src+ap grows mildly; MS-src+ap+aa stays within a few
percent of the no-checkpoint latency.
"""

from repro.harness import format_table

PAPER_NOTES = {
    "tmi": "paper: baseline 1.00->3.04, ms-src 0.95->2.74, ap 1.01->1.31, aa ~0.96",
    "bcp": "paper: baseline 1.00->2.78, ms-src 0.91->2.18, ap 0.96->1.39, aa ~0.96",
    "signalguru": "paper: baseline 1.00->5.82, ms-src 0.86->5.11, ap 1.23->... , aa ~1.1",
}


def test_fig13_latency(benchmark, get_sweep):
    sweep = benchmark.pedantic(get_sweep, rounds=1, iterations=1)
    for app in ("tmi", "bcp", "signalguru"):
        series = sweep.normalized_latency(app)
        counts = sorted({n for pts in series.values() for (n, _v) in pts})
        headers = ["scheme"] + [str(n) for n in counts]
        rows = []
        for scheme in ("baseline", "ms-src", "ms-src+ap", "ms-src+ap+aa"):
            pts = dict(series.get(scheme, []))
            rows.append([scheme] + [f"{pts.get(n, float('nan')):.2f}" for n in counts])
        print("\n" + format_table(headers, rows, title=f"Fig. 13 — {app} (normalised latency)"))
        print("  " + PAPER_NOTES[app])

        base = dict(series["baseline"])
        src = dict(series["ms-src"])
        aa = dict(series["ms-src+ap+aa"])
        hi = max(counts)
        # Meteor Shower's latency at 0 checkpoints is below the baseline's
        assert src[0] < 1.0, f"{app}: MS-src latency should be below baseline at 0"
        # at high checkpoint counts, the full system's latency stays below
        # the baseline's
        assert aa[hi] < base[hi] + 0.05
