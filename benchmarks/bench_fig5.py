"""Fig. 5: fluctuation in state size for the three applications.

Paper envelopes: TMI(N=10) 0..>300 MB; BCP 100-700 MB (avg ~400);
SignalGuru 200 MB-2 GB (avg ~1 GB).  Fast mode scales sizes with the
window (state_scale = window/600); the assertions below check the
*shape*: strong fluctuation with clear local minima, and the relative
ordering of the three workloads (low / medium / high).
"""

from repro.harness.experiment import DEFAULT_WINDOW
from repro.harness.figures import fig5_state_traces


def _stats(series):
    values = [v for (_t, v) in series]
    if not values:
        return 0.0, 0.0, 0.0
    return min(values), max(values), sum(values) / len(values)


def test_fig5_state_fluctuation(benchmark):
    scale = min(1.0, DEFAULT_WINDOW / 600.0)
    traces = benchmark.pedantic(
        fig5_state_traces, kwargs={"tmi_windows": (1.0, 5.0, 10.0)}, rounds=1, iterations=1
    )
    print(f"\nFig. 5 — state size fluctuation (state_scale={scale:.2f}; MB)")
    stats = {}
    for name, series in traces.items():
        lo, hi, avg = _stats(series)
        stats[name] = (lo, hi, avg)
        print(f"  {name:14s} min={lo:8.1f}  max={hi:8.1f}  avg={avg:8.1f}  samples={len(series)}")

    # shapes: every dynamic trace fluctuates (max >> min)
    for name in ("bcp", "signalguru"):
        lo, hi, avg = stats[name]
        assert hi > 1.5 * max(lo, 1e-9), f"{name} state does not fluctuate"
    # k-means pools collapse at window boundaries: min well below average
    tmi_keys = [k for k in stats if k.startswith("tmi")]
    assert tmi_keys
    for k in tmi_keys:
        lo, hi, avg = stats[k]
        assert lo < 0.5 * avg
    # workload ordering: SignalGuru (high) > BCP (medium) in average state
    assert stats["signalguru"][2] > stats["bcp"][2]
