"""Fig. 10: the profiling pass — dynamic HAUs, per-period minima, smax.

Runs BCP without checkpointing, feeds the observed state sizes through
the §III-C2 profiling machinery and reports the derived alert threshold
(smax), smin, the bounded relaxation factor and the dynamic-HAU set.
"""

from repro.harness.experiment import (
    DEFAULT_WINDOW,
    ExperimentConfig,
    run_experiment,
)
from repro.harness.figures import default_app_params
from repro.state import MIN_RELAXATION, StateProfile


def profile_bcp():
    cfg = ExperimentConfig(
        app="bcp", scheme="none",
        app_params=default_app_params("bcp", DEFAULT_WINDOW),
    )
    res = run_experiment(cfg, trace_state=True)
    period = DEFAULT_WINDOW / 3.0
    profile = StateProfile(checkpoint_period=period, min_dynamic_bytes=1e6, startup_skip=0.25)
    for hau_id, samples in res.state_trace.samples.items():
        for t, s in samples:
            profile.observe(hau_id, t, float(s))
    return profile.result(), period


def test_fig10_profiling(benchmark):
    result, period = benchmark.pedantic(profile_bcp, rounds=1, iterations=1)
    print(f"\nFig. 10 — profiling (BCP, checkpoint period {period:.0f}s)")
    print(f"  dynamic HAUs: {result.dynamic_haus}")
    print(f"  smin = {result.smin / 1e6:.1f} MB   smax = {result.smax / 1e6:.1f} MB")
    print(f"  relaxation factor = {result.relaxation:.2f} (bounded at {MIN_RELAXATION})")
    for t, s in result.period_minima:
        print(f"  period minimum: t={t:8.1f}s  size={s / 1e6:8.1f} MB")

    # the historical-image operators are the dynamic HAUs
    assert any(h.startswith("H") for h in result.dynamic_haus)
    # no stateless stage should be classified dynamic
    assert not any(h.startswith("D") for h in result.dynamic_haus)
    assert result.smax >= result.smin >= 0
    assert result.period_minima
