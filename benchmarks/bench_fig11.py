"""Fig. 11: choosing the time for checkpointing (alert mode + ICR).

Runs MS-src+ap+aa on BCP and reports, per checkpoint period, when and
why the controller fired the round (first non-negative aggregated ICR in
alert mode, or the period-end fallback) and how much dynamic state the
round actually checkpointed versus the time-average — the quantity
application-aware checkpointing exists to minimise (§I: ~100% / 50% /
80% reduction for TMI / BCP / SignalGuru).
"""

from repro.harness.experiment import (
    DEFAULT_WINDOW,
    ExperimentConfig,
    run_experiment,
)
from repro.harness.figures import default_app_params


def run_aa():
    cfg = ExperimentConfig(
        app="bcp", scheme="ms-src+ap+aa", n_checkpoints=3,
        warmup=ExperimentConfig().warmup + DEFAULT_WINDOW / 3.0,
        app_params=default_app_params("bcp", DEFAULT_WINDOW),
    )
    res = run_experiment(cfg, trace_state=True)
    return res


def test_fig11_alert_mode_decisions(benchmark):
    res = benchmark.pedantic(run_aa, rounds=1, iterations=1)
    scheme = res.scheme
    print("\nFig. 11 — application-aware checkpoint timing (BCP)")
    print(f"  profiled smax = {scheme.profile_result.smax / 1e6:.1f} MB; "
          f"dynamic HAUs = {scheme.dynamic_haus}")
    for t, reason in scheme.decisions:
        print(f"  round initiated at t={t:8.1f}s  reason={reason}")

    # dynamic-state average vs what the aa rounds checkpointed
    dyn_series = res.state_trace.series("H")
    avg_dynamic = sum(s for (_t, s) in dyn_series) / max(1, len(dyn_series))
    ckpt_sizes = []
    for log in res.checkpoint_logs:
        dyn_bytes = sum(
            bd.state_bytes for hau, bd in log.haus.items() if hau.startswith("H")
        )
        if log.haus:
            ckpt_sizes.append(dyn_bytes)
    if ckpt_sizes:
        mean_ckpt = sum(ckpt_sizes) / len(ckpt_sizes)
        reduction = 1.0 - mean_ckpt / max(avg_dynamic, 1e-9)
        print(f"  avg dynamic state {avg_dynamic / 1e6:.1f} MB; "
              f"avg checkpointed dynamic state {mean_ckpt / 1e6:.1f} MB; "
              f"reduction {reduction:.0%} (paper BCP: ~50%)")
        assert mean_ckpt < avg_dynamic, "aa failed to checkpoint below the average state"
    assert scheme.decisions, "no rounds were initiated"
    assert scheme.profile_result is not None
