"""A2 ablation: replication-based fault tolerance vs checkpointing.

Quantifies §I's dismissal of replication: "replication-based schemes
take up substantial computational resources, and are not economically
viable for large-scale failures".  For the 55-HAU applications, compares
the node footprint of k-fault-tolerant active replication against
checkpointing with a spare pool, and checks rack-failure survivability.
"""

from repro.core import ReplicationEstimator
from repro.harness import format_table

HAUS = 55
SPARES = 8
RACKS = 4


def compute():
    est = ReplicationEstimator(hau_count=HAUS, racks=RACKS)
    rows = []
    for k in (0, 1, 2, 3):
        cost = est.cost(k)
        rows.append(
            [
                f"k={k}",
                cost.nodes_required,
                f"x{cost.extra_network_factor:.0f}",
                "yes" if cost.survives_rack_failure else "no",
            ]
        )
    return est, rows


def test_ablation_replication(benchmark):
    est, rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    ckpt_nodes = est.checkpoint_footprint(SPARES)
    print("\n" + format_table(
        ["replication", "nodes", "network", "survives rack failure"],
        rows, title="A2 — active replication footprint (55-HAU application)",
    ))
    print(f"checkpointing footprint (55 HAUs + {SPARES} spares): {ckpt_nodes} nodes")
    print(f"break-even k (replication no more expensive): {est.break_even_k(SPARES)}")

    # 1-fault replication already exceeds the checkpointing footprint
    assert est.cost(1).nodes_required > ckpt_nodes
    # an 80-node rack failure defeats any affordable replication degree:
    # surviving a whole-rack loss with replicas requires one replica per
    # rack, i.e. k+1 >= racks -> 4x the cluster for our 4-rack layout
    assert est.cost(RACKS - 1).nodes_required == HAUS * RACKS
    assert est.break_even_k(SPARES) == 0
