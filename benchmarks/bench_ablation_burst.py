"""A3 ablation: surviving correlated rack-scale bursts.

The paper's motivation: 1-safe (baseline) schemes cannot recover when an
HAU and its upstream neighbour fail together, because the upstream's
retained tuples die with it; Meteor Shower's global rollback plus
source preservation recovers from arbitrary burst sizes.

This bench kills one whole rack (~14 of 55 worker nodes) under both the
baseline and MS-src+ap and reports the outcome.
"""

from repro.harness import format_table
from repro.harness.experiment import (
    DEFAULT_WARMUP,
    DEFAULT_WINDOW,
    ExperimentConfig,
)
from repro.harness.figures import default_app_params


def run_burst(scheme: str):
    cfg = ExperimentConfig(
        app="bcp", scheme=scheme, n_checkpoints=2,
        app_params=default_app_params("bcp", DEFAULT_WINDOW),
        enable_recovery=True,
    )
    # victims: every worker in rack 1 (cluster is racks=4, round-robin)
    fail_at = DEFAULT_WARMUP + 0.55 * DEFAULT_WINDOW
    from repro.apps import APPS
    from repro.cluster.topology import ClusterSpec
    from repro.dsps.runtime import DSPSRuntime, RuntimeConfig
    from repro.harness.experiment import make_scheme
    from repro.simulation import Environment

    env = Environment()
    app = APPS[cfg.app].build(seed=cfg.seed, **cfg.app_params)
    rt = DSPSRuntime(
        env, app, make_scheme(cfg),
        RuntimeConfig(seed=cfg.seed, cluster=ClusterSpec(workers=55, spares=60, racks=4),
                      channel_capacity=16, inbox_capacity=32),
    )
    rt.start()

    def killer():
        yield env.timeout(fail_at)
        rt.dc.racks[1].fail_all("rack-burst")

    env.process(killer(), label="rack-killer")
    env.run(until=cfg.end)
    probe = app.params.get("probe_prefix", "")
    post_thpt = rt.metrics.stage_throughput(probe, fail_at + 20.0, cfg.end)
    return rt, rt.scheme, post_thpt, fail_at


def test_ablation_rack_burst(benchmark):
    def both():
        return {s: run_burst(s) for s in ("baseline", "ms-src+ap")}

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = []
    for scheme, (rt, sch, post, _fail_at) in results.items():
        if scheme == "baseline":
            outcome = (
                f"{len(sch.recovered)} recovered, {len(sch.unrecoverable)} UNRECOVERABLE"
            )
        else:
            recs = sch.recoveries
            outcome = (
                f"global rollback in {recs[0].total:.1f}s" if recs else "no recovery!"
            )
        alive = sum(1 for h in rt.haus.values() if h.node.alive)
        rows.append([scheme, outcome, f"{alive}/55", post])
    print("\n" + format_table(
        ["scheme", "outcome", "HAUs alive", "post-failure throughput"],
        rows, title="A3 — rack-scale burst failure (BCP, one rack killed)",
    ))

    baseline_sch = results["baseline"][1]
    ms_sch = results["ms-src+ap"][1]
    # the 1-safe baseline loses data: some victims are unrecoverable
    assert baseline_sch.unrecoverable, "expected baseline data loss under a rack burst"
    # Meteor Shower performs a global rollback and resumes processing
    assert ms_sch.recoveries, "MS-src+ap failed to recover"
    assert results["ms-src+ap"][2] > 0, "MS did not resume processing after recovery"
    alive_after = sum(1 for h in results["ms-src+ap"][0].haus.values() if h.node.alive)
    assert alive_after == 55
