"""Tests for the application kernels (k-means, vision, SVM)."""

import numpy as np
import pytest

from repro.apps.kernels import (
    LinearSVM,
    assign_clusters,
    color_filter,
    count_people,
    frame_difference,
    kmeans,
    make_frame,
    shape_filter,
)


# --- k-means ---------------------------------------------------------------------


def test_kmeans_separates_obvious_clusters():
    rng = np.random.default_rng(0)
    a = rng.normal(0.0, 0.1, size=(50, 2))
    b = rng.normal(10.0, 0.1, size=(50, 2))
    pts = np.vstack([a, b])
    centroids, labels = kmeans(pts, k=2)
    assert centroids.shape == (2, 2)
    # the two halves get distinct labels, consistently
    assert len(set(labels[:50])) == 1
    assert len(set(labels[50:])) == 1
    assert labels[0] != labels[-1]


def test_kmeans_deterministic_given_input():
    rng = np.random.default_rng(1)
    pts = rng.normal(size=(100, 3))
    c1, l1 = kmeans(pts, k=4)
    c2, l2 = kmeans(pts.copy(), k=4)
    assert np.array_equal(c1, c2)
    assert np.array_equal(l1, l2)


def test_kmeans_k_capped_at_n():
    pts = np.array([[0.0, 0.0], [1.0, 1.0]])
    centroids, labels = kmeans(pts, k=4)
    assert centroids.shape[0] == 2


def test_kmeans_rejects_empty():
    with pytest.raises(ValueError):
        kmeans(np.empty((0, 2)))


def test_assign_clusters_nearest():
    centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
    pts = np.array([[1.0, 1.0], [9.0, 9.0]])
    assert assign_clusters(pts, centroids).tolist() == [0, 1]


# --- vision --------------------------------------------------------------------------


def test_count_people_exact():
    rng = np.random.default_rng(2)
    for n in (0, 1, 3, 7):
        frame = make_frame(rng, people=n)
        assert count_people(frame) == n


def test_color_filter_detects_each_colour():
    rng = np.random.default_rng(3)
    for colour in ("red", "yellow", "green"):
        frame = make_frame(rng, people=2, light=colour)
        assert color_filter(frame) == colour


def test_color_filter_none_when_absent():
    rng = np.random.default_rng(4)
    frame = make_frame(rng, people=2, light=None)
    assert color_filter(frame) is None


def test_shape_filter_confirms_light():
    rng = np.random.default_rng(5)
    frame = make_frame(rng, light="green")
    assert shape_filter(frame, "green")
    assert not shape_filter(frame, None)
    assert not shape_filter(frame, "red")


def test_frame_difference_zero_for_identical():
    rng = np.random.default_rng(6)
    frame = make_frame(rng, people=1)
    assert frame_difference(frame, frame) == 0.0
    other = make_frame(rng, people=5)
    assert frame_difference(frame, other) > 0.0


# --- SVM ----------------------------------------------------------------------------


def test_svm_learns_linearly_separable():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(200, 2))
    y = np.where(X[:, 0] + X[:, 1] > 0, 1, -1)
    svm = LinearSVM(dim=2).fit(X, y, epochs=100)
    assert svm.accuracy(X, y) > 0.95


def test_svm_deterministic():
    rng = np.random.default_rng(8)
    X = rng.normal(size=(100, 3))
    y = np.where(X[:, 0] > 0, 1, -1)
    a = LinearSVM(dim=3).fit(X, y)
    b = LinearSVM(dim=3).fit(X, y)
    assert np.array_equal(a.w, b.w)
    assert a.b == b.b


def test_svm_rejects_bad_labels():
    with pytest.raises(ValueError):
        LinearSVM(dim=1).fit(np.zeros((2, 1)), np.array([0, 2]))
