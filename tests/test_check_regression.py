"""Unit tests for the CI regression gate (benchmarks/check_regression.py):
throughput gate, the latency gate and its dedicated exit code, and
backward compatibility with latency-less baselines."""

import importlib.util
import json
import sys
from pathlib import Path

_MOD_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _MOD_PATH)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules["check_regression"] = check_regression
_spec.loader.exec_module(check_regression)


def _report(cells, mode="fast"):
    return {"mode": mode, "cells": cells}


def _cell(app="tmi", scheme="ms-src", n=0, throughput=1000.0, latency=2.0, **extra):
    cell = {
        "app": app,
        "scheme": scheme,
        "n_checkpoints": n,
        "throughput": throughput,
        "latency": latency,
    }
    cell.update(extra)
    return cell


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_identical_reports_pass(tmp_path):
    rep = _report([_cell(), _cell(scheme="baseline", throughput=400.0, latency=5.0)])
    cur = _write(tmp_path, "cur.json", rep)
    base = _write(tmp_path, "base.json", rep)
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK


def test_throughput_regression_exits_1(tmp_path):
    base = _write(tmp_path, "base.json", _report([_cell(throughput=1000.0)]))
    cur = _write(tmp_path, "cur.json", _report([_cell(throughput=800.0)]))
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_THROUGHPUT
    )
    # within tolerance passes
    cur_ok = _write(tmp_path, "cur_ok.json", _report([_cell(throughput=900.0)]))
    assert check_regression.main([cur_ok, "--baseline", base]) == check_regression.EXIT_OK


def test_latency_only_regression_exits_3(tmp_path):
    base = _write(tmp_path, "base.json", _report([_cell(latency=2.0)]))
    cur = _write(tmp_path, "cur.json", _report([_cell(latency=2.5)]))  # +25%
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_LATENCY
    )
    # a custom latency tolerance can absorb it
    assert (
        check_regression.main(
            [cur, "--baseline", base, "--latency-tolerance", "0.30"]
        )
        == check_regression.EXIT_OK
    )


def test_throughput_regression_wins_over_latency(tmp_path):
    base = _write(tmp_path, "base.json", _report([_cell(throughput=1000.0, latency=2.0)]))
    cur = _write(tmp_path, "cur.json", _report([_cell(throughput=500.0, latency=9.0)]))
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_THROUGHPUT
    )


def test_latency_improvement_passes(tmp_path):
    base = _write(tmp_path, "base.json", _report([_cell(latency=2.0)]))
    cur = _write(tmp_path, "cur.json", _report([_cell(latency=1.0)]))
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK


def test_baseline_without_latency_skips_gate(tmp_path, capsys):
    base_cell = _cell()
    del base_cell["latency"]
    base = _write(tmp_path, "base.json", _report([base_cell]))
    cur = _write(tmp_path, "cur.json", _report([_cell(latency=99.0)]))
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK
    assert "no latency, gate skipped" in capsys.readouterr().out


def test_current_missing_latency_is_a_latency_regression(tmp_path):
    base = _write(tmp_path, "base.json", _report([_cell(latency=2.0)]))
    cur_cell = _cell()
    del cur_cell["latency"]
    cur = _write(tmp_path, "cur.json", _report([cur_cell]))
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_LATENCY
    )


def test_missing_cell_and_mode_mismatch_exit_1(tmp_path):
    base = _write(tmp_path, "base.json", _report([_cell(), _cell(scheme="oracle")]))
    cur = _write(tmp_path, "cur.json", _report([_cell()]))
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_THROUGHPUT
    )
    cur_full = _write(tmp_path, "cur_full.json", _report([_cell()], mode="full"))
    assert (
        check_regression.main([cur_full, "--baseline", base])
        == check_regression.EXIT_THROUGHPUT
    )


def test_bad_invocation_exits_2(tmp_path):
    missing = str(tmp_path / "nope.json")
    assert check_regression.main([missing]) == check_regression.EXIT_BAD_INVOCATION
    not_report = _write(tmp_path, "bad.json", {"hello": 1})
    assert (
        check_regression.main([not_report]) == check_regression.EXIT_BAD_INVOCATION
    )


def test_checked_in_baseline_has_latency_cells():
    """The shipped baseline carries per-cell latency, so the new gate is
    active (not silently skipped) in CI."""
    report = check_regression.load_report(str(check_regression.DEFAULT_BASELINE))
    lat = check_regression.cell_values(report, "latency")
    assert lat, "BENCH_baseline.json should carry per-cell latency"


# -- kernel microbenchmark gate (warn-only wall clock; hard events_popped) ----

def _kernel(wall=2.0, eps=100_000.0, popped=272_490, mode="fast"):
    return {
        "mode": mode,
        "wall_seconds": wall,
        "events_per_sec": eps,
        "events_popped": popped,
        "pool_hits": 240_000,
        "pool_misses": 1_000,
    }


def _with_kernel(tmp_path, base_kernel, cur_kernel):
    rep = _report([_cell()])
    base = dict(rep)
    base["kernel"] = base_kernel
    base_path = _write(tmp_path, "base.json", base)
    cur_path = _write(tmp_path, "cur.json", rep)
    (tmp_path / "BENCH_kernel.json").write_text(json.dumps(cur_kernel))
    return cur_path, base_path


def test_kernel_wall_regression_is_warn_only(tmp_path, capsys):
    cur, base = _with_kernel(tmp_path, _kernel(wall=1.0, eps=200_000.0), _kernel(wall=3.0, eps=50_000.0))
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK
    out = capsys.readouterr().out
    assert "warn-only" in out
    assert "wall_seconds" in out and "events_per_sec" in out


def test_kernel_wall_within_tolerance_is_silent(tmp_path, capsys):
    cur, base = _with_kernel(tmp_path, _kernel(wall=2.0), _kernel(wall=2.2))
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK
    assert "warn-only" not in capsys.readouterr().out


def test_kernel_events_popped_drift_fails_hard(tmp_path):
    cur, base = _with_kernel(tmp_path, _kernel(popped=272_490), _kernel(popped=272_491))
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_THROUGHPUT
    )


def test_kernel_gate_skipped_without_report(tmp_path, capsys):
    base = dict(_report([_cell()]))
    base["kernel"] = _kernel()
    base_path = _write(tmp_path, "base.json", base)
    cur_path = _write(tmp_path, "cur.json", _report([_cell()]))
    assert check_regression.main([cur_path, "--baseline", base_path]) == check_regression.EXIT_OK
    assert "kernel gate skipped" in capsys.readouterr().out


def test_kernel_mode_mismatch_skips_comparison(tmp_path, capsys):
    cur, base = _with_kernel(tmp_path, _kernel(mode="full"), _kernel(popped=1, mode="fast"))
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK
    assert "mode mismatch" in capsys.readouterr().out


def test_checked_in_baseline_has_kernel_fields():
    report = check_regression.load_report(str(check_regression.DEFAULT_BASELINE))
    kernel = report.get("kernel")
    assert kernel, "BENCH_baseline.json should carry the kernel microbench fields"
    for key in ("wall_seconds", "events_per_sec", "events_popped"):
        assert key in kernel


def test_critical_path_growth_is_warn_only(tmp_path, capsys):
    base = _write(
        tmp_path, "base.json", _report([_cell(critical_path_seconds=1.0)])
    )
    cur = _write(
        tmp_path, "cur.json", _report([_cell(critical_path_seconds=2.0)])
    )
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK
    out = capsys.readouterr().out
    assert "critical path" in out and "warn-only" in out


def test_critical_path_within_tolerance_is_silent(tmp_path, capsys):
    base = _write(
        tmp_path, "base.json", _report([_cell(critical_path_seconds=1.0)])
    )
    cur = _write(
        tmp_path, "cur.json", _report([_cell(critical_path_seconds=1.1)])
    )
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK
    assert "critical path" not in capsys.readouterr().out


def test_critical_path_gate_skips_missing_and_zero_cells(tmp_path, capsys):
    # baseline without the field, a zero baseline (no round completed),
    # and a current report missing the field: all silently skipped
    base = _write(
        tmp_path,
        "base.json",
        _report([
            _cell(scheme="ms-src"),
            _cell(scheme="ms-src+ap", critical_path_seconds=0.0),
            _cell(scheme="ms-src+ap+aa", critical_path_seconds=1.0),
        ]),
    )
    cur = _write(
        tmp_path,
        "cur.json",
        _report([
            _cell(scheme="ms-src", critical_path_seconds=9.0),
            _cell(scheme="ms-src+ap", critical_path_seconds=9.0),
            _cell(scheme="ms-src+ap+aa"),
        ]),
    )
    assert check_regression.main([cur, "--baseline", base]) == check_regression.EXIT_OK
    assert "critical path" not in capsys.readouterr().out


def test_critical_path_tolerance_flag(tmp_path, capsys):
    base = _write(tmp_path, "base.json", _report([_cell(critical_path_seconds=1.0)]))
    cur = _write(tmp_path, "cur.json", _report([_cell(critical_path_seconds=1.4)]))
    args = [cur, "--baseline", base, "--critical-path-tolerance", "0.1"]
    assert check_regression.main(args) == check_regression.EXIT_OK
    assert "critical path" in capsys.readouterr().out


def test_checked_in_baseline_has_critical_path_cells():
    report = check_regression.load_report(str(check_regression.DEFAULT_BASELINE))
    with_cp = [
        c
        for c in report["cells"]
        if c.get("critical_path_seconds", 0.0) > 0.0
    ]
    assert with_cp, (
        "BENCH_baseline.json should record critical_path_seconds for "
        "cells whose rounds completed"
    )


# ---------------------------------------------------------------------------
# malformed reports (exit 4): missing/mistyped gate fields fail loudly
# ---------------------------------------------------------------------------


def test_baseline_cell_missing_gate_field_exits_4(tmp_path, capsys):
    cur = _write(tmp_path, "cur.json", _report([_cell()]))
    bad_cell = {"app": "tmi", "scheme": "ms-src", "n_checkpoints": 0}  # no throughput
    base = _write(tmp_path, "base.json", _report([bad_cell]))
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_BAD_BASELINE
    )
    err = capsys.readouterr().err
    assert "missing gate field(s) throughput" in err
    assert "base.json" in err
    assert "cells[0]" in err


def test_current_cell_missing_gate_field_exits_4(tmp_path, capsys):
    bad_cell = {"scheme": "ms-src", "n_checkpoints": 0, "throughput": 1.0}  # no app
    cur = _write(tmp_path, "cur.json", _report([bad_cell]))
    base = _write(tmp_path, "base.json", _report([_cell()]))
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_BAD_BASELINE
    )
    err = capsys.readouterr().err
    assert "missing gate field(s) app" in err
    assert "cur.json" in err


def test_non_numeric_gate_field_exits_4(tmp_path, capsys):
    cur = _write(tmp_path, "cur.json", _report([_cell()]))
    base = _write(
        tmp_path, "base.json", _report([_cell(throughput="not-a-number")])
    )
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_BAD_BASELINE
    )
    assert "non-numeric gate field" in capsys.readouterr().err


def test_non_dict_cell_exits_4(tmp_path, capsys):
    cur = _write(tmp_path, "cur.json", _report([_cell()]))
    base = _write(tmp_path, "base.json", _report(["oops"]))
    assert (
        check_regression.main([cur, "--baseline", base])
        == check_regression.EXIT_BAD_BASELINE
    )
    assert "cells[0] is not an object" in capsys.readouterr().err
