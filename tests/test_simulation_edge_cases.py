"""Edge cases of the simulation kernel not covered by the main suites."""

import pytest

from repro.simulation import AllOf, AnyOf, Environment, Interrupt, SimulationError


def test_anyof_propagates_failure():
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        raise ValueError("x")

    def waiter():
        bad = env.process(failer())
        try:
            yield AnyOf(env, [bad, env.timeout(5.0)])
        except ValueError:
            return "caught"
        return "missed"

    p = env.process(waiter())
    env.run(until=p)
    assert p.value == "caught"


def test_allof_propagates_failure():
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        raise KeyError("y")

    def waiter():
        bad = env.process(failer())
        try:
            yield AllOf(env, [bad, env.timeout(0.5)])
        except KeyError:
            return "caught"

    p = env.process(waiter())
    env.run(until=p)
    assert p.value == "caught"


def test_interrupt_carries_cause_object():
    env = Environment()
    seen = {}

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt as intr:
            seen["cause"] = intr.cause

    p = env.process(victim())

    def killer():
        yield env.timeout(1.0)
        p.interrupt({"reason": "rack", "id": 3})

    env.process(killer())
    env.run()
    assert seen["cause"] == {"reason": "rack", "id": 3}


def test_zero_delay_timeout_fires_same_instant_in_order():
    env = Environment()
    order = []

    def a():
        yield env.timeout(0.0)
        order.append("a")

    def b():
        yield env.timeout(0.0)
        order.append("b")

    env.process(a())
    env.process(b())
    env.run()
    assert order == ["a", "b"]
    assert env.now == 0.0


def test_process_can_wait_on_same_event_twice_pattern():
    """Yielding an already-flushed event returns its value again."""
    env = Environment()
    ev = env.event()
    results = []

    def proc():
        got1 = yield ev
        yield env.timeout(1.0)
        got2 = yield ev  # long settled and flushed
        results.append((got1, got2))

    env.process(proc())

    def firer():
        yield env.timeout(0.5)
        ev.succeed("v")

    env.process(firer())
    env.run()
    assert results == [("v", "v")]


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        ev.fail("not-an-exception")


def test_run_until_event_with_no_schedule_raises():
    env = Environment()
    pending = env.event()
    with pytest.raises(SimulationError, match="exhausted"):
        env.run(until=pending)


def test_nested_interrupt_of_inner_process():
    """Interrupting an inner process fails the outer's wait cleanly."""
    env = Environment()

    def inner():
        yield env.timeout(100.0)

    def outer():
        child = env.process(inner())

        def killer():
            yield env.timeout(1.0)
            child.interrupt("stop")

        env.process(killer())
        result = yield child  # inner swallows the interrupt, finishes None
        return ("done", result, env.now)

    p = env.process(outer())
    env.run(until=p)
    assert p.value == ("done", None, 1.0)
