"""Unit tests for the discrete-event kernel (repro.simulation.core)."""

import pytest

from repro.simulation import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 5.0
    assert env.now == 5.0


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_run_until_time_stops_exactly():
    env = Environment()
    seen = []

    def proc():
        while True:
            yield env.timeout(1.0)
            seen.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert seen == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"


def test_run_until_failed_event_raises():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise ValueError("boom")

    p = env.process(proc())
    with pytest.raises(ValueError, match="boom"):
        env.run(until=p)


def test_processes_interleave_in_time_order():
    env = Environment()
    trace = []

    def proc(name, delay):
        yield env.timeout(delay)
        trace.append((env.now, name))

    env.process(proc("slow", 3.0))
    env.process(proc("fast", 1.0))
    env.process(proc("mid", 2.0))
    env.run()
    assert trace == [(1.0, "fast"), (2.0, "mid"), (3.0, "slow")]


def test_simultaneous_events_fire_in_creation_order():
    env = Environment()
    trace = []

    def proc(name):
        yield env.timeout(1.0)
        trace.append(name)

    for name in "abcde":
        env.process(proc(name))
    env.run()
    assert trace == list("abcde")


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_event_double_settle_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_process_receives_event_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield env.timeout(1.0)
        ev.succeed("payload")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == ["payload"]


def test_process_sees_failed_event_as_exception():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield env.timeout(1.0)
        ev.fail(RuntimeError("bad"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert caught == ["bad"]


def test_yield_already_triggered_event_resumes():
    env = Environment()
    trace = []

    def proc():
        ev = env.event()
        ev.succeed("early")
        got = yield ev
        trace.append(got)
        # also a long-settled timeout
        t = env.timeout(0.0, value="t")
        yield env.timeout(1.0)
        got2 = yield t
        trace.append(got2)

    env.process(proc())
    env.run()
    assert trace == ["early", "t"]


def test_yield_non_event_fails_process():
    env = Environment()

    def proc():
        yield 42

    p = env.process(proc())
    with pytest.raises(SimulationError):
        env.run(until=p)


def test_interrupt_while_waiting():
    env = Environment()
    trace = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            trace.append("finished")
        except Interrupt as intr:
            trace.append(("interrupted", env.now, intr.cause))

    def killer(victim):
        yield env.timeout(3.0)
        victim.interrupt("node-down")

    victim = env.process(sleeper())
    env.process(killer(victim))
    env.run()
    assert trace == [("interrupted", 3.0, "node-down")]


def test_interrupt_finished_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    p.interrupt("late")  # must not raise
    assert p.triggered


def test_uncaught_interrupt_terminates_process_quietly():
    env = Environment()

    def sleeper():
        yield env.timeout(100.0)

    def killer(victim):
        yield env.timeout(1.0)
        victim.interrupt()

    p = env.process(sleeper())
    env.process(killer(p))
    env.run()
    assert p.triggered and p.ok


def test_interrupted_process_does_not_wake_twice():
    env = Environment()
    trace = []

    def sleeper():
        try:
            yield env.timeout(5.0)
            trace.append("slept")
        except Interrupt:
            trace.append("intr")
            yield env.timeout(10.0)
            trace.append("after")

    def killer(victim):
        yield env.timeout(1.0)
        victim.interrupt()

    p = env.process(sleeper())
    env.process(killer(p))
    env.run()
    # The original 5s timeout must not resume the process at t=5.
    assert trace == ["intr", "after"]
    assert env.now == 11.0


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        res = yield AnyOf(env, [t1, t2])
        return (env.now, list(res.values()))

    p = env.process(proc())
    env.run(until=p)
    assert p.value == (1.0, ["a"])


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        res = yield AllOf(env, [t1, t2])
        return (env.now, sorted(res.values()))

    p = env.process(proc())
    env.run(until=p)
    assert p.value == (2.0, ["a", "b"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        yield AllOf(env, [])
        return env.now

    p = env.process(proc())
    env.run(until=p)
    assert p.value == 0.0


def test_condition_with_pretriggered_events():
    env = Environment()

    def proc():
        ev = env.event()
        ev.succeed("x")
        res = yield AllOf(env, [ev, env.timeout(1.0, value="y")])
        return sorted(res.values())

    p = env.process(proc())
    env.run(until=p)
    assert p.value == ["x", "y"]


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_run_backwards_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_nested_process_wait():
    env = Environment()

    def inner():
        yield env.timeout(2.0)
        return "inner-done"

    def outer():
        res = yield env.process(inner())
        return (env.now, res)

    p = env.process(outer())
    env.run(until=p)
    assert p.value == (2.0, "inner-done")


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise KeyError("k")

    def outer():
        try:
            yield env.process(bad())
        except KeyError:
            return "caught"

    p = env.process(outer())
    env.run(until=p)
    assert p.value == "caught"


def test_determinism_same_schedule_twice():
    def build():
        env = Environment()
        trace = []

        def proc(name, delays):
            for d in delays:
                yield env.timeout(d)
                trace.append((env.now, name))

        env.process(proc("a", [1.0, 1.0, 1.0]))
        env.process(proc("b", [0.5, 2.0]))
        env.process(proc("c", [1.5, 1.5]))
        env.run()
        return trace

    assert build() == build()
