"""Tests for the baseline: input preservation, independent checkpoints,
1-safe recovery, and its failure under correlated faults."""


from repro.cluster import ClusterSpec
from repro.core import BaselineScheme
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph
from repro.simulation import Environment


def deploy(scheme, seed=7, workers=6, spares=6, **graph_kw):
    g, holder = make_chain_graph(**graph_kw)
    env = Environment()
    app = StreamApplication(name="t", graph=g)
    rt = DSPSRuntime(
        env,
        app,
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=workers, spares=spares, racks=2)),
    )
    rt.start()
    return env, rt, holder


def test_every_hau_checkpoints_periodically():
    scheme = BaselineScheme(checkpoint_period=2.0)
    env, rt, _ = deploy(scheme)
    env.run(until=10.0)
    hau_ids = {bd.hau_id for bd in scheme.breakdowns}
    assert hau_ids == set(rt.app.graph.haus)
    # roughly 10/2 = 5 rounds per HAU (first phase is random in [0, P))
    per_hau = [sum(1 for b in scheme.breakdowns if b.hau_id == h) for h in hau_ids]
    assert all(3 <= n <= 6 for n in per_hau)


def test_first_checkpoint_phases_are_spread():
    scheme = BaselineScheme(checkpoint_period=5.0)
    env, rt, _ = deploy(scheme)
    env.run(until=6.0)
    firsts = {}
    for bd in scheme.breakdowns:
        firsts.setdefault(bd.hau_id, bd.write_start_at)
    assert len(set(round(t, 3) for t in firsts.values())) > 1


def test_input_preservation_retains_at_every_hau():
    scheme = BaselineScheme(checkpoint_period=None)  # no checkpoints, no acks
    env, rt, _ = deploy(scheme)
    env.run(until=5.0)
    # every non-sink HAU has retained output
    for hau_id in ("src", "agg", "mid"):
        store = scheme.preserver._stores.get(hau_id)
        assert store is not None and len(store) > 0
    assert scheme.preserver.total_retained_bytes() > 0


def test_ack_discards_upstream_retention():
    scheme = BaselineScheme(checkpoint_period=1.0)
    env, rt, _ = deploy(scheme)
    env.run(until=12.0)
    # after many rounds, retention should be bounded (acked away), i.e.
    # much less than everything ever emitted
    total_emitted_bytes = sum(
        ch.bytes_delivered for ch in rt.dc.channels() if "->" in ch.name and "ctl" not in ch.name
    )
    assert scheme.preserver.total_retained_bytes() < total_emitted_bytes


def test_buffer_spills_to_local_disk():
    scheme = BaselineScheme(checkpoint_period=None, buffer_bytes=200_000)
    env, rt, _ = deploy(scheme, tuple_size=50_000)
    env.run(until=5.0)
    src_store = scheme.preserver._stores["src"]
    assert src_store.spills > 0
    assert src_store.bytes_spilled > 0


def run_with_failure(fail_time, victims, until=40.0, seed=7, **graph_kw):
    scheme = BaselineScheme(checkpoint_period=1.0, enable_recovery=True)
    env, rt, holder = deploy(scheme, seed=seed, **graph_kw)

    def killer():
        yield env.timeout(fail_time)
        for hau_id in victims:
            rt.haus[hau_id].node.fail("injected")

    env.process(killer())
    env.run(until=until)
    return rt, holder["sink"].payload_log, scheme


def test_single_failure_recovers_exactly_once():
    clean_scheme = BaselineScheme(checkpoint_period=1.0)
    env, clean_rt, clean_holder = deploy(clean_scheme)
    env.run(until=40.0)
    clean_log = clean_holder["sink"].payload_log

    rt, failed_log, scheme = run_with_failure(2.3, ["mid"])
    assert scheme.recovered and scheme.recovered[0][1] == "mid"
    assert not scheme.unrecoverable
    assert failed_log == clean_log


def test_single_failure_restarts_on_spare():
    rt, _, scheme = run_with_failure(2.3, ["agg"])
    assert rt.haus["agg"].node.alive
    assert rt.haus["agg"].node.node_id.startswith("spare")


def test_correlated_failure_is_unrecoverable():
    """The baseline's 1-safety limit: when an HAU and its upstream die
    together, the upstream's retained buffer is gone."""
    rt, _, scheme = run_with_failure(2.3, ["agg", "mid"])
    assert scheme.unrecoverable
    lost = {h for (_t, h) in scheme.unrecoverable}
    assert "mid" in lost


def test_source_failure_unrecoverable_without_stable_preservation():
    """A dead source in the baseline loses its in-memory/local-disk buffer;
    the baseline can restart it from its checkpoint but tuples retained
    only on the dead node are gone. Our model restarts it (sources keep
    their own retention), so here we just assert the recovery completes."""
    rt, failed_log, scheme = run_with_failure(2.3, ["src"])
    # src has no upstream, so single-failure recovery applies
    assert scheme.recovered and scheme.recovered[0][1] == "src"
