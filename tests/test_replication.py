"""Tests for the replication cost estimator (related-work comparison)."""

import pytest

from repro.core import ReplicationEstimator


def test_cost_scales_linearly_in_k():
    est = ReplicationEstimator(hau_count=55, racks=4)
    assert est.cost(0).nodes_required == 55
    assert est.cost(1).nodes_required == 110
    assert est.cost(2).nodes_required == 165
    assert est.cost(1).extra_network_factor == 2.0


def test_rack_survivability_needs_replica_per_rack():
    est = ReplicationEstimator(hau_count=10, racks=3)
    assert est.cost(2).survives_rack_failure  # 3 replicas over 3 racks
    assert not est.cost(3).survives_rack_failure  # 4 replicas, 3 racks


def test_checkpoint_footprint_and_break_even():
    est = ReplicationEstimator(hau_count=55, racks=4)
    assert est.checkpoint_footprint(8) == 63
    assert est.break_even_k(8) == 0
    # a giant spare pool can make 1-replication break even
    assert ReplicationEstimator(hau_count=10).break_even_k(15) >= 1


def test_validation():
    with pytest.raises(ValueError):
        ReplicationEstimator(hau_count=0)
    est = ReplicationEstimator(hau_count=5)
    with pytest.raises(ValueError):
        est.cost(-1)


def test_overhead_vs_single():
    est = ReplicationEstimator(hau_count=5)
    assert est.cost(2).overhead_vs_single() == 2.0
