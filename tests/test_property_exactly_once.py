"""Property-based end-to-end test: exactly-once under randomised failures.

The headline invariant (DESIGN.md #3): for any failure instant and any
victim set, a Meteor Shower run that fails and recovers delivers exactly
the failure-free run's output.  hypothesis drives the failure parameters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import MSSrcAP
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph
from repro.simulation import Environment

HAUS = ["src", "agg", "mid", "sink"]
_CLEAN_CACHE: dict = {}


def run_chain(fail_time=None, victims=(), seed=11):
    g, holder = make_chain_graph(source_count=40, interval=0.05, window=5, tuple_size=30_000)
    env = Environment()
    app = StreamApplication(name="t", graph=g)
    scheme = MSSrcAP(checkpoint_times=[0.8, 1.9], enable_recovery=fail_time is not None)
    rt = DSPSRuntime(
        env,
        app,
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=4, spares=8, racks=2)),
    )
    rt.start()
    if fail_time is not None:

        def killer():
            yield env.timeout(fail_time)
            for hau_id in victims:
                rt.haus[hau_id].node.fail("prop")

        env.process(killer())
    env.run(until=25.0)
    return holder["sink"].payload_log, scheme


def clean_log():
    if "log" not in _CLEAN_CACHE:
        _CLEAN_CACHE["log"], _ = run_chain()
    return _CLEAN_CACHE["log"]


@given(
    fail_time=st.floats(min_value=0.3, max_value=3.0),
    victim_mask=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=12, deadline=None)
def test_exactly_once_for_any_failure(fail_time, victim_mask):
    victims = [h for i, h in enumerate(HAUS) if victim_mask & (1 << i)]
    failed_log, scheme = run_chain(fail_time=fail_time, victims=victims)
    assert len(scheme.recoveries) == 1, f"no recovery for victims={victims}"
    assert failed_log == clean_log(), (
        f"exactly-once violated: fail_time={fail_time}, victims={victims}"
    )
