"""Tests for the delta-checkpointing extension (repro.core.delta)."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MSSrcAP
from repro.core.delta import DeltaPolicy, DeltaTracker
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph
from repro.simulation import Environment


# --- DeltaTracker unit tests -----------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        DeltaPolicy(full_every=0)


def test_first_checkpoint_is_full():
    tr = DeltaTracker(DeltaPolicy(full_every=4))
    billed, is_full = tr.billed_size("h", 1000)
    assert (billed, is_full) == (1000, True)


def test_growth_bills_only_delta():
    tr = DeltaTracker(DeltaPolicy(full_every=10, min_delta_bytes=1))
    tr.record("h", 1, 0, full_size=1000, billed=1000, is_full=True)
    billed, is_full = tr.billed_size("h", 1500)
    assert (billed, is_full) == (500, False)


def test_shrink_forces_full():
    tr = DeltaTracker(DeltaPolicy(full_every=10))
    tr.record("h", 1, 0, full_size=1000, billed=1000, is_full=True)
    billed, is_full = tr.billed_size("h", 200)
    assert is_full and billed == 200


def test_cadence_forces_full():
    tr = DeltaTracker(DeltaPolicy(full_every=2, min_delta_bytes=1))
    tr.record("h", 1, 0, 100, 100, True)
    assert tr.billed_size("h", 150)[1] is False
    tr.record("h", 2, 1, 150, 50, False)
    assert tr.billed_size("h", 200)[1] is True  # 2nd after full -> full


def test_min_delta_floor():
    tr = DeltaTracker(DeltaPolicy(full_every=10, min_delta_bytes=4096))
    tr.record("h", 1, 0, 10_000, 10_000, True)
    billed, _ = tr.billed_size("h", 10_001)
    assert billed == 4096


def test_read_chain_and_protection():
    tr = DeltaTracker(DeltaPolicy(full_every=10, min_delta_bytes=1))
    tr.record("h", 1, 10, 100, 100, True)
    tr.record("h", 2, 11, 150, 50, False)
    tr.record("h", 3, 12, 180, 30, False)
    assert tr.read_chain("h", through_round=2) == [(1, 10, 100), (2, 11, 50)]
    assert tr.read_chain("h", through_round=3) == [(1, 10, 100), (2, 11, 50), (3, 12, 30)]
    assert tr.protected_versions("h") == {10, 11, 12}
    assert tr.chain_read_bytes("h", 3) == 180
    # a new full resets the chain
    tr.record("h", 4, 13, 60, 60, True)
    assert tr.read_chain("h", 4) == [(4, 13, 60)]
    assert tr.protected_versions("h") == {13}


def test_unknown_hau_chain_empty():
    tr = DeltaTracker(DeltaPolicy())
    assert tr.read_chain("ghost", 5) == []
    assert tr.protected_versions("ghost") == set()


# --- integration with MS-src+ap -----------------------------------------------------


def deploy(scheme, seed=7, **graph_kw):
    g, holder = make_chain_graph(**graph_kw)
    env = Environment()
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=4, spares=6, racks=2)),
    )
    rt.start()
    return env, rt, holder


GROWY = dict(source_count=400, interval=0.02, window=100000, tuple_size=200_000)


def test_delta_rounds_bill_less_than_full():
    full = MSSrcAP(checkpoint_times=[1.0, 2.0, 3.0])
    env, rt, _ = deploy(full, **GROWY)
    env.run(until=20.0)
    full_bytes = [log.haus["agg"].state_bytes for log in full.checkpoint_logs()]

    delta = MSSrcAP(checkpoint_times=[1.0, 2.0, 3.0], delta=DeltaPolicy(full_every=4))
    env, rt, _ = deploy(delta, **GROWY)
    env.run(until=20.0)
    delta_bytes = [log.haus["agg"].state_bytes for log in delta.checkpoint_logs()]

    assert delta_bytes[0] == full_bytes[0]  # first is full either way
    assert delta_bytes[1] < full_bytes[1]  # subsequent rounds ship deltas
    assert delta_bytes[2] < full_bytes[2]


def test_delta_recovery_reads_whole_chain_and_is_exact():
    def run(delta, fail):
        scheme = MSSrcAP(
            checkpoint_times=[1.0, 2.0, 3.0],
            delta=DeltaPolicy(full_every=4) if delta else None,
            enable_recovery=fail,
        )
        env, rt, holder = deploy(scheme, **GROWY)
        if fail:

            def killer():
                yield env.timeout(3.6)
                rt.haus["agg"].node.fail("t")

            env.process(killer())
        env.run(until=30.0)
        return holder["sink"].payload_log, scheme

    clean_log, _ = run(delta=True, fail=False)
    failed_log, scheme = run(delta=True, fail=True)
    assert scheme.recoveries
    assert failed_log == clean_log  # exactly-once holds under deltas
    # the recovery read the full + delta chain, not just one object
    cut = scheme.last_complete_round()
    chain = scheme.recovery_read_plan("agg", cut_round=cut[0], cut_version=cut[1]["agg"])
    assert len(chain) >= 1


def test_delta_gc_protects_chain():
    scheme = MSSrcAP(checkpoint_times=[1.0, 2.0, 3.0], delta=DeltaPolicy(full_every=4))
    env, rt, _ = deploy(scheme, **GROWY)
    env.run(until=20.0)
    # after three completed rounds, the chain (full + 2 deltas) must all
    # still be readable
    cut = scheme.last_complete_round()
    assert cut[0] == 3
    for version in scheme.recovery_read_plan("agg", cut_round=3, cut_version=cut[1]["agg"]):
        assert rt.storage.lookup("ckpt", "agg", version) is not None
