"""Unit tests for Resource / Store / PriorityStore / Gate."""

import pytest

from repro.simulation import Environment, SimulationError, Store
from repro.simulation.resources import Gate, PriorityStore, Resource


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_grants_fifo():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(name, hold):
        req = res.request()
        yield req
        order.append((env.now, name))
        yield env.timeout(hold)
        res.release(req)

    env.process(user("a", 2.0))
    env.process(user("b", 1.0))
    env.process(user("c", 1.0))
    env.run()
    assert order == [(0.0, "a"), (2.0, "b"), (3.0, "c")]


def test_resource_parallel_slots():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def user(name):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        done.append((env.now, name))

    for n in "abcd":
        env.process(user(n))
    env.run()
    # two at a time: a,b finish at 1; c,d at 2
    assert done == [(1.0, "a"), (1.0, "b"), (2.0, "c"), (2.0, "d")]


def test_resource_release_unheld_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert res.queued == 1
    r2.cancel()
    assert res.queued == 0
    res.release(r1)
    assert res.count == 0  # cancelled request must not be granted


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        for i in range(3):
            yield env.timeout(1.0)
            store.put(i)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer():
        yield store.get()
        times.append(env.now)

    def producer():
        yield env.timeout(4.0)
        store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [4.0]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    accepted = []

    def producer():
        for i in range(3):
            yield store.put(i)
            accepted.append((env.now, i))

    def consumer():
        while True:
            yield env.timeout(2.0)
            yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run(until=10.0)
    # put 0 at t=0; put 1 blocked until get at t=2; put 2 until t=4
    assert accepted == [(0.0, 0), (2.0, 1), (4.0, 2)]


def test_store_peek_all_is_snapshot():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    snap = store.peek_all()
    assert snap == (1, 2)
    store.put(3)
    assert snap == (1, 2)


def test_store_len():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put("a")
    assert len(store) == 1


def test_store_cancel_get():
    env = Environment()
    store = Store(env)
    g = store.get()
    g.cancel()
    store.put("x")
    # the cancelled getter must not consume the item
    assert len(store) == 1


def test_priority_store_orders_items():
    env = Environment()
    ps = PriorityStore(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield ps.get()
            got.append(item)

    ps.put(3)
    ps.put(1)
    ps.put(2)
    env.process(consumer())
    env.run()
    assert got == [1, 2, 3]


def test_priority_store_fifo_on_ties():
    env = Environment()
    ps = PriorityStore(env)
    got = []
    ps.put((1, "first"))
    ps.put((1, "second"))

    def consumer():
        for _ in range(2):
            item = yield ps.get()
            got.append(item[1])

    env.process(consumer())
    env.run()
    assert got == ["first", "second"]


def test_gate_open_passes_immediately():
    env = Environment()
    gate = Gate(env, opened=True)
    times = []

    def proc():
        yield gate.wait()
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [0.0]


def test_gate_closed_blocks_until_open():
    env = Environment()
    gate = Gate(env, opened=False)
    times = []

    def proc():
        yield gate.wait()
        times.append(env.now)

    def opener():
        yield env.timeout(5.0)
        gate.open()

    env.process(proc())
    env.process(opener())
    env.run()
    assert times == [5.0]


def test_gate_reclose():
    env = Environment()
    gate = Gate(env, opened=True)
    times = []

    def proc():
        yield gate.wait()
        gate.close()
        yield env.timeout(1.0)
        # second wait blocks until reopened
        yield gate.wait()
        times.append(env.now)

    def opener():
        yield env.timeout(10.0)
        gate.open()

    env.process(proc())
    env.process(opener())
    env.run()
    assert times == [10.0]
