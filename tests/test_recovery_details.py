"""Focused tests for recovery internals: spare packing, cut selection,
storage accounting, and repeated failures."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MSSrc, MSSrcAP
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph
from repro.simulation import Environment


def deploy(scheme, workers=4, spares=3, seed=7, **graph_kw):
    g, holder = make_chain_graph(**graph_kw)
    env = Environment()
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=workers, spares=spares, racks=2)),
    )
    rt.start()
    return env, rt, holder


def kill_at(env, rt, when, victims):
    def killer():
        yield env.timeout(when)
        for h in victims:
            rt.haus[h].node.fail("test")

    env.process(killer())


def test_spares_packed_one_per_dead_node():
    """4 HAUs on 2 workers; killing both must claim only 2 spares."""
    scheme = MSSrcAP(checkpoint_times=[1.0], enable_recovery=True)
    env, rt, _ = deploy(scheme, workers=2, spares=3)
    kill_at(env, rt, 2.0, ["src", "agg", "mid", "sink"])
    env.run(until=20.0)
    assert len(scheme.recoveries) == 1
    assert rt.dc.spares_available() == 1  # 3 - 2 claimed
    # the original packing density is preserved: 2 HAUs per node
    nodes = {}
    for hau_id, node in rt.placement.items():
        nodes.setdefault(node.node_id, []).append(hau_id)
    assert all(len(v) == 2 for v in nodes.values())


def test_recovery_uses_latest_complete_cut():
    scheme = MSSrcAP(checkpoint_times=[1.0, 2.5], enable_recovery=True)
    env, rt, _ = deploy(scheme)
    kill_at(env, rt, 5.0, ["agg"])
    env.run(until=25.0)
    cut = scheme.last_complete_round()
    assert cut is not None and cut[0] == 2


def test_recovery_without_any_checkpoint_replays_everything():
    scheme = MSSrc(checkpoint_times=[], enable_recovery=True)
    env, rt, holder = deploy(scheme)
    kill_at(env, rt, 1.0, ["agg", "mid"])
    env.run(until=30.0)
    assert len(scheme.recoveries) == 1
    rec = scheme.recoveries[0]
    assert rec.bytes_read == 0  # no checkpoints existed
    # and yet everything was reprocessed from preserved source tuples
    assert holder["sink"].received_count > 0


def test_two_sequential_failures_both_recovered():
    scheme = MSSrcAP(checkpoint_times=[1.0, 4.0], enable_recovery=True)
    env, rt, holder = deploy(scheme, spares=6)
    kill_at(env, rt, 2.0, ["mid"])
    kill_at(env, rt, 8.0, ["agg"])
    env.run(until=40.0)
    assert len(scheme.recoveries) == 2
    assert all(h.node.alive for h in rt.haus.values())


def test_exactly_once_across_two_failures():
    def run(fails):
        scheme = MSSrcAP(checkpoint_times=[1.0, 4.0], enable_recovery=bool(fails))
        env, rt, holder = deploy(scheme, spares=6)
        for when, victims in fails:
            kill_at(env, rt, when, victims)
        env.run(until=40.0)
        return holder["sink"].payload_log

    clean = run([])
    twice = run([(2.0, ["mid"]), (8.0, ["agg"])])
    assert twice == clean


def test_recovery_breakdown_phases_ordered():
    scheme = MSSrcAP(checkpoint_times=[1.0], enable_recovery=True)
    env, rt, _ = deploy(
        scheme, source_count=120, interval=0.03, window=10, tuple_size=500_000
    )
    kill_at(env, rt, 3.0, ["agg", "mid", "sink"])
    env.run(until=30.0)
    rec = scheme.recoveries[0]
    assert rec.reload_seconds > 0
    assert rec.disk_io_seconds > 0
    assert rec.reconnect_seconds > 0
    assert rec.bytes_read > 0
    # total is the four phases only (source replay excluded, §IV-C)
    phases = rec.reload_seconds + rec.disk_io_seconds + rec.deserialize_seconds + rec.reconnect_seconds
    assert rec.total == pytest.approx(phases, rel=0.25)


def test_recovery_after_spare_exhaustion_raises_visibly():
    scheme = MSSrcAP(checkpoint_times=[1.0], enable_recovery=True)
    env, rt, _ = deploy(scheme, workers=2, spares=1)
    for spare in rt.dc.spares:
        spare.fail("pre-dead")
    kill_at(env, rt, 2.0, ["src", "agg", "mid", "sink"])
    env.run(until=10.0)
    assert not scheme.recoveries
    assert any(kind == "recovery-failed" for (_t, kind, _d) in rt.metrics.events)
