"""Tests for MS-src+ap: 1-hop tokens, asynchronous (forked) checkpoints."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import MSSrc, MSSrcAP, OracleScheme
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph, make_diamond_graph
from repro.simulation import Environment


def deploy(graph_fn, scheme, seed=7, workers=6, spares=6, **graph_kw):
    g, holder = graph_fn(**graph_kw)
    env = Environment()
    app = StreamApplication(name="t", graph=g)
    rt = DSPSRuntime(
        env,
        app,
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=workers, spares=spares, racks=2)),
    )
    rt.start()
    return env, rt, holder


def run_to_end(graph_fn, scheme_factory, fail=None, until=40.0, seed=7, **kw):
    scheme = scheme_factory()
    env, rt, holder = deploy(graph_fn, scheme, seed=seed, **kw)
    if fail is not None:
        fail_time, victims = fail

        def killer():
            yield env.timeout(fail_time)
            for hau_id in victims:
                rt.haus[hau_id].node.fail("injected")

        env.process(killer())
    env.run(until=until)
    return rt, holder["sink"].payload_log, scheme


def test_round_completes_with_one_hop_tokens():
    scheme = MSSrcAP(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    logs = scheme.checkpoint_logs()
    assert len(logs) == 1
    assert logs[0].complete
    assert set(logs[0].haus) == set(rt.app.graph.haus)


def test_individual_checkpoints_run_in_parallel():
    """Unlike MS-src's cascade, ap checkpoints overlap: the sink's write
    must start before the source's write chain would have reached it."""
    big = dict(source_count=200, interval=0.02, window=50, tuple_size=2_000_000)
    sync_scheme = MSSrc(checkpoint_times=[1.0])
    env, _, _ = deploy(make_chain_graph, sync_scheme, **big)
    env.run(until=30.0)
    ap_scheme = MSSrcAP(checkpoint_times=[1.0])
    env, _, _ = deploy(make_chain_graph, ap_scheme, **big)
    env.run(until=30.0)
    sync_log = sync_scheme.checkpoint_logs()[0]
    ap_log = ap_scheme.checkpoint_logs()[0]
    assert ap_log.wall_clock() < sync_log.wall_clock()


def test_parent_keeps_processing_during_checkpoint():
    """Asynchronous: stream processing continues while the child writes."""
    big = dict(source_count=300, interval=0.02, window=50, tuple_size=2_000_000)
    # synchronous run for contrast
    _, sync_log_payloads, sync_scheme = run_to_end(
        make_chain_graph, lambda: MSSrc(checkpoint_times=[2.0]), until=12.0, **big
    )
    sync_rt = sync_scheme.runtime
    _, ap_log_payloads, ap_scheme = run_to_end(
        make_chain_graph, lambda: MSSrcAP(checkpoint_times=[2.0]), until=12.0, **big
    )
    ap_rt = ap_scheme.runtime
    # by the same wall-clock instant the async variant has processed more
    assert ap_rt.metrics.throughput() >= sync_rt.metrics.throughput()


def test_cow_tax_applied_while_child_active():
    scheme = MSSrcAP(checkpoint_times=[1.0])
    env, rt, _ = deploy(
        make_chain_graph, scheme, source_count=200, interval=0.02, window=50, tuple_size=2_000_000
    )
    hau = rt.haus["agg"]
    assert scheme.processing_overhead(hau) == 0.0
    scheme._cow_active["agg"] = 1
    assert scheme.processing_overhead(hau) == pytest.approx(scheme.costs.cow_tax)
    scheme._cow_active["agg"] = 0
    env.run(until=5.0)


def test_exactly_once_single_failure():
    clean_rt, clean_log, _ = run_to_end(make_chain_graph, lambda: MSSrcAP(checkpoint_times=[1.0]))
    _, failed_log, scheme = run_to_end(
        make_chain_graph,
        lambda: MSSrcAP(checkpoint_times=[1.0], enable_recovery=True),
        fail=(1.8, ["mid"]),
    )
    assert len(scheme.recoveries) == 1
    assert failed_log == clean_log


def test_exactly_once_failure_during_async_write():
    """Kill nodes while child writers are mid-flight: the incomplete round
    must be discarded and recovery must use the previous consistent cut."""
    big = dict(source_count=150, interval=0.03, window=25, tuple_size=1_000_000)
    clean_rt, clean_log, _ = run_to_end(
        make_chain_graph, lambda: MSSrcAP(checkpoint_times=[1.0, 3.0]), until=60.0, **big
    )
    _, failed_log, scheme = run_to_end(
        make_chain_graph,
        lambda: MSSrcAP(checkpoint_times=[1.0, 3.0], enable_recovery=True),
        fail=(3.05, ["agg", "mid"]),  # just after round 2 starts
        until=60.0,
        **big,
    )
    assert len(scheme.recoveries) == 1
    assert failed_log == clean_log


def test_exactly_once_burst_failure_diamond():
    clean_rt, clean_log, _ = run_to_end(
        make_diamond_graph, lambda: MSSrcAP(checkpoint_times=[1.5]), until=60.0
    )
    _, failed_log, scheme = run_to_end(
        make_diamond_graph,
        lambda: MSSrcAP(checkpoint_times=[1.5], enable_recovery=True),
        fail=(2.5, ["a", "b", "join", "s0"]),
        until=60.0,
    )
    assert len(scheme.recoveries) == 1
    assert sorted(failed_log) == sorted(clean_log)
    for port in (0, 1):
        assert [v for (p, v) in failed_log if p == port] == [
            v for (p, v) in clean_log if p == port
        ]


def test_out_copies_saved_with_checkpoint():
    """The checkpoint payload must include the saved in-flight tuples."""
    scheme = MSSrcAP(checkpoint_times=[1.0])
    env, rt, _ = deploy(
        make_chain_graph, scheme, source_count=400, interval=0.005, window=5, tuple_size=500_000
    )
    env.run(until=20.0)
    cut = scheme.last_complete_round()
    assert cut is not None
    total_saved = 0
    for hau_id, version in cut[1].items():
        payload = rt.storage.lookup("ckpt", hau_id, version).value
        total_saved += len(payload["out_tuples"]) + len(payload["backlog"])
    # with a fast stream, at least some in-flight tuples existed at the cut
    assert total_saved >= 0  # structural: field present and well-formed


def test_oracle_is_ap_with_explicit_times():
    scheme = OracleScheme(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    assert scheme.name == "oracle"
    assert scheme.checkpoint_logs()[0].complete


def test_token_collection_breakdown_populated():
    scheme = MSSrcAP(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    log = scheme.checkpoint_logs()[0]
    slowest = log.slowest()
    assert slowest is not None
    for bd in log.haus.values():
        assert bd.tokens_done_at >= bd.command_at
        assert bd.write_end_at >= bd.write_start_at >= bd.tokens_done_at
