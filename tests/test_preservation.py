"""Unit tests for the preservation disciplines (repro.core.preservation)."""


from repro.cluster import ClusterSpec
from repro.core.preservation import InputPreserver, SourcePreserver
from repro.dsps import QueryGraph, RuntimeConfig, StreamApplication, DSPSRuntime
from repro.dsps import CheckpointScheme
from repro.dsps.testing import IntervalSource, VerifySink
from repro.dsps.tuples import DataTuple
from repro.simulation import Environment


def make_runtime():
    g = QueryGraph()
    g.add_hau("src", lambda: [IntervalSource(count=3, interval=0.1)], is_source=True)
    g.add_hau("sink", lambda: [VerifySink()], is_sink=True)
    g.connect("src", "sink")
    env = Environment()
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        CheckpointScheme(),
        RuntimeConfig(seed=1, cluster=ClusterSpec(workers=2, spares=1, racks=1)),
    )
    rt.start()
    return env, rt


def tup(seq, size=1000):
    return DataTuple(payload=seq, size=size, seq=seq, created_at=0.0)


# --- SourcePreserver ------------------------------------------------------------


def test_source_preserver_roundtrip_and_order():
    env, rt = make_runtime()
    pres = SourcePreserver(rt.storage)
    hau = rt.haus["src"]

    def proc():
        for s in (3, 1, 2):
            yield from pres.preserve(hau, tup(s))

    env.process(proc())
    env.run(until=5.0)
    assert pres.tuples_preserved == 3
    assert pres.bytes_preserved == 3000
    replay = pres.replay_tuples("src", after_seq=1)
    assert [t.seq for t in replay] == [2, 3]  # ordered, filtered
    assert pres.replay_bytes("src", 0) == 3000


def test_source_preserver_discard_through():
    env, rt = make_runtime()
    pres = SourcePreserver(rt.storage)
    hau = rt.haus["src"]

    def proc():
        for s in (1, 2, 3, 4):
            yield from pres.preserve(hau, tup(s))

    env.process(proc())
    env.run(until=5.0)
    pres.discard_through("src", 2)
    assert [t.seq for t in pres.replay_tuples("src", 0)] == [3, 4]


def test_source_preserver_empty_replay():
    env, rt = make_runtime()
    pres = SourcePreserver(rt.storage)
    assert pres.replay_tuples("nope", 0) == []
    assert pres.replay_bytes("nope", 0) == 0


# --- InputPreserver ---------------------------------------------------------------


def test_input_preserver_retain_ack_replay():
    env, rt = make_runtime()
    pres = InputPreserver(buffer_bytes=100_000)
    hau = rt.haus["src"]

    def proc():
        for s in (1, 2, 3, 4, 5):
            yield from pres.retain(hau, "e", tup(s))

    env.process(proc())
    env.run(until=5.0)
    assert pres.total_retained_bytes() == 5000
    freed = pres.ack("src", 2)
    assert freed == 2000

    out = {}

    def replay():
        out["tuples"] = yield from pres.replay("src", "e", after_seq=2)

    env.process(replay())
    env.run(until=10.0)
    assert [t.seq for t in out["tuples"]] == [3, 4, 5]


def test_input_preserver_separates_edges():
    env, rt = make_runtime()
    pres = InputPreserver()
    hau = rt.haus["src"]

    def proc():
        yield from pres.retain(hau, "e1", tup(1))
        yield from pres.retain(hau, "e2", tup(1))

    env.process(proc())
    env.run(until=5.0)
    out = {}

    def replay():
        out["e1"] = yield from pres.replay("src", "e1", 0)

    env.process(replay())
    env.run(until=10.0)
    assert len(out["e1"]) == 1


def test_input_preserver_store_recreated_on_node_change():
    env, rt = make_runtime()
    pres = InputPreserver()
    hau = rt.haus["src"]
    store1 = pres.store_for(hau)
    assert pres.store_for(hau) is store1
    other = next(n for n in rt.dc.workers if n is not hau.node)
    hau.node = other  # simulate a restart on another node
    store2 = pres.store_for(hau)
    assert store2 is not store1  # fresh (empty) retention: data was lost


def test_input_preserver_ack_unknown_hau():
    pres = InputPreserver()
    assert pres.ack("ghost", 10) == 0


def test_input_preserver_replay_unknown_hau():
    env, rt = make_runtime()
    pres = InputPreserver()
    out = {}

    def replay():
        out["r"] = yield from pres.replay("ghost", "e", 0)

    env.process(replay())
    env.run(until=1.0)
    assert out["r"] == []
