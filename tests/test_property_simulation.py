"""Property-based tests (hypothesis) for the simulation kernel."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Environment, Store
from repro.simulation.resources import Resource


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    """Whatever the mix of timeouts, observed firing times never go back."""
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert env.now == max(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=20
    )
)
@settings(max_examples=40, deadline=None)
def test_sequential_process_accumulates_delays(delays):
    env = Environment()

    def proc():
        for d in delays:
            yield env.timeout(d)
        return env.now

    p = env.process(proc())
    env.run(until=p)
    assert abs(p.value - sum(delays)) < 1e-6 * max(1.0, sum(delays))


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=60, deadline=None)
def test_store_is_fifo_for_any_item_sequence(items):
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in items:
            value = yield store.get()
            got.append(value)

    def producer():
        for x in items:
            yield store.put(x)
            yield env.timeout(0.001)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == items


@given(
    holds=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=12),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity(holds, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    high_water = {"n": 0}

    def user(hold):
        req = res.request()
        yield req
        high_water["n"] = max(high_water["n"], res.count)
        yield env.timeout(hold)
        res.release(req)

    for h in holds:
        env.process(user(h))
    env.run()
    assert high_water["n"] <= capacity
    assert res.count == 0  # everything released


@given(
    priorities=st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=15)
)
@settings(max_examples=40, deadline=None)
def test_resource_grants_by_priority_class(priorities):
    """Queued requests are granted lowest-priority-value first, FIFO within
    a class."""
    env = Environment()
    res = Resource(env, capacity=1)
    blocker = res.request()  # occupy the slot so all others queue
    granted = []
    reqs = []
    for i, p in enumerate(priorities):
        req = res.request(priority=p)
        req.add_callback(lambda _ev, i=i: granted.append(i))
        reqs.append((p, i, req))

    def release_all():
        res.release(blocker)
        for _p, _i, req in sorted(reqs, key=lambda t: (t[0], t[1])):
            yield req
            res.release(req)

    env.process(release_all())
    env.run()
    expected = [i for (_p, i, _r) in sorted(reqs, key=lambda t: (t[0], t[1]))]
    assert granted == expected


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_rng_registry_streams_are_stable(seed):
    from repro.simulation.rng import RngRegistry

    a = RngRegistry(seed).stream("component").random(5)
    b = RngRegistry(seed).stream("component").random(5)
    assert list(a) == list(b)
    # a different component name gives an independent stream
    c = RngRegistry(seed).stream("other").random(5)
    assert list(a) != list(c)
