"""Tests for chunked bandwidth pipes with two-class priority, and the
aa controller's size reconstruction."""

import pytest

from repro.cluster.node import BandwidthPipe
from repro.simulation import Environment


def test_chunked_transfers_share_fairly():
    """Two equal concurrent transfers finish together (within a chunk)."""
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=10_000_000.0, chunk_bytes=1_000_000)
    done = {}

    def mover(name):
        yield from pipe.transfer(20_000_000)
        done[name] = env.now

    env.process(mover("a"))
    env.process(mover("b"))
    env.run()
    assert done["a"] == pytest.approx(done["b"], abs=0.2)
    assert done["a"] == pytest.approx(4.0, abs=0.2)  # 40 MB at 10 MB/s


def test_small_write_overtakes_bulk():
    """A priority-0 write slips between a bulk transfer's chunks."""
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=10_000_000.0, chunk_bytes=1_000_000)
    done = {}

    def bulk():
        yield from pipe.transfer(50_000_000, priority=1)
        done["bulk"] = env.now

    def small():
        yield env.timeout(0.5)  # bulk is mid-flight
        yield from pipe.transfer(500_000, priority=0)
        done["small"] = env.now

    env.process(bulk())
    env.process(small())
    env.run()
    # small finishes ~at 0.5s + one chunk wait + its own 0.05s, not after
    # the 5s bulk
    assert done["small"] < 1.0
    assert done["bulk"] == pytest.approx(5.05, abs=0.2)


def test_bulk_never_starves():
    """Priority is two-class, not preemptive: bulk still completes while a
    stream of small writes flows."""
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=10_000_000.0, chunk_bytes=1_000_000)
    done = {}

    def bulk():
        yield from pipe.transfer(10_000_000, priority=1)
        done["bulk"] = env.now

    def small_stream():
        for _ in range(20):
            yield from pipe.transfer(100_000, priority=0)
            yield env.timeout(0.05)

    env.process(bulk())
    env.process(small_stream())
    env.run(until=60.0)
    assert "bulk" in done
    # 10 MB bulk + 2 MB of small traffic interleaved: well under 10s
    assert done["bulk"] < 5.0


def test_zero_byte_transfer_costs_only_latency():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=100.0, per_op_latency=0.25)
    t = {}

    def proc():
        yield from pipe.transfer(0)
        t["done"] = env.now

    env.process(proc())
    env.run()
    assert t["done"] == pytest.approx(0.25)
    assert pipe.ops == 1


def test_aa_known_total_extrapolates_with_icr():
    from repro.core import MSSrcAPAA

    scheme = MSSrcAPAA(checkpoint_period=10.0)

    class FakeEnv:
        now = 100.0

    class FakeRuntime:
        env = FakeEnv()

    scheme.runtime = FakeRuntime()
    scheme.dynamic_haus = ["a", "b"]
    scheme._last_size = {"a": (90.0, 1000.0), "b": (95.0, 500.0)}
    scheme._last_icr = {"a": -50.0, "b": +100.0}
    # a: 1000 - 50*10 = 500; b: 500 + 100*5 = 1000
    assert scheme._known_total() == pytest.approx(1500.0)
    # clamped at zero when extrapolation goes negative
    scheme._last_icr["a"] = -200.0
    assert scheme._known_total() == pytest.approx(1000.0)
