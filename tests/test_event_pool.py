"""Kernel fast-path unit tests: free-list pooling, kick direct-resume,
and the ordering invariants the fast paths must preserve.

The pool's safety contract is "reuse is invisible": an event is only
recycled when the step() frame holds the last reference, so nothing in
the model can observe the identity reuse.  These tests pin both halves —
that pooling *does* happen in the steady state (the perf win is real)
and that it *does not* happen while anyone still holds the event.
"""

import sys

from repro.simulation.core import (
    _POOL_LIMIT,
    Environment,
    Event,
    Interrupt,
    Timeout,
)
from repro.simulation.resources import Store


def drain(env):
    while env._heap:
        env.step()


# -- free-list reuse ----------------------------------------------------------

def test_timeout_instances_are_reused():
    env = Environment()
    # no reference held by the test → eligible for recycling at flush
    ident = id(env.timeout(1.0))
    drain(env)
    second = env.timeout(1.0)
    assert id(second) == ident, "steady-state timeouts should come from the pool"
    assert env.pool_hits >= 1


def test_event_instances_are_reused():
    env = Environment()
    first = env.event(name="a")
    first.succeed("va")
    ident = id(first)
    del first  # drop the last model-side reference before the flush
    drain(env)
    second = env.event(name="b")
    assert id(second) == ident
    assert second.name == "b"
    assert not second.triggered
    assert second._value is None, "recycle must clear the previous value"


def test_held_timeout_is_never_recycled():
    """A reference held by the model pins the event out of the pool."""
    env = Environment()
    held = env.timeout(1.0)
    env.run(until=held)
    assert held.ok and held._flushed
    fresh = env.timeout(1.0)
    assert fresh is not held
    # the held object is untouched by later kernel activity
    env.run(until=fresh)
    assert held.value is None and held.ok


def test_timeout_value_visible_after_pool_reuse():
    """Values yielded from reused timeouts round-trip correctly."""
    env = Environment()
    seen = []

    def proc():
        for i in range(5):
            got = yield env.timeout(1.0, value=i)
            seen.append(got)

    env.process(proc())
    drain(env)
    assert seen == [0, 1, 2, 3, 4]


def test_pool_is_bounded():
    env = Environment()
    events = [env.event() for _ in range(2 * _POOL_LIMIT)]
    for ev in events:
        ev.succeed()
    del events
    drain(env)
    assert len(env._pools[Event]) <= _POOL_LIMIT


def test_pools_are_per_environment():
    a, b = Environment(), Environment()
    a.timeout(1.0)
    drain(a)
    assert a._pools[Timeout] and not b._pools[Timeout]


def test_register_pool_and_acquire():
    class MyEvent(Event):
        __slots__ = ()

    env = Environment()
    env.register_pool(MyEvent)
    assert env.acquire(MyEvent) is None  # empty pool → miss
    ev = MyEvent(env)
    ev.succeed()
    ident = id(ev)
    del ev
    drain(env)
    got = env.acquire(MyEvent)
    assert got is not None and id(got) == ident
    assert env.pool_hits >= 1


def test_unregistered_subclass_is_not_pooled():
    class Other(Event):
        __slots__ = ()

    env = Environment()
    ev = Other(env)
    ev.succeed()
    drain(env)
    assert Other not in env._pools
    assert env.event() is not ev


def test_kernel_stats_counts_pops():
    env = Environment()
    for _ in range(3):
        env.timeout(1.0)
    drain(env)
    stats = env.kernel_stats()
    assert stats["events_popped"] == 3
    assert stats["pool_misses"] >= 1  # first Timeout allocation


# -- kick direct-resume (boot / rewait / interrupt) ---------------------------

def test_process_boot_order_matches_creation_order():
    env = Environment()
    order = []

    def proc(tag):
        order.append(tag)
        yield env.timeout(0)

    env.process(proc("a"))
    env.process(proc("b"))
    env.process(proc("c"))
    drain(env)
    assert order == ["a", "b", "c"]


def test_interrupt_through_kick_path():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt as exc:
            log.append(("interrupted", env.now, exc.cause))
            yield env.timeout(1.0)
            log.append(("resumed", env.now))

    def attacker(target):
        yield env.timeout(2.0)
        target.interrupt(cause="boom")

    p = env.process(victim())
    env.process(attacker(p))
    drain(env)
    assert log == [("interrupted", 2.0, "boom"), ("resumed", 3.0)]


def test_yield_already_flushed_event_resumes_via_kick():
    """Yielding an event whose callbacks already ran must still resume
    the process, at the current instant, in seq order (the old rewait
    path; now a pooled kick)."""
    env = Environment()
    log = []
    done = env.event()

    def early():
        yield env.timeout(1.0)
        done.succeed("payload")

    def late():
        yield env.timeout(2.0)
        got = yield done  # done flushed at t=1 — re-wait path
        log.append((env.now, got))

    env.process(early())
    env.process(late())
    drain(env)
    assert log == [(2.0, "payload")]


def test_kick_pool_is_reused():
    env = Environment()

    def proc():
        yield env.timeout(0)

    env.process(proc())
    drain(env)
    assert env._kick_pool, "boot kick should return to its pool"
    before = len(env._kick_pool)
    env.process(proc())
    drain(env)
    assert len(env._kick_pool) == before  # popped then returned


# -- ordering invariants of the resource fast paths ---------------------------

def test_store_put_get_fifo_order_preserved():
    env = Environment()
    store = Store(env, capacity=2)
    got = []

    def producer():
        for i in range(6):
            yield store.put(i)

    def consumer():
        for _ in range(6):
            item = yield store.get()
            got.append(item)
            yield env.timeout(0.1)

    env.process(producer())
    env.process(consumer())
    drain(env)
    assert got == [0, 1, 2, 3, 4, 5]


def test_store_fast_path_settles_put_before_getter():
    """On the fast path, put() succeeds before any waiting getter fires —
    the same order _drain produces."""
    env = Environment()
    store = Store(env, capacity=4)
    order = []

    def getter():
        item = yield store.get()
        order.append(("got", item))

    def putter():
        yield env.timeout(1.0)
        ev = store.put("x")
        ev.add_callback(lambda _e: order.append(("put-settled",)))
        yield ev

    env.process(getter())
    env.process(putter())
    drain(env)
    assert order == [("put-settled",), ("got", "x")]


def test_store_request_events_are_not_cross_contaminated():
    """Pooled _Get/_Put reuse must never leak one operation's item into
    another — run enough churn to cycle the pools several times."""
    env = Environment()
    store = Store(env, capacity=3)
    got = []

    def producer():
        for i in range(200):
            yield store.put(("item", i))

    def consumer():
        for _ in range(200):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    drain(env)
    assert got == [("item", i) for i in range(200)]
    assert env.pool_hits > 100, "store churn should be pool-served"


def test_refcount_guard_is_exact():
    """The recycle guard fires at refcount 2 precisely: one extra live
    reference (a condition, a list, a local) keeps the event out."""
    env = Environment()
    ev = env.event()
    keeper = [ev]
    ev.succeed()
    drain(env)
    assert sys.getrefcount(ev) >= 3  # keeper + local + getrefcount arg
    assert not env._pools[Event] or env._pools[Event][-1] is not ev
    del keeper
