"""Live monitoring plane: burn-rate SLOs, health timelines, replay.

Covers the monitoring acceptance criteria:

* the plane is a pure observer — result digests are bit-identical with
  monitoring on or off;
* monitor output (alert log + health timeline) is byte-deterministic
  across same-seed runs and across both kernel schedulers;
* the multi-window burn-rate state machine against hand-computed burns;
* offline trace replay (and the ``python -m repro.monitor`` CLI)
  reproduces the live plane's verdicts;
* scenario ``monitor:`` / ``expect.alerts`` schema + checking;
* ``alerts.json`` bundle round-trip and v1-bundle tolerance.
"""

import json

import pytest

from repro.harness import ExperimentConfig, run_experiment
from repro.harness.digest import (
    canonical_json,
    config_fingerprint,
    result_fingerprint,
)
from repro.monitor import (
    DEFAULT_BOUNDS,
    SLO,
    SLO_KINDS,
    BurnEvaluator,
    CounterWindow,
    HealthTracker,
    MonitorPlane,
    SlidingWindow,
    WindowSpec,
    default_slos,
)

CFG = dict(
    app="tmi", scheme="ms-src+ap", n_checkpoints=2, window=40.0, warmup=10.0,
    workers=8, spares=12, racks=2, seed=1, app_params={"n_minutes": 0.25},
)
# Staleness bound below the ~20s between rounds fires; latency relaxed
# so only trace-derived SLOs alert (keeps live == offline comparable).
MON = dict(
    monitor_period=1.0,
    monitor_slos={"checkpoint-staleness": 12.0, "latency-p99": 60.0},
)


def _monitor_bytes(res):
    return canonical_json(
        {"alerts": res.alerts, "health_timeline": res.health_timeline}
    )


@pytest.fixture(scope="module")
def monitored():
    return run_experiment(ExperimentConfig(**CFG, **MON))


# -- burn-rate state machine (hand-verified) -----------------------------------


def test_burn_evaluator_fires_on_both_windows_and_resolves():
    slo = SLO(kind="latency-p99", bound=1.0, objective=0.1,
              fast_window=10.0, slow_window=30.0)
    ev = BurnEvaluator(slo)
    for t in range(1, 11):  # ten bad samples in (0, 10]
        ev.observe(float(t), good=False)
    assert ev.evaluate(10.0) == "fire"
    # bad/total = 1.0 in both windows -> burn = 1.0 / 0.1 = 10
    assert ev.burn_fast == pytest.approx(10.0)
    assert ev.burn_slow == pytest.approx(10.0)
    assert ev.evaluate(10.0) is None  # already active, still burning
    for t in range(11, 21):  # ten good samples in (10, 20]
        ev.observe(float(t), good=True)
    assert ev.evaluate(20.0) == "resolve"  # fast window now all good
    assert ev.burn_fast == 0.0
    assert ev.evaluate(20.0) is None


def test_burn_evaluator_slow_window_suppresses_blips():
    # 28 good then 2 bad: fast burn (2/10)/0.1 = 2 >= 1, but slow burn
    # (2/30)/0.1 = 0.67 < 1 — the long window proves it's a blip.
    slo = SLO(kind="latency-p99", bound=1.0, objective=0.1,
              fast_window=10.0, slow_window=30.0)
    ev = BurnEvaluator(slo)
    for t in range(1, 29):
        ev.observe(float(t), good=True)
    for t in (29, 30):
        ev.observe(float(t), good=False)
    assert ev.evaluate(30.0) is None
    assert ev.burn_fast == pytest.approx(2.0)
    assert ev.burn_slow == pytest.approx((2 / 30) / 0.1)


def test_burn_evaluator_threshold_is_inclusive_and_evicts():
    slo = SLO(kind="latency-p99", bound=1.0, objective=0.5,
              fast_window=10.0, slow_window=10.0)
    ev = BurnEvaluator(slo)
    ev.observe(1.0, good=True)
    ev.observe(2.0, good=False)  # bad fraction 0.5 -> burn exactly 1.0
    assert ev.evaluate(2.0) == "fire"
    # both samples age out at t=12 (window is half-open (now-10, now])
    ev2 = BurnEvaluator(slo)
    ev2.observe(1.0, good=False)
    assert ev2.evaluate(11.5) is None and ev2.burn_fast == 0.0
    # no data burns no budget
    assert BurnEvaluator(slo).evaluate(5.0) is None


def test_slo_validation_and_default_set():
    with pytest.raises(ValueError):
        SLO(kind="bogus", bound=1.0)
    with pytest.raises(ValueError):
        SLO(kind="latency-p99", bound=1.0, objective=0.0)
    with pytest.raises(ValueError):
        SLO(kind="latency-p99", bound=1.0, fast_window=20.0, slow_window=10.0)
    slos = default_slos({"checkpoint-staleness": 7.0})
    assert tuple(s.kind for s in slos) == SLO_KINDS  # deterministic order
    by_kind = {s.kind: s for s in slos}
    assert by_kind["checkpoint-staleness"].bound == 7.0
    assert by_kind["latency-p99"].bound == DEFAULT_BOUNDS["latency-p99"]
    with pytest.raises(ValueError):
        default_slos({"bogus": 1.0})


# -- windows -------------------------------------------------------------------


def test_counter_and_sliding_windows():
    cw = CounterWindow()
    assert cw.advance(1.0, 10.0) == 10.0
    assert cw.advance(2.0, 25.0) == 15.0
    sw = SlidingWindow(10.0)
    sw.observe(1.0, 4.0)
    sw.observe(5.0, 2.0)
    assert sw.maximum() == 4.0 and sw.total() == 6.0
    sw.evict(12.0)  # t=1 aged out of the half-open (2, 12]
    assert sw.count() == 1
    assert sw.maximum() == sw.last() == 2.0
    assert sw.mean() == 2.0
    assert WindowSpec("w", length=5.0, slide=5.0).tumbling
    assert not WindowSpec("w", length=5.0, slide=1.0).tumbling


# -- health machine ------------------------------------------------------------


def test_health_tracker_transitions_and_rack_rollup():
    h = HealthTracker(racks={"A": "rack0", "B": "rack0"}, nodes={"A": "w1", "B": "w2"})
    h.on_sample(1.0, "A", "checkpoint-staleness", good=False)
    assert h.states()["hau:A"] == "degraded"
    assert h.states()["rack:rack0"] == "degraded"  # worst member wins
    h.on_alert(2.0, "A", "checkpoint-staleness", "fire")
    assert h.states()["hau:A"] == "alerting"
    h.on_trace_event(3.0, "recovery.hau.start", "A")
    assert h.states()["hau:A"] == "recovering"
    h.on_trace_event(4.0, "recovery.hau", "A")
    assert h.states()["hau:A"] == "healthy"
    assert h.states()["rack:rack0"] == "healthy"
    # failure at a node drives every HAU placed there to alerting
    h.on_trace_event(5.0, "failure.inject", "w2")
    assert h.states()["hau:B"] == "alerting"
    assert h.states()["hau:A"] == "healthy"
    rows = h.timeline
    assert all(set(r) == {"t", "entity", "from", "to", "reason"} for r in rows)
    assert [r["to"] for r in rows if r["entity"] == "hau:A"] == [
        "degraded", "alerting", "recovering", "healthy",
    ]


# -- config plumbing -----------------------------------------------------------


def test_monitor_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(**CFG, monitor_period=-1.0)
    with pytest.raises(ValueError):
        ExperimentConfig(**CFG, monitor_period=1.0, monitor_slos={"bogus": 1.0})


def test_config_fingerprint_excludes_monitor_fields_when_off():
    off = config_fingerprint(ExperimentConfig(**CFG))
    assert "monitor_period" not in off and "monitor_slos" not in off
    on = config_fingerprint(ExperimentConfig(**CFG, **MON))
    assert on["monitor_period"] == 1.0
    assert on["monitor_slos"] == MON["monitor_slos"]


# -- the plane is a pure observer ----------------------------------------------


def test_digests_identical_with_monitoring_on_and_off(monitored):
    plain = run_experiment(ExperimentConfig(**CFG))
    fp_plain = result_fingerprint(plain)
    fp_mon = result_fingerprint(monitored)
    # only the config section may differ (it records the monitor knobs)
    fp_plain.pop("config")
    fp_mon.pop("config")
    assert fp_plain == fp_mon


def test_monitor_output_byte_identical_across_runs_and_schedulers(
    monitored, monkeypatch
):
    import repro.simulation.core as core

    want = _monitor_bytes(monitored)
    assert _monitor_bytes(run_experiment(ExperimentConfig(**CFG, **MON))) == want
    monkeypatch.setattr(core, "_DEFAULT_SCHEDULER", "calendar")
    assert _monitor_bytes(run_experiment(ExperimentConfig(**CFG, **MON))) == want


# -- live plane surfaces -------------------------------------------------------


def test_monitored_run_alert_surfaces_agree(monitored):
    res = monitored
    alerts = res.alerts
    # window+warmup = 50 sim seconds at period 1.0
    assert alerts["ticks"] == 50
    assert alerts["summary"]["fired"] > 0
    assert alerts["summary"]["resolved"] > 0
    assert set(alerts["summary"]["by_slo"]) == {"checkpoint-staleness"}
    # alert log <-> trace events <-> metrics, all from one evaluation
    fires = [e for e in res.tracer.events if e.kind == "alert.fire"]
    resolves = [e for e in res.tracer.events if e.kind == "alert.resolve"]
    assert len(fires) == alerts["summary"]["fired"]
    assert len(resolves) == alerts["summary"]["resolved"]
    fired_metric = sum(
        m.value for m in res.telemetry.select("ms_alerts_fired_total")
    )
    assert fired_metric == alerts["summary"]["fired"]
    active = res.telemetry.get("ms_alerts_active").value
    assert active == alerts["summary"]["active"] == res.monitor.active_alerts()
    assert res.telemetry.get("ms_monitor_ticks_total").value == alerts["ticks"]
    # per-tick series rows are exported alongside the log
    assert len(res.monitor.series) == alerts["ticks"]
    assert res.health_timeline, "alerting HAUs must produce health transitions"
    states = set(r["to"] for r in res.health_timeline)
    assert states <= {"healthy", "degraded", "alerting", "recovering"}


def test_unmonitored_run_has_empty_surfaces():
    res = run_experiment(ExperimentConfig(**CFG))
    assert res.monitor is None
    assert res.alerts == {}
    assert res.health_timeline == []


# -- offline replay + CLI ------------------------------------------------------


def test_offline_replay_reproduces_live_alert_log(monitored):
    offline = MonitorPlane(1.0, slos=default_slos(MON["monitor_slos"]))
    offline.run_offline(monitored.tracer.events)
    assert offline.alerts == monitored.alerts["log"]
    assert offline.summary()["by_slo"] == monitored.alerts["summary"]["by_slo"]


def test_run_offline_refuses_attached_plane(monitored):
    assert monitored.monitor is not None
    with pytest.raises(RuntimeError):
        monitored.monitor.run_offline(())


def test_cli_replay_json_and_tables(monitored, tmp_path, capsys):
    from repro.monitor.cli import main

    trace = tmp_path / "run.trace.jsonl"
    monitored.write_trace(str(trace))
    argv = [
        str(trace), "--period", "1.0",
        "--bound", "checkpoint-staleness=12", "--bound", "latency-p99=60",
    ]
    assert main([*argv, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["alerts"]["log"] == monitored.alerts["log"]
    assert payload["health_timeline"], "replay should rebuild the timeline"
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "monitor" in out and "checkpoint-staleness" in out
    with pytest.raises(SystemExit):
        main([str(trace), "--bound", "not-a-pair"])


# -- scenarios -----------------------------------------------------------------


def test_scenario_monitor_compiles_to_config_fields():
    from repro.scenarios.compiler import compile_scenario

    doc = {
        "id": "t", "version": 1, "app": {"name": "tmi"}, "scheme": "ms-src+ap",
        "monitor": {"period": 2.0, "slos": {"checkpoint-staleness": 9.0}},
    }
    cfg = compile_scenario(doc).spec.config
    assert cfg.monitor_period == 2.0
    assert cfg.monitor_slos == {"checkpoint-staleness": 9.0}
    del doc["monitor"]
    cfg = compile_scenario(doc).spec.config
    assert cfg.monitor_period == 0.0 and cfg.monitor_slos == {}


def test_expect_alerts_pass_and_fail():
    from repro.scenarios.compiler import check_expectations

    log = [
        {"t": 13.0, "slo": "checkpoint-staleness", "subject": "A",
         "action": "fire", "burn_fast": 10.0, "burn_slow": 2.0},
        {"t": 21.0, "slo": "checkpoint-staleness", "subject": "A",
         "action": "resolve", "burn_fast": 0.0, "burn_slow": 1.0},
    ]
    payload = {"alerts": {"log": log}}
    doc = {"id": "t", "expect": {"alerts": [
        {"slo": "checkpoint-staleness", "fired": 1, "resolved": 1},
    ]}}
    assert check_expectations(doc, payload) == []
    doc["expect"]["alerts"] = [{"slo": "checkpoint-staleness", "fired": 3}]
    failures = check_expectations(doc, payload)
    assert failures and ">= 3 fired" in failures[0]
    # subject filter
    doc["expect"]["alerts"] = [
        {"slo": "checkpoint-staleness", "subject": "B", "fired": 1},
    ]
    assert check_expectations(doc, payload)
    # unmonitored payloads get the actionable hint
    failures = check_expectations(
        {"id": "t", "expect": {"alerts": [{"slo": "recovery-time", "fired": 1}]}},
        {"alerts": {}},
    )
    assert failures and "not monitored" in failures[0]


def test_example_alert_scenario_is_committed_and_asserts_a_cycle():
    from pathlib import Path

    from repro.scenarios.loader import load_path

    path = Path(__file__).resolve().parent.parent / (
        "examples/scenarios/slo-staleness-alert.yaml"
    )
    doc = load_path(path)
    wants = doc["expect"]["alerts"]
    assert any(w.get("fired") and w.get("resolved") for w in wants)


# -- bundles -------------------------------------------------------------------


def test_bundle_carries_alerts_and_tolerates_v1(tmp_path, monitored):
    from repro.harness.sweep import reduce_result
    from repro.inspect.bundle import (
        build_bundle,
        bundle_id,
        read_bundle,
        write_bundle,
    )

    payload = reduce_result(monitored)
    assert payload["alerts"]["summary"]["fired"] > 0
    bundle = build_bundle(payload)
    directory = write_bundle(bundle, tmp_path, name="B")
    back = read_bundle(directory)
    assert back["files"]["alerts.json"]["alerts"] == payload["alerts"]
    assert back["files"]["alerts.json"]["health_timeline"] == (
        payload["health_timeline"]
    )
    # a v1 bundle (pre-monitoring) has no alerts.json: reads as empty
    manifest = json.loads((directory / "MANIFEST.json").read_text())
    manifest["bundle_version"] = 1
    del manifest["files"]["alerts.json"]
    manifest["bundle_id"] = bundle_id(manifest["files"])
    (directory / "MANIFEST.json").write_text(json.dumps(manifest))
    (directory / "alerts.json").unlink()
    old = read_bundle(directory)
    assert old["files"]["alerts.json"] == {"alerts": {}, "health_timeline": []}


def test_bundle_diff_attributes_alert_deltas(tmp_path, monitored):
    from repro.harness.sweep import reduce_result
    from repro.inspect.bundle import build_bundle
    from repro.inspect.diff import diff_bundles, top_movers
    from repro.inspect.explain import explain_diff

    payload = reduce_result(monitored)
    quiet = dict(payload, alerts={}, health_timeline=[])
    diff = diff_bundles(build_bundle(quiet), build_bundle(payload))
    fired = payload["alerts"]["summary"]["fired"]
    entry = diff["alerts"]["checkpoint-staleness:fired"]
    assert entry["a"] == 0.0 and entry["b"] == float(fired)
    assert any(row["dimension"] == "alert" for row in top_movers(diff, limit=50))
    text = "\n".join(explain_diff(diff))
    assert "alert counts" in text
