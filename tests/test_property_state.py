"""Property-based tests for the state machinery (turning points, profile,
size estimation)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.state import StateHint, StateProfile, TurningPointDetector, estimate_state_size
from repro.state.turning import rebuild_series


@given(
    sizes=st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=2, max_size=60)
)
@settings(max_examples=60, deadline=None)
def test_turning_points_alternate_kinds(sizes):
    """Consecutive turning points always alternate min/max."""
    det = TurningPointDetector()
    kinds = []
    for i, s in enumerate(sizes):
        tp = det.observe(float(i), s)
        if tp:
            kinds.append(tp.kind)
    for a, b in zip(kinds, kinds[1:]):
        assert a != b


@given(
    sizes=st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=2, max_size=60)
)
@settings(max_examples=60, deadline=None)
def test_turning_points_are_local_extrema(sizes):
    det = TurningPointDetector()
    series = list(enumerate(sizes))
    for i, s in series:
        tp = det.observe(float(i), s)
        if tp is None:
            continue
        idx = int(tp.time)
        left = sizes[idx - 1] if idx > 0 else None
        right = sizes[idx + 1] if idx + 1 < len(sizes) else None
        if tp.kind == "max":
            if left is not None:
                assert tp.size >= left or tp.size >= sizes[idx]
            if right is not None:
                assert tp.size >= right
        else:
            if right is not None:
                assert tp.size <= right


@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0),
            st.floats(min_value=0.0, max_value=1e9),
        ),
        min_size=1,
        max_size=20,
        unique_by=lambda p: p[0],
    ),
    queries=st.lists(st.floats(min_value=-100.0, max_value=1100.0), max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_rebuild_series_within_envelope(points, queries):
    """Interpolated values never leave [min, max] of the turning points."""
    values = rebuild_series(points, queries)
    lo = min(s for (_t, s) in points)
    hi = max(s for (_t, s) in points)
    for v in values:
        assert lo - 1e-6 <= v <= hi + 1e-6


@given(
    series=st.lists(st.floats(min_value=0.0, max_value=1e8), min_size=4, max_size=80),
    period=st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=50, deadline=None)
def test_profile_smax_at_least_smin(series, period):
    prof = StateProfile(checkpoint_period=period)
    for i, s in enumerate(series):
        prof.observe("h", float(i), s)
    result = prof.result()
    assert result.smax >= result.smin >= 0.0
    assert result.relaxation >= 0.0


@given(
    n=st.integers(min_value=0, max_value=200),
    element=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_size_estimate_exact_for_uniform_elements(n, element):
    class Blob:
        def __init__(self, size):
            self.nominal_size = size

    class Op:
        state_attrs = ("data",)
        state_hints = {}

        def __init__(self):
            self.data = [Blob(element) for _ in range(n)]

    assert estimate_state_size(Op()) == n * element


@given(
    n=st.integers(min_value=0, max_value=100),
    element=st.integers(min_value=1, max_value=10_000),
    hint_size=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_element_size_hint_always_wins(n, element, hint_size):
    class Blob:
        def __init__(self, size):
            self.nominal_size = size

    class Op:
        state_attrs = ("data",)

        def __init__(self):
            self.data = [Blob(element) for _ in range(n)]
            self.state_hints = {"data": StateHint(element_size=hint_size)}

    assert estimate_state_size(Op()) == n * hint_size
