"""Tests for the interprocedural flow rules (DET004, DET005, PUR001).

Each rule gets a violation fixture (must fire) and a suppression fixture
(inline disable must silence it) — for DET004 both the seed-line and the
sink-line disables are exercised, since the seed-line veto travels
through the call graph.
"""

from __future__ import annotations

import textwrap

from repro.analysis.engine import AnalysisConfig, run_analysis


def run_fixture(tmp_path, files, rule_ids=None, dirs=("src",)):
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text), encoding="utf-8")
    (tmp_path / "DESIGN.md").write_text("", encoding="utf-8")
    config = AnalysisConfig(
        root=tmp_path,
        dirs=dirs,
        rule_ids=tuple(rule_ids) if rule_ids else None,
    )
    return run_analysis(config)


def rules_of(project):
    return [f.rule for f in project.findings]


# ---------------------------------------------------------------------------
# DET004 — transitive nondeterminism reaching an export sink
# ---------------------------------------------------------------------------

DET004_FILES = {
    "src/pkg/cfg.py": """\
    import os

    def read_knob():
        return os.environ.get("KNOB", "")
    """,
    "src/pkg/out.py": """\
    from pkg.cfg import read_knob

    def to_json(run):
        return {"knob": read_knob(), "run": run}
    """,
}


def test_det004_fires_on_transitive_environ_to_serializer(tmp_path):
    project = run_fixture(tmp_path, DET004_FILES, rule_ids=["DET004"])
    assert rules_of(project) == ["DET004"]
    f = project.findings[0]
    assert f.path == "src/pkg/out.py"
    assert "read_knob" in f.message
    assert "environ" in f.message


def test_det004_not_fired_for_direct_seed_in_sink(tmp_path):
    # A wall-clock call directly inside the sink is DET001 territory;
    # DET004 only reports *transitive* chains.
    project = run_fixture(
        tmp_path,
        {
            "src/pkg/out.py": """\
            import time

            def to_json(run):
                return {"t": time.time(), "run": run}
            """
        },
        rule_ids=["DET004"],
    )
    assert rules_of(project) == []


def test_det004_sink_line_suppression(tmp_path):
    files = dict(DET004_FILES)
    files["src/pkg/out.py"] = """\
    from pkg.cfg import read_knob

    def to_json(run):  # repro-lint: disable=DET004
        return {"knob": read_knob(), "run": run}
    """
    project = run_fixture(tmp_path, files, rule_ids=["DET004"])
    assert rules_of(project) == []
    assert project.inline_suppressed == 1


def test_det004_seed_line_suppression_vetoes_whole_chain(tmp_path):
    files = dict(DET004_FILES)
    files["src/pkg/cfg.py"] = """\
    import os

    def read_knob():
        return os.environ.get("KNOB", "")  # repro-lint: disable=DET004
    """
    project = run_fixture(tmp_path, files, rule_ids=["DET004"])
    assert rules_of(project) == []


# ---------------------------------------------------------------------------
# DET005 — unsorted filesystem enumeration
# ---------------------------------------------------------------------------


def test_det005_fires_on_bare_listdir(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            import os

            def load_all(path):
                return [open(path + "/" + n) for n in os.listdir(path)]
            """
        },
        rule_ids=["DET005"],
    )
    assert rules_of(project) == ["DET005"]
    assert "os.listdir" in project.findings[0].message


def test_det005_quiet_when_sorted(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            import os
            from pathlib import Path

            def load_all(path):
                names = sorted(os.listdir(path))
                files = sorted(Path(path).glob("*.json"))
                return names, files
            """
        },
        rule_ids=["DET005"],
    )
    assert rules_of(project) == []


def test_det005_suppression(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            import os

            def load_all(path):
                return os.listdir(path)  # repro-lint: disable=DET005
            """
        },
        rule_ids=["DET005"],
    )
    assert rules_of(project) == []
    assert project.inline_suppressed == 1


# ---------------------------------------------------------------------------
# PUR001 — scheme hooks / snapshot paths reaching nondeterminism
# ---------------------------------------------------------------------------

# The flow rules skip depth-0 seeds for kinds the per-file rules own
# (wall-clock / global-rng / fs-order), so the fixtures route the
# nondeterminism through a helper.
PUR001_HOOK_FILES = {
    "src/pkg/scheme.py": """\
    import random

    def _coin():
        return random.random() < 0.5

    class SchemeHooks:
        pass

    class MyScheme(SchemeHooks):
        def on_control(self, hau, token):
            if _coin():
                yield None
    """,
}


def test_pur001_fires_on_nondeterministic_scheme_hook(tmp_path):
    project = run_fixture(tmp_path, PUR001_HOOK_FILES, rule_ids=["PUR001"])
    assert rules_of(project) == ["PUR001"]
    f = project.findings[0]
    assert "on_control" in f.message
    assert "global" in f.message


def test_pur001_fires_on_snapshot_reaching_nondeterminism(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/pkg/op.py": """\
            import time

            def _stamp():
                return time.time()

            class Operator:
                pass

            class Windowed(Operator):
                def snapshot(self):
                    return {"at": _stamp()}
            """
        },
        rule_ids=["PUR001"],
    )
    assert rules_of(project) == ["PUR001"]
    assert "snapshot" in project.findings[0].message


def test_pur001_quiet_on_direct_seed_in_hook(tmp_path):
    # Direct global-RNG use inside the hook body is DET002 territory.
    project = run_fixture(
        tmp_path,
        {
            "src/pkg/scheme.py": """\
            import random

            class SchemeHooks:
                pass

            class MyScheme(SchemeHooks):
                def on_control(self, hau, token):
                    if random.random() < 0.5:
                        yield None
            """
        },
        rule_ids=["PUR001"],
    )
    assert rules_of(project) == []


def test_pur001_quiet_on_pure_hook(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/pkg/scheme.py": """\
            class SchemeHooks:
                pass

            class MyScheme(SchemeHooks):
                def on_control(self, hau, token):
                    yield None
            """
        },
        rule_ids=["PUR001"],
    )
    assert rules_of(project) == []


def test_pur001_hook_line_suppression(tmp_path):
    files = {
        "src/pkg/scheme.py": """\
        import random

        def _coin():
            return random.random() < 0.5

        class SchemeHooks:
            pass

        class MyScheme(SchemeHooks):
            def on_control(self, hau, token):  # repro-lint: disable=PUR001
                if _coin():
                    yield None
        """
    }
    project = run_fixture(tmp_path, files, rule_ids=["PUR001"])
    assert rules_of(project) == []
    assert project.inline_suppressed == 1


def test_pur001_seed_line_suppression(tmp_path):
    files = {
        "src/pkg/scheme.py": """\
        import random

        def _coin():
            return random.random() < 0.5  # repro-lint: disable=PUR001

        class SchemeHooks:
            pass

        class MyScheme(SchemeHooks):
            def on_control(self, hau, token):
                if _coin():
                    yield None
        """
    }
    project = run_fixture(tmp_path, files, rule_ids=["PUR001"])
    assert rules_of(project) == []
