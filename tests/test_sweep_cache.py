"""Parallel sweep runner + content-addressed result cache
(``repro.harness.sweep``): hit/miss accounting, invalidation by config
and by code version, merge ordering, and the stats/metrics plumbing.

Every test points the runner at a ``tmp_path`` cache so the repo-root
cache (and other test sessions) are never touched.
"""

import json

import pytest

import repro.harness.sweep as sweep
from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import (
    CellSpec,
    SweepStats,
    cached_oracle_times,
    cell_key,
    clear_cache,
    run_cells,
)
from repro.telemetry import MetricRegistry
from repro.telemetry.export import snapshot

SMALL = dict(window=20.0, warmup=5.0, workers=6, spares=8, racks=2, seed=3)


def small_config(scheme="ms-src", n=1, **over):
    kwargs = dict(SMALL)
    kwargs.update(over)
    return ExperimentConfig(
        app="tmi", scheme=scheme, n_checkpoints=n,
        app_params={"n_minutes": 0.25}, **kwargs,
    )


def specs_pair():
    return [
        CellSpec(config=small_config(scheme="baseline")),
        CellSpec(config=small_config(scheme="ms-src")),
    ]


def test_cold_then_warm_run_hits_100_percent(tmp_path):
    cold = SweepStats()
    first = run_cells(specs_pair(), jobs=1, cache_dir=tmp_path, stats=cold)
    assert (cold.cache_hits, cold.cache_misses, cold.executed) == (0, 2, 2)

    warm = SweepStats()
    second = run_cells(specs_pair(), jobs=1, cache_dir=tmp_path, stats=warm)
    assert (warm.cache_hits, warm.cache_misses, warm.executed) == (2, 0, 0)
    assert second == first, "cached payloads must be byte-identical to fresh ones"


def test_cache_files_are_canonical_json(tmp_path):
    run_cells(specs_pair()[:1], jobs=1, cache_dir=tmp_path)
    files = sorted(tmp_path.glob("*.json"))
    assert len(files) == 1
    text = files[0].read_text()
    payload = json.loads(text)
    assert text == json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert "digest" in payload and "kernel" in payload


def test_config_change_misses(tmp_path):
    run_cells([CellSpec(config=small_config(seed=3))], jobs=1, cache_dir=tmp_path)
    stats = SweepStats()
    run_cells([CellSpec(config=small_config(seed=4))], jobs=1, cache_dir=tmp_path, stats=stats)
    assert stats.cache_misses == 1


def test_run_kwargs_are_part_of_the_key():
    base = CellSpec(config=small_config())
    with_failure = CellSpec(config=small_config(), failure_at=12.0)
    with_bins = CellSpec(config=small_config(), bins=(5.0, 20.0, 1.0))
    keys = {cell_key(base), cell_key(with_failure), cell_key(with_bins)}
    assert len(keys) == 3


def test_code_fingerprint_invalidates_cache(tmp_path, monkeypatch):
    run_cells(specs_pair()[:1], jobs=1, cache_dir=tmp_path)
    # simulate a source edit: the memoised code salt changes
    monkeypatch.setattr(sweep, "_CODE_FINGERPRINT", "0" * 64)
    stats = SweepStats()
    run_cells(specs_pair()[:1], jobs=1, cache_dir=tmp_path, stats=stats)
    assert stats.cache_misses == 1, "a code-version change must invalidate every entry"
    assert len(sorted(tmp_path.glob("*.json"))) == 2  # old entry + new entry


def test_use_cache_false_never_touches_disk(tmp_path):
    stats = SweepStats()
    run_cells(specs_pair()[:1], jobs=1, cache_dir=tmp_path, use_cache=False, stats=stats)
    assert not sorted(tmp_path.glob("*.json"))
    assert stats.cache_hits == 0 and stats.cache_misses == 0
    assert stats.executed == 1


def test_clear_cache(tmp_path):
    run_cells(specs_pair(), jobs=1, cache_dir=tmp_path)
    assert clear_cache(tmp_path) == 2
    assert not sorted(tmp_path.glob("*.json"))
    assert clear_cache(tmp_path) == 0  # idempotent


def test_parallel_merge_preserves_spec_order(tmp_path):
    """With jobs=2 the completion order is nondeterministic; the merged
    list must still line up index-for-index with the input specs."""
    specs = [
        CellSpec(config=small_config(scheme="baseline", n=0)),
        CellSpec(config=small_config(scheme="ms-src", n=1)),
        CellSpec(config=small_config(scheme="ms-src+ap", n=1)),
    ]
    payloads = run_cells(specs, jobs=2, cache_dir=tmp_path)
    schemes = [p["config"]["scheme"] for p in payloads]
    assert schemes == ["baseline", "ms-src", "ms-src+ap"]
    ns = [p["config"]["n_checkpoints"] for p in payloads]
    assert ns == [0, 1, 1]


def test_partial_cache_mixes_hits_and_executions(tmp_path):
    specs = specs_pair()
    run_cells(specs[:1], jobs=1, cache_dir=tmp_path)  # pre-warm one cell
    stats = SweepStats()
    payloads = run_cells(specs, jobs=1, cache_dir=tmp_path, stats=stats)
    assert (stats.cache_hits, stats.cache_misses) == (1, 1)
    assert payloads[0]["config"]["scheme"] == "baseline"
    assert payloads[1]["config"]["scheme"] == "ms-src"


def test_sweep_stats_publish_metrics():
    stats = SweepStats(cache_hits=3, cache_misses=1)
    registry = MetricRegistry()
    stats.publish(registry)
    snap = {m["name"]: m for m in snapshot(registry)["metrics"]}
    assert snap["ms_sweep_cache_hits_total"]["value"] == 3
    assert snap["ms_sweep_cache_misses_total"]["value"] == 1


def test_cached_oracle_times_memoises(tmp_path):
    cfg = small_config(scheme="ms-src+ap", n=2)
    first = cached_oracle_times(cfg, cache_dir=tmp_path)
    assert first and all(isinstance(t, float) for t in first)
    assert len(sorted(tmp_path.glob("*.json"))) == 1
    second = cached_oracle_times(cfg, cache_dir=tmp_path)
    assert second == first
    assert cached_oracle_times(cfg, use_cache=False) == first


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert sweep.default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert sweep.default_jobs() == 1  # clamped
    monkeypatch.delenv("REPRO_JOBS")
    assert sweep.default_jobs() >= 1


def test_default_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert sweep.default_cache_dir() == tmp_path / "elsewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert sweep.default_cache_dir().name == ".repro-cache"


def test_cache_cli_clear(tmp_path, capsys):
    run_cells(specs_pair()[:1], jobs=1, cache_dir=tmp_path)
    assert sweep.main(["--clear", "--cache-dir", str(tmp_path)]) == 0
    assert not sorted(tmp_path.glob("*.json"))
    out = capsys.readouterr().out
    assert "1" in out


@pytest.mark.parametrize("jobs", [1, 2])
def test_payload_has_reduced_fields(tmp_path, jobs):
    spec = CellSpec(config=small_config(n=2), bins=(5.0, 20.0, 2.5))
    (payload,) = run_cells([spec], jobs=jobs, cache_dir=tmp_path, use_cache=False)
    for field_name in ("throughput", "latency", "latency_percentiles",
                       "rounds_completed", "checkpoint", "digest", "kernel",
                       "binned_latency"):
        assert field_name in payload
    assert payload["kernel"]["events_popped"] > 0
    assert payload["binned_latency"], "bins requested → series must be present"
