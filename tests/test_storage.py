"""Tests for shared storage and local (input-preservation) store."""

import pytest

from repro.cluster import ClusterSpec, DataCenter
from repro.simulation import Environment
from repro.storage import LocalStore, SharedStorage, StorageClient, StorageError


def make_dc():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=3, spares=1, racks=1))
    storage = SharedStorage(env, dc.storage_node)
    return env, dc, storage


# --- SharedStorage -------------------------------------------------------------


def test_write_then_read_roundtrip():
    env, dc, storage = make_dc()
    client = StorageClient(dc.workers[0], storage)
    result = []

    def proc():
        version = yield from client.write("ckpt", "hau1", {"s": 1}, size=1_000_000)
        obj = yield from client.read("ckpt", "hau1", version)
        result.append((version, obj.value, obj.size))

    env.process(proc())
    env.run()
    assert result == [(0, {"s": 1}, 1_000_000)]
    assert storage.bytes_written == 1_000_000
    assert storage.bytes_read == 1_000_000


def test_versions_accumulate_and_latest_wins():
    env, dc, storage = make_dc()
    client = StorageClient(dc.workers[0], storage)

    def proc():
        yield from client.write("ckpt", "k", "v0", size=10)
        yield from client.write("ckpt", "k", "v1", size=10)

    env.process(proc())
    env.run()
    assert storage.latest_version("ckpt", "k") == 1
    assert storage.lookup("ckpt", "k").value == "v1"
    assert storage.lookup("ckpt", "k", version=0).value == "v0"


def test_read_missing_key_raises():
    env, dc, storage = make_dc()
    client = StorageClient(dc.workers[0], storage)

    def proc():
        yield from client.read("ckpt", "nope")

    p = env.process(proc())
    with pytest.raises(StorageError):
        env.run(until=p)


def test_disk_contention_shares_bandwidth():
    env, dc, storage = make_dc()
    finishes = []

    def writer(i):
        client = StorageClient(dc.workers[i], storage)
        yield from client.write("ckpt", f"k{i}", i, size=100_000_000)
        finishes.append(env.now)

    # measure one uncontended write first
    env.process(writer(0))
    env.run()
    solo = finishes[0]
    env2, dc2, storage2 = make_dc()
    finishes2 = []

    def writer2(i):
        client = StorageClient(dc2.workers[i], storage2)
        yield from client.write("ckpt", f"k{i}", i, size=100_000_000)
        finishes2.append(env2.now)

    for i in range(3):
        env2.process(writer2(i))
    env2.run()
    # Chunked fair sharing: three concurrent 100 MB writes through one
    # disk each take roughly 3x the uncontended time.
    assert finishes2[-1] > 2.0 * solo
    assert finishes2[-1] < 4.0 * solo


def test_drop_versions_before_gc():
    env, dc, storage = make_dc()
    client = StorageClient(dc.workers[0], storage)

    def proc():
        for v in range(3):
            yield from client.write("ckpt", "k", v, size=100)

    env.process(proc())
    env.run()
    assert storage.total_bytes("ckpt") == 300
    storage.drop_versions_before("ckpt", "k", 2)
    assert storage.total_bytes("ckpt") == 100
    assert storage.lookup("ckpt", "k").value == 2


def test_keys_and_exists():
    env, dc, storage = make_dc()
    client = StorageClient(dc.workers[0], storage)

    def proc():
        yield from client.write("ns", "b", 1, size=1)
        yield from client.write("ns", "a", 1, size=1)
        yield from client.write("other", "z", 1, size=1)

    env.process(proc())
    env.run()
    assert storage.keys("ns") == ["a", "b"]
    assert storage.exists("ns", "a")
    assert not storage.exists("ns", "z")


def test_write_from_dead_node_raises():
    env, dc, storage = make_dc()
    node = dc.workers[0]
    client = StorageClient(node, storage)
    node.fail()

    def proc():
        yield from client.write("ckpt", "k", 1, size=10)

    p = env.process(proc())
    with pytest.raises(Exception):
        env.run(until=p)


# --- LocalStore ------------------------------------------------------------------


def test_local_store_append_within_buffer_is_free():
    env, dc, _ = make_dc()
    node = dc.workers[0]
    store = LocalStore(node, buffer_bytes=1000)

    def proc():
        yield from store.append(0, "a", 400)
        yield from store.append(1, "b", 400)

    env.process(proc())
    env.run()
    assert env.now == 0.0  # no spill, no disk time
    assert store.mem_bytes == 800
    assert store.spills == 0


def test_local_store_spills_when_full():
    env, dc, _ = make_dc()
    node = dc.workers[0]
    store = LocalStore(node, buffer_bytes=1000)

    def proc():
        yield from store.append(0, "a", 600)
        yield from store.append(1, "b", 600)  # 600+600 > 1000 -> spill first

    env.process(proc())
    env.run()
    assert store.spills == 1
    assert store.bytes_spilled == 600
    assert store.disk_bytes == 600
    assert store.mem_bytes == 600
    assert env.now > 0.0  # paid disk time


def test_local_store_discard_through():
    env, dc, _ = make_dc()
    node = dc.workers[0]
    store = LocalStore(node, buffer_bytes=100)

    def proc():
        for i in range(5):
            yield from store.append(i, f"t{i}", 60)  # spills repeatedly

    env.process(proc())
    env.run()
    total_before = len(store)
    freed = store.discard_through(2)
    assert freed == 180
    assert len(store) == total_before - 3


def test_local_store_replay_after_returns_order():
    env, dc, _ = make_dc()
    node = dc.workers[0]
    store = LocalStore(node, buffer_bytes=100)
    out = []

    def proc():
        for i in range(5):
            yield from store.append(i, f"t{i}", 60)
        items = yield from store.replay_after(1)
        out.extend(s for (s, _i, _z) in items)

    env.process(proc())
    env.run()
    assert out == [2, 3, 4]


def test_local_store_lost_on_node_failure():
    env, dc, _ = make_dc()
    node = dc.workers[0]
    store = LocalStore(node)
    node.fail()

    def proc():
        yield from store.append(0, "x", 10)

    p = env.process(proc())
    with pytest.raises(Exception):
        env.run(until=p)
