"""Tests for the REPRO_SAN runtime sanitizers (repro.sanitize).

Covers the kernel half (free-list use-after-recycle poisoning, clock /
heap-order assertions, bit-identical pooling behaviour) and the state
half (cross-HAU isolation guard via the generator trampoline), plus the
activation contract: nothing is patched unless REPRO_SAN is set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import sanitize
from repro.sanitize import SanitizerError, kernel as san_kernel
from repro.sanitize import state_guard
from repro.simulation.core import Environment, Event, Timeout


@pytest.fixture(autouse=True)
def pristine_sanitizers():
    """Start every test from the uninstalled state (the suite may itself
    be running under REPRO_SAN=1, where import already installed both
    halves) and restore whatever was active afterwards."""
    was_kernel = san_kernel.installed()
    was_guard = state_guard.installed()
    san_kernel.uninstall()
    state_guard.uninstall()
    try:
        yield
    finally:
        san_kernel.uninstall()
        state_guard.uninstall()
        if was_kernel:
            san_kernel.install()
        if was_guard:
            state_guard.install()


@pytest.fixture
def kernel_sanitizer():
    san_kernel.install()
    try:
        yield
    finally:
        san_kernel.uninstall()


@pytest.fixture
def state_sanitizer():
    state_guard.install()
    try:
        yield
    finally:
        state_guard.uninstall()


def drain(env):
    while env._heap:
        env.step()


# -- activation contract ------------------------------------------------------


def test_enabled_reads_repro_san(monkeypatch):
    monkeypatch.delenv("REPRO_SAN", raising=False)
    assert not sanitize.enabled()
    monkeypatch.setenv("REPRO_SAN", "0")
    assert not sanitize.enabled()
    monkeypatch.setenv("REPRO_SAN", "1")
    assert sanitize.enabled()


def test_disabled_means_untouched_kernel(monkeypatch):
    monkeypatch.delenv("REPRO_SAN", raising=False)
    sanitize.maybe_install_kernel()
    sanitize.maybe_install_state_guard()
    assert not san_kernel.installed()
    assert not state_guard.installed()
    # the class dict carries the pristine entry points
    assert Environment.step is not san_kernel._san_step


def test_install_is_idempotent_and_uninstall_restores():
    original_step = Environment.step
    san_kernel.install()
    try:
        san_kernel.install()  # second call is a no-op
        assert Environment.step is san_kernel._san_step
    finally:
        san_kernel.uninstall()
    assert Environment.step is original_step
    assert not san_kernel.installed()


# -- use-after-recycle poisoning ----------------------------------------------


def test_pooled_event_is_poisoned(kernel_sanitizer):
    env = Environment()
    ev = env.event(name="a")
    ev.succeed("v")
    ident = id(ev)
    del ev
    drain(env)
    pooled = env._pools[Event][-1]
    assert id(pooled) == ident
    assert type(pooled).__name__ == "_PoisonedEvent"
    with pytest.raises(SanitizerError, match="use-after-recycle"):
        pooled.succeed("again")
    with pytest.raises(SanitizerError, match="use-after-recycle"):
        assert pooled.triggered  # property raises before the assert sees it


def test_factory_heals_poisoned_event(kernel_sanitizer):
    env = Environment()
    ev = env.event(name="a")
    ev.succeed("v")
    ident = id(ev)
    del ev
    drain(env)
    reused = env.event(name="b")
    assert id(reused) == ident
    assert type(reused) is Event
    assert not reused.triggered  # fully usable again
    assert reused.name == "b"


def test_scheduling_a_poisoned_event_is_caught(kernel_sanitizer):
    env = Environment()
    t = env.timeout(1.0)
    del t
    drain(env)
    poisoned = env._pools[Timeout][-1]
    # simulate a defeated refcount guard: push the pooled object back
    # onto the heap without going through a factory
    env._seq += 1
    import heapq

    heapq.heappush(env._heap, (env.now + 1.0, 1, env._seq, poisoned))
    with pytest.raises(SanitizerError, match="poisoned event popped"):
        drain(env)


# -- pooling stays bit-identical under the sanitizer --------------------------


def test_counters_identical_with_and_without_sanitizer():
    def workload():
        env = Environment()
        for _ in range(300):
            env.timeout(1.0)
            e = env.event()
            e.succeed()
            del e
            drain(env)
        return env.events_popped, env.pool_hits, env.pool_misses, env.now

    plain = workload()
    san_kernel.install()
    try:
        sanitized = workload()
    finally:
        san_kernel.uninstall()
    assert sanitized == plain


# -- clock / heap-order assertions --------------------------------------------


def test_clock_backwards_is_caught(kernel_sanitizer):
    import heapq

    env = Environment()
    env.timeout(5.0)
    env.step()
    assert env.now == 5.0
    stale = Event(env)
    env._seq += 1
    heapq.heappush(env._heap, (1.0, 1, env._seq, stale))
    with pytest.raises(SanitizerError, match="clock moved backwards"):
        env.step()


def test_heap_order_regression_is_caught(kernel_sanitizer):
    env = Environment()
    env.timeout(1.0)
    env.step()
    # a pop whose (time, priority, seq) key sorts before the previous
    # pop violates the total order even if the clock check passes
    with pytest.raises(SanitizerError, match="total order violated"):
        san_kernel._check_order(env, (1.0, 0, 0))


def test_order_state_evicts_old_environments(kernel_sanitizer):
    envs = [Environment() for _ in range(san_kernel._ORDER_CAP + 8)]
    for env in envs:
        env.timeout(1.0)
        env.step()
    assert len(san_kernel._order_state) <= san_kernel._ORDER_CAP


# -- cross-HAU state-isolation guard ------------------------------------------


def _make_operator(hau_id):
    from repro.dsps.operator import Operator, OperatorContext

    class CounterOp(Operator):
        state_attrs = ("count",)

        def __init__(self):
            super().__init__(name="counter")
            self.count = 0

    op = CounterOp()
    op.setup(
        OperatorContext(
            hau_id=hau_id, now=lambda: 0.0, rng=np.random.default_rng(0)
        )
    )
    return op


def test_state_write_from_owner_hau_is_allowed(state_sanitizer):
    op = _make_operator("H1")

    def loop():
        op.count += 1
        yield "done"

    tramp = state_guard._HauTrampoline(loop(), "H1")
    assert next(tramp) == "done"
    assert op.count == 1


def test_state_write_from_foreign_hau_raises(state_sanitizer):
    op = _make_operator("H1")

    def loop():
        op.count += 1
        yield "done"

    tramp = state_guard._HauTrampoline(loop(), "H2")
    with pytest.raises(SanitizerError, match="cross-HAU"):
        next(tramp)


def test_state_write_outside_any_loop_is_allowed(state_sanitizer):
    # setup/snapshot/restore run outside the HAU loops — no stack, no guard
    op = _make_operator("H1")
    op.count = 41
    assert op.count == 41


def test_non_state_attrs_never_guarded(state_sanitizer):
    op = _make_operator("H1")

    def loop():
        op.name = "renamed"  # not in state_attrs
        yield "done"

    tramp = state_guard._HauTrampoline(loop(), "H2")
    assert next(tramp) == "done"
    assert op.name == "renamed"


def test_trampoline_tracks_interleaved_generators(state_sanitizer):
    op1 = _make_operator("H1")
    op2 = _make_operator("H2")

    def loop(op):
        op.count += 1
        yield "a"
        op.count += 1
        yield "b"

    t1 = state_guard._HauTrampoline(loop(op1), "H1")
    t2 = state_guard._HauTrampoline(loop(op2), "H2")
    # interleave resumptions: each write must see its own hau on top
    assert next(t1) == "a"
    assert next(t2) == "a"
    assert next(t1) == "b"
    assert next(t2) == "b"
    assert (op1.count, op2.count) == (2, 2)
    assert state_guard._hau_stack == []


# -- end-to-end: digest-bearing run is clean under both sanitizers ------------


def test_digest_case_identical_under_sanitizers():
    from repro.harness.digest import compute_baseline

    plain = compute_baseline(["tmi/baseline@2"])["digests"]
    san_kernel.install()
    state_guard.install()
    try:
        sanitized = compute_baseline(["tmi/baseline@2"])["digests"]
    finally:
        state_guard.uninstall()
        san_kernel.uninstall()
    assert sanitized == plain  # every guard armed, result bit-identical
