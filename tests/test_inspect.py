"""Tests for repro.inspect: RunBundle format, diff engine, explainer, CLI.

The three contracts pinned here (and referenced from the package
docstrings):

* **byte-determinism** — two same-seed runs produce byte-identical
  bundle directories, and every CLI rendering of the same inputs is
  byte-identical across invocations;
* **antisymmetry** — ``diff(b, a)`` is the exact sign-flipped mirror of
  ``diff(a, b)``;
* **attribution** — on a hand-built trace where one HAU's one phase is
  made slower, the diff's top mover names exactly that HAU and that
  phase span.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.harness import ExperimentConfig, run_experiment
from repro.inspect import (
    PHASE_SPANS,
    build_bundle,
    diff_bundles,
    diff_reports,
    explain_diff,
    read_bundle,
    render_diff_table,
    top_movers,
    write_bundle,
)
from repro.inspect.bundle import BundleError
from repro.inspect.cli import main


def small_config(**kwargs):
    base = dict(
        app="tmi", scheme="ms-src+ap", n_checkpoints=2, window=60.0, warmup=20.0,
        workers=6, spares=8, racks=2, seed=3, app_params={"n_minutes": 0.25},
    )
    base.update(kwargs)
    return ExperimentConfig(**base)


def bundle_bytes(directory):
    """{filename: bytes} for every file in a bundle directory."""
    return {p.name: p.read_bytes() for p in sorted(directory.iterdir())}


# ---------------------------------------------------------------------------
# hand-verified synthetic payloads (the attribution ground truth)
# ---------------------------------------------------------------------------

def synthetic_payload(straggler_extra: float = 0.0) -> dict:
    """A minimal sweep-cell payload with known phase-span arithmetic.

    Two HAUs (``W0``, ``W1``) over one checkpoint round.  With
    ``straggler_extra > 0``, HAU ``W1`` spends that many extra seconds in
    ``disk-io`` (and the critical path + straggler list reflect it) —
    the injected-straggler scenario in miniature, with every number
    chosen by hand so the expected diff is computable on paper.
    """
    w1_disk = 1.0 + straggler_extra
    payload = {
        "config": {
            "app": "tmi", "scheme": "ms-src+ap", "n_checkpoints": 1,
            "window": 60.0, "warmup": 20.0, "seed": 3,
        },
        "digest": f"digest-{straggler_extra}",
        "throughput": 1000.0 - 10.0 * straggler_extra,
        "latency": 20.0 + straggler_extra,
        "latency_percentiles": {"p50": 18.0, "p95": 30.0, "p99": 31.0 + straggler_extra},
        "rounds_completed": 1,
        "phase_spans": {
            "totals": {
                "token-wait": 2.0,
                "safepoint-wait": 1.0,
                "snapshot": 2.0,
                "disk-io": 2.0 + straggler_extra,
            },
            "per_hau": {
                "W0": {"token-wait": 1.0, "safepoint-wait": 0.5,
                       "snapshot": 1.0, "disk-io": 1.0},
                "W1": {"token-wait": 1.0, "safepoint-wait": 0.5,
                       "snapshot": 1.0, "disk-io": w1_disk},
            },
        },
        "critical_path": {
            "rounds": {"1": 3.5 + straggler_extra},
            "max_seconds": 3.5 + straggler_extra,
            "mean_seconds": 3.5 + straggler_extra,
            "gating": {"1": "W1" if straggler_extra else "W0"},
            "hops": {
                "1": [
                    {"kind": "token-wait", "subject": "W1", "seconds": 1.0},
                    {"kind": "disk-io", "subject": "W1", "seconds": w1_disk},
                    {"kind": "barrier", "subject": "coordinator", "seconds": 1.5},
                ]
            },
        },
        "stragglers": (
            [{"round": 1, "hau": "W1", "seconds": w1_disk, "ratio": 3.0}]
            if straggler_extra
            else []
        ),
    }
    return payload


# ---------------------------------------------------------------------------
# bundle format: round-trip, content addressing, byte-determinism
# ---------------------------------------------------------------------------

def test_bundle_round_trip_and_content_address(tmp_path):
    bundle = build_bundle(synthetic_payload())
    directory = write_bundle(bundle, tmp_path)
    # content-addressed path: the dir name is the bundle id prefix
    assert directory.name == bundle["manifest"]["bundle_id"][:16]
    loaded = read_bundle(directory)
    assert loaded["manifest"] == bundle["manifest"]
    assert loaded["files"] == bundle["files"]
    # rewriting identical content lands on the same path, unchanged
    before = bundle_bytes(directory)
    assert write_bundle(bundle, tmp_path) == directory
    assert bundle_bytes(directory) == before


def test_bundle_named_write_pins_path(tmp_path):
    bundle = build_bundle(synthetic_payload())
    directory = write_bundle(bundle, tmp_path, name="BUNDLE_baseline")
    assert directory == tmp_path / "BUNDLE_baseline"
    assert read_bundle(directory)["manifest"]["bundle_id"] == (
        bundle["manifest"]["bundle_id"]
    )


def test_bundle_verify_rejects_tampering(tmp_path):
    directory = write_bundle(build_bundle(synthetic_payload()), tmp_path)
    metrics = directory / "metrics.json"
    data = json.loads(metrics.read_text())
    data["throughput"] = 999999
    metrics.write_text(json.dumps(data))
    with pytest.raises(BundleError, match="does not match"):
        read_bundle(directory)
    # verify=False loads it anyway (for forensics on corrupt uploads)
    assert read_bundle(directory, verify=False)["files"]["metrics.json"][
        "throughput"
    ] == 999999


def test_bundle_rejects_non_bundle_dir(tmp_path):
    with pytest.raises(BundleError, match="not a bundle"):
        read_bundle(tmp_path)


def test_same_seed_experiments_write_byte_identical_bundles(tmp_path):
    """The headline determinism contract: same seed -> identical bytes."""
    dirs = []
    for sub in ("one", "two"):
        res = run_experiment(small_config(), trace=True)
        dirs.append(res.write_run_bundle(tmp_path / sub))
    bytes_a, bytes_b = bundle_bytes(dirs[0]), bundle_bytes(dirs[1])
    assert set(bytes_a) == set(bytes_b)
    assert bytes_a == bytes_b  # byte-identical, file by file
    # ... and therefore the same content address
    assert dirs[0].name == dirs[1].name
    # the self-diff agrees: digests match -> identical
    diff = diff_bundles(read_bundle(dirs[0]), read_bundle(dirs[1]))
    assert diff["identical"] is True
    assert explain_diff(diff) == [
        "bundles are identical (determinism digests and alert sections match)"
    ]


def test_phase_spans_vocabulary_matches_profiler():
    from repro.profiling.spans import PHASES

    assert PHASE_SPANS == PHASES


# ---------------------------------------------------------------------------
# diff engine: antisymmetry
# ---------------------------------------------------------------------------

def mirror_entry(entry):
    return {
        "a": entry["b"],
        "b": entry["a"],
        "delta": None if entry["delta"] is None else -entry["delta"],
    }


def test_diff_bundles_antisymmetry():
    a = build_bundle(synthetic_payload(0.0))
    b = build_bundle(synthetic_payload(5.0))
    fwd = diff_bundles(a, b)
    rev = diff_bundles(b, a)
    assert rev["a"] == fwd["b"] and rev["b"] == fwd["a"]
    assert rev["identical"] == fwd["identical"]
    for table in ("metrics", "checkpoint", "phases", "haus", "hops", "hop_subjects"):
        assert rev[table] == {
            name: mirror_entry(entry) for name, entry in fwd[table].items()
        }, table
    assert rev["stragglers"]["appeared"] == fwd["stragglers"]["disappeared"]
    assert rev["stragglers"]["disappeared"] == fwd["stragglers"]["appeared"]
    # rankings are sign-insensitive: same (dimension, name) order
    assert [(m["dimension"], m["name"]) for m in rev["top_movers"]] == [
        (m["dimension"], m["name"]) for m in fwd["top_movers"]
    ]
    assert [m["delta"] for m in rev["top_movers"]] == [
        -m["delta"] for m in fwd["top_movers"]
    ]


def test_diff_reports_antisymmetry():
    a = {"cells": [
        {"app": "tmi", "scheme": "baseline", "n_checkpoints": 0,
         "throughput": 100.0, "latency": 10.0, "latency_p99": 20.0,
         "critical_path_seconds": 0.0, "rounds_completed": 0},
        {"app": "tmi", "scheme": "ms", "n_checkpoints": 3,
         "throughput": 300.0, "latency": 5.0, "latency_p99": 9.0,
         "critical_path_seconds": 4.0, "rounds_completed": 3},
    ]}
    b = copy.deepcopy(a)
    b["cells"][1]["throughput"] = 270.0
    b["cells"][1]["latency"] = 6.0
    fwd = diff_reports(a, b)
    rev = diff_reports(b, a)
    assert fwd["kind"] == rev["kind"] == "headline-report-diff"
    for key, row in fwd["rows"].items():
        assert rev["rows"][key]["metrics"] == {
            m: mirror_entry(e) for m, e in row["metrics"].items()
        }
    assert [(m["row"], m["metric"], m["magnitude"]) for m in rev["top_movers"]] == [
        (m["row"], m["metric"], m["magnitude"]) for m in fwd["top_movers"]
    ]


def test_diff_reports_tracks_missing_rows():
    a = {"cells": [{"app": "tmi", "scheme": "ms", "n_checkpoints": 0,
                    "throughput": 1.0, "latency": 1.0, "latency_p99": 1.0,
                    "critical_path_seconds": 0.0, "rounds_completed": 0}]}
    b = {"cells": []}
    diff = diff_reports(a, b)
    row = diff["rows"]["tmi/ms@0"]
    assert row["in_a"] and not row["in_b"]
    assert all(e["delta"] is None for e in row["metrics"].values())
    assert diff["top_movers"] == []  # incomparable deltas never rank


def test_diff_reports_rejects_mixed_kinds():
    with pytest.raises(ValueError, match="headline report against a campaign"):
        diff_reports({"cells": []}, {"scenarios": []})


# ---------------------------------------------------------------------------
# attribution: the injected-straggler acceptance scenario
# ---------------------------------------------------------------------------

def test_straggler_delta_attributed_to_correct_phase_and_hau():
    """Hand-verified ground truth: B is A plus 5.0s of disk-io on W1.

    Expected attribution, computable on paper from synthetic_payload():
    every moved dimension (phase ``disk-io``, hau ``W1``, hop kind
    ``disk-io``, hop subject ``W1``) carries exactly +5.0s, and nothing
    else moves at all.
    """
    extra = 5.0
    diff = diff_bundles(
        build_bundle(synthetic_payload(0.0)),
        build_bundle(synthetic_payload(extra)),
    )
    assert diff["identical"] is False and diff["same_workload"] is True

    # phase attribution: disk-io grew by exactly the injected seconds ...
    assert diff["phases"]["disk-io"]["delta"] == pytest.approx(extra)
    # ... and the other three phases did not move
    for phase in PHASE_SPANS:
        if phase != "disk-io":
            assert diff["phases"][phase]["delta"] == 0.0

    # HAU attribution: W1 absorbed it all, W0 is untouched
    assert diff["haus"]["W1"]["delta"] == pytest.approx(extra)
    assert diff["haus"]["W0"]["delta"] == 0.0

    # critical path: the round got slower by the same amount, the hop
    # breakdown blames the disk-io hop on W1, and gating flipped to W1
    assert diff["checkpoint"]["critical_path_max"]["delta"] == pytest.approx(extra)
    assert diff["hops"]["disk-io"]["delta"] == pytest.approx(extra)
    assert diff["hops"]["barrier"]["delta"] == 0.0
    assert diff["hop_subjects"]["W1"]["delta"] == pytest.approx(extra)

    # the straggler itself is flagged as appeared
    assert diff["stragglers"]["appeared"] == ["1:W1"]
    assert diff["stragglers"]["disappeared"] == []

    # every top mover is one of the four +5.0s views of the same event
    assert diff["top_movers"], "movement must produce movers"
    expected = {("phase", "disk-io"), ("hau", "W1"),
                ("hop", "disk-io"), ("hop-subject", "W1")}
    assert {(m["dimension"], m["name"]) for m in diff["top_movers"]} == expected
    for mover in diff["top_movers"]:
        assert mover["delta"] == pytest.approx(extra)

    # and the explainer tells the same story in prose
    lines = explain_diff(diff)
    text = "\n".join(lines)
    assert "attribution (delta = candidate - baseline):" in text
    assert "hau W1" in text and "+5" in text
    assert "stragglers appeared: 1:W1" in text
    assert "latency: 20 -> 25 (+5, +25.0%, worse)" in text


def test_top_movers_limit_and_determinism():
    diff = diff_bundles(
        build_bundle(synthetic_payload(0.0)), build_bundle(synthetic_payload(5.0))
    )
    assert top_movers(diff, limit=2) == diff["top_movers"][:2]
    # ranking is a pure function: recomputing yields identical rows
    assert top_movers(diff) == top_movers(diff)


# ---------------------------------------------------------------------------
# explainer rendering
# ---------------------------------------------------------------------------

def test_explain_diff_no_movement_line():
    a = build_bundle(synthetic_payload(0.0))
    b = copy.deepcopy(a)
    b["manifest"] = dict(b["manifest"], digest="different")  # not identical
    lines = explain_diff(diff_bundles(a, b))
    assert lines == ["no measurable difference between the two sides"]


def test_explain_diff_flags_workload_mismatch():
    a = synthetic_payload(0.0)
    b = synthetic_payload(0.0)
    b["config"]["scheme"] = "baseline"
    b["digest"] = "other"
    lines = explain_diff(diff_bundles(build_bundle(a), build_bundle(b)))
    assert any("apples to oranges" in line for line in lines)


def test_explain_diff_rejects_unknown_kind():
    with pytest.raises(ValueError, match="not a diff"):
        explain_diff({"kind": "mystery"})


def test_render_diff_table_deterministic():
    a = build_bundle(synthetic_payload(0.0))
    b = build_bundle(synthetic_payload(5.0))
    one = render_diff_table(diff_bundles(a, b))
    two = render_diff_table(diff_bundles(a, b))
    assert one == two
    assert "top movers" in one and "phase-span totals" in one
    assert "stragglers appeared: 1:W1" in one


# ---------------------------------------------------------------------------
# CLI: show / diff / explain
# ---------------------------------------------------------------------------

def write_pair(tmp_path):
    da = write_bundle(build_bundle(synthetic_payload(0.0)), tmp_path, name="a")
    db = write_bundle(build_bundle(synthetic_payload(5.0)), tmp_path, name="b")
    return da, db


def test_cli_show_and_byte_determinism(tmp_path, capsys):
    da, _ = write_pair(tmp_path)
    assert main(["show", str(da)]) == 0
    first = capsys.readouterr().out
    assert main(["show", str(da)]) == 0
    assert capsys.readouterr().out == first  # byte-deterministic
    assert "tmi/ms-src+ap" in first


def test_cli_diff_and_explain(tmp_path, capsys):
    da, db = write_pair(tmp_path)
    assert main(["diff", str(da), str(db)]) == 0
    out = capsys.readouterr().out
    assert "identical: no" in out and "top movers" in out
    assert main(["diff", str(da), str(db), "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["kind"] == "bundle-diff"
    assert main(["explain", str(da), str(db)]) == 0
    out = capsys.readouterr().out
    assert "attribution (delta = candidate - baseline):" in out


def test_cli_diff_reports_from_files(tmp_path, capsys):
    report = {"cells": [{"app": "tmi", "scheme": "ms", "n_checkpoints": 3,
                         "throughput": 100.0, "latency": 10.0, "latency_p99": 15.0,
                         "critical_path_seconds": 2.0, "rounds_completed": 3}]}
    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    pa.write_text(json.dumps(report))
    report["cells"][0]["throughput"] = 80.0
    pb.write_text(json.dumps(report))
    assert main(["diff", str(pa), str(pb)]) == 0
    out = capsys.readouterr().out
    assert "headline-report-diff" in out and "throughput" in out


def test_cli_rejects_mixed_operands(tmp_path, capsys):
    da, _ = write_pair(tmp_path)
    report = tmp_path / "r.json"
    report.write_text(json.dumps({"cells": []}))
    assert main(["diff", str(da), str(report)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_errors_on_missing_bundle(tmp_path, capsys):
    assert main(["show", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err
