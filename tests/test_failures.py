"""Tests for the failure model (Table I) and the injector."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, DataCenter
from repro.failures import (
    ABE_CLUSTER,
    ClusterFailureModel,
    FailureInjector,
    FailurePlan,
    GOOGLE_DC,
    PlannedFailure,
)
from repro.failures.injector import sample_plan
from repro.simulation import Environment


def test_google_expected_afn100_matches_table1():
    model = ClusterFailureModel(GOOGLE_DC)
    exp = model.expected_afn100()
    assert exp["Network"] > 300.0  # the paper's ">300"
    assert 100.0 <= exp["Environment"] <= 150.0
    assert 80.0 <= exp["Ooops"] <= 120.0  # "~100"
    assert 1.7 <= exp["Disk"] <= 8.6
    assert 1.0 <= exp["Memory"] <= 1.6  # "1.3"


def test_network_row_reproduces_worked_example():
    """7640 network node-failures / 2400 nodes * 100 > 300 (§II-B1)."""
    net = [s for s in GOOGLE_DC.sources if s.category == "Network"]
    total = sum(s.expected_node_failures(GOOGLE_DC.nodes) for s in net)
    assert total == pytest.approx(7640.0)


def test_abe_lower_than_google():
    g = ClusterFailureModel(GOOGLE_DC).expected_afn100()
    a = ClusterFailureModel(ABE_CLUSTER).expected_afn100()
    assert a["Network"] < g["Network"]
    assert a["Ooops"] < g["Ooops"]
    assert 200 <= a["Network"] <= 300  # the paper's "~250"


def test_sampled_years_mean_close_to_expectation():
    """Single years are heavy-tailed (one extra power outage moves the
    Environment row by ~50); the multi-year mean must track expectation."""
    model = ClusterFailureModel(GOOGLE_DC, rng=np.random.default_rng(42))
    exp = model.expected_afn100()
    acc: dict[str, list[float]] = {}
    for _ in range(20):
        rows, stats = model.sample_year()
        assert stats["total_events"] > 0
        for cat, row in rows.items():
            acc.setdefault(cat, []).append(row.afn100)
    for cat, values in acc.items():
        mean = sum(values) / len(values)
        assert mean == pytest.approx(exp[cat], rel=0.35)


def test_burst_share_about_ten_percent():
    """'About 10% failures are part of a correlated burst' — as a share of
    all failure events including benign restarts [11]."""
    model = ClusterFailureModel(GOOGLE_DC, rng=np.random.default_rng(1))
    shares = []
    for _ in range(5):
        _rows, stats = model.sample_year()
        shares.append(stats["burst_event_share"])
    mean_share = sum(shares) / len(shares)
    assert 0.01 <= mean_share <= 0.25


def test_bursts_rack_correlated():
    model = ClusterFailureModel(GOOGLE_DC, rng=np.random.default_rng(2))
    rows, _ = model.sample_year()
    assert rows["Network"].burst_events > 0
    assert rows["Ooops"].burst_events == 0
    assert rows["Ooops"].single_events > 0


def test_table_rows_ranges():
    model = ClusterFailureModel(GOOGLE_DC, rng=np.random.default_rng(3))
    table = model.table_rows(samples=3)
    lo, hi = table["Network"]
    assert lo <= hi
    assert hi > 250


def test_sample_plan_deterministic():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=20, spares=2, racks=4))
    horizon = 3.15e7  # ~one year
    p1 = sample_plan(np.random.default_rng(5), dc, horizon=horizon)
    p2 = sample_plan(np.random.default_rng(5), dc, horizon=horizon)
    assert p1.events == p2.events
    assert p1.single_count > 0
    assert p1.burst_count > 0


def test_injector_executes_plan():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=8, spares=0, racks=2))
    plan = FailurePlan(
        events=[
            PlannedFailure(at=1.0, kind="node", target="w0"),
            PlannedFailure(at=2.0, kind="rack", target="rack1"),
        ]
    )
    inj = FailureInjector(env, dc, plan)
    inj.start()
    env.run(until=5.0)
    assert not dc.node("w0").alive
    rack1 = dc.racks[1]
    assert all(not n.alive for n in rack1.nodes)
    # rack0's other nodes (except w0) still alive
    assert any(n.alive for n in dc.racks[0].nodes)
    assert len(inj.injected) == 2


def test_injector_skips_dead_targets():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=4, spares=0, racks=1))
    dc.node("w1").fail()
    plan = FailurePlan(events=[PlannedFailure(at=1.0, kind="node", target="w1")])
    inj = FailureInjector(env, dc, plan)
    inj.start()
    env.run(until=2.0)
    assert inj.injected == []


def test_injector_unknown_node_ignored():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=2, spares=0, racks=1))
    plan = FailurePlan(events=[PlannedFailure(at=0.5, kind="node", target="nope")])
    FailureInjector(env, dc, plan).start()
    env.run(until=1.0)  # must not raise
