"""Tests for the experiment harness (configs, runner, oracle search)."""

import pytest

from repro.harness import (
    ExperimentConfig,
    find_oracle_times,
    format_series,
    format_table,
    run_experiment,
)
from repro.harness.figures import default_app_params


def small(**kw):
    base = dict(
        app="tmi", window=40.0, warmup=10.0, workers=12, spares=14, racks=2,
        app_params={"n_minutes": 0.25},
    )
    base.update(kw)
    return ExperimentConfig(**base)


def test_config_validates_app_and_scheme():
    with pytest.raises(ValueError):
        ExperimentConfig(app="nope")
    with pytest.raises(ValueError):
        ExperimentConfig(scheme="nope")


def test_checkpoint_times_spacing():
    cfg = small(scheme="ms-src", n_checkpoints=4)
    times = cfg.checkpoint_times()
    assert len(times) == 4
    assert all(cfg.warmup <= t <= cfg.end for t in times)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(abs(g - cfg.window / 4) < 1e-9 for g in gaps)
    assert small(n_checkpoints=0).checkpoint_times() == []


def test_run_experiment_measures_probe():
    res = run_experiment(small())
    assert res.throughput > 0
    assert res.latency > 0


def test_run_experiment_deterministic():
    a = run_experiment(small(seed=5))
    b = run_experiment(small(seed=5))
    assert (a.throughput, a.latency) == (b.throughput, b.latency)
    c = run_experiment(small(seed=6))
    assert (a.throughput, a.latency) != (c.throughput, c.latency)


def test_every_scheme_runs():
    for scheme in ("baseline", "ms-src", "ms-src+ap"):
        res = run_experiment(small(scheme=scheme, n_checkpoints=2))
        assert res.throughput > 0, scheme


def test_state_trace_records_all_haus():
    res = run_experiment(small(), trace_state=True)
    assert res.state_trace is not None
    assert set(res.state_trace.samples) == set(res.runtime.app.graph.haus)
    total = res.state_trace.total_series()
    assert total and total[-1][1] >= 0


def test_find_oracle_times_within_window():
    cfg = small(scheme="oracle", n_checkpoints=2)
    times = find_oracle_times(cfg)
    assert 1 <= len(times) <= 2
    assert all(cfg.warmup <= t <= cfg.end for t in times)


def test_failure_injection_kills_targets():
    cfg = small(scheme="ms-src", n_checkpoints=1, enable_recovery=True)
    res = run_experiment(cfg, failure_at=20.0, failure_targets=None)
    # worst case: all HAU nodes failed, then recovered onto spares
    assert res.scheme.recoveries
    assert all(h.node.alive for h in res.runtime.haus.values())


def test_default_app_params_scales_state():
    p_full = default_app_params("bcp", 600.0)
    p_fast = default_app_params("bcp", 150.0)
    assert p_full["state_scale"] == 1.0
    assert p_fast["state_scale"] == pytest.approx(0.25)
    assert "n_minutes" in default_app_params("tmi", 600.0)


def test_format_table_alignment():
    out = format_table(["a", "long_header"], [[1, 2.5], ["xx", 3]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert len(lines) == 5


def test_format_series():
    out = format_series("s", [(1.0, 2.0), (3.0, 4.0)], unit="MB")
    assert "2 points" in out
    assert out.count("\n") == 2
