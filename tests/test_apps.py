"""Integration tests for the three paper applications."""

import pytest

from repro.apps import APPS, bcp, signalguru, tmi
from repro.cluster import ClusterSpec
from repro.dsps import CheckpointScheme, DSPSRuntime, RuntimeConfig
from repro.simulation import Environment


def deploy(app, seed=1, workers=55):
    env = Environment()
    rt = DSPSRuntime(
        env,
        app,
        CheckpointScheme(),
        RuntimeConfig(
            seed=seed,
            cluster=ClusterSpec(workers=workers, spares=4, racks=4),
            channel_capacity=16,
            inbox_capacity=32,
        ),
    )
    rt.start()
    return env, rt


@pytest.mark.parametrize("name", sorted(APPS))
def test_apps_have_55_haus_and_validate(name):
    app = APPS[name].build(seed=0)
    assert app.hau_count == 55
    assert app.graph.sinks() == ["K"]
    assert app.params["probe_prefix"]


@pytest.mark.parametrize("name", sorted(APPS))
def test_apps_profile_matches_module(name):
    profile = APPS[name].PROFILE
    assert profile.hau_count == 55
    assert profile.workload in ("low", "medium", "high")


def test_tmi_flows_and_clusters():
    # NB: k-means windows close in *stream* time (tuple creation times),
    # which lags wall time under saturation — run long enough for the
    # first windows to complete.
    app = tmi.build(seed=2, n_minutes=0.3)
    env, rt = deploy(app)
    env.run(until=120.0)
    # data flowed to the k-means stage and windows were clustered
    assert rt.metrics.stage_throughput("A") > 0
    windows = sum(rt.haus[f"A{i}"].operators[0].windows_done for i in range(10))
    assert windows > 0
    # the sink received clustering results with 4 mode counts
    sink = rt.haus["K"].operators[0]
    assert sink.received_count == pytest.approx(windows, abs=10)


def test_tmi_pool_sawtooth():
    app = tmi.build(seed=2, n_minutes=0.15)
    env, rt = deploy(app)
    sizes = []

    def sampler():
        while True:
            yield env.timeout(1.0)
            sizes.append(sum(rt.haus[f"A{i}"].state_size() for i in range(10)))

    env.process(sampler())
    env.run(until=60.0)
    assert max(sizes) > 2 * (min(s for s in sizes if s >= 0) + 1)


def test_bcp_counts_people_accurately():
    app = bcp.build(seed=3, state_scale=0.25)
    env, rt = deploy(app)
    env.run(until=40.0)
    counted = sum(rt.haus[f"C{i}"].operators[0].frames_counted for i in range(16))
    assert counted > 50
    # history clears happened (bus arrivals)
    clears = sum(rt.haus[f"H{i}"].operators[0].clears for i in range(4))
    assert clears >= 1


def test_bcp_sensor_path_reaches_sink():
    app = bcp.build(seed=3, state_scale=0.25)
    env, rt = deploy(app)
    env.run(until=40.0)
    assert rt.metrics.stage_throughput("N") > 0
    assert rt.metrics.stage_throughput("L") > 0
    assert rt.haus["K"].operators[0].received_count > 0


def test_signalguru_detects_lights_and_episodes():
    app = signalguru.build(seed=4, state_scale=0.25)
    env, rt = deploy(app)
    env.run(until=60.0)
    frames = sum(rt.haus[f"C{i}"].operators[0].frames_seen for i in range(12))
    assert frames > 100
    episodes = sum(rt.haus[f"M{i}"].operators[0].episodes_done for i in range(12))
    assert episodes >= 1
    # no frame with a light gets rejected by the shape filter
    rejected = sum(rt.haus[f"A{i}"].operators[0].rejected for i in range(12))
    assert rejected == 0


def test_signalguru_retention_bounded_by_episode():
    app = signalguru.build(seed=4, state_scale=0.25)
    env, rt = deploy(app)
    env.run(until=90.0)
    # retained frames never exceed ~2 episodes' worth per motion filter
    for i in range(12):
        op = rt.haus[f"M{i}"].operators[0]
        assert len(op.retained) < 600


@pytest.mark.parametrize("name", sorted(APPS))
def test_apps_deterministic(name):
    def run_once():
        app = APPS[name].build(seed=9, **({"n_minutes": 0.3} if name == "tmi" else {}))
        env, rt = deploy(app)
        env.run(until=20.0)
        probe = app.params["probe_prefix"]
        return (
            rt.metrics.stage_throughput(probe),
            round(rt.metrics.stage_latency(probe), 9),
            rt.total_state_bytes(),
        )

    assert run_once() == run_once()


def test_state_scale_scales_state_not_wire():
    big = signalguru.build(seed=5, state_scale=1.0)
    small = signalguru.build(seed=5, state_scale=0.25)
    env_b, rt_b = deploy(big)
    env_s, rt_s = deploy(small)
    env_b.run(until=30.0)
    env_s.run(until=30.0)
    state_b = sum(rt_b.haus[f"M{i}"].state_size() for i in range(12))
    state_s = sum(rt_s.haus[f"M{i}"].state_size() for i in range(12))
    assert state_b > 2.0 * state_s  # retained state scales
    # but the streamed tuple counts match (wire size unchanged)
    assert rt_b.metrics.stage_throughput("M") == rt_s.metrics.stage_throughput("M")
