"""Tests for nodes, channels and topology (repro.cluster)."""

import pytest

from repro.cluster import (
    Channel,
    ChannelClosedError,
    ClusterSpec,
    DataCenter,
    Node,
    NodeDownError,
)
from repro.cluster.node import BandwidthPipe
from repro.simulation import Environment, SimulationError


# --- BandwidthPipe -----------------------------------------------------------


def test_pipe_transfer_time():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=100.0)
    done = []

    def proc():
        yield from pipe.transfer(200)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [2.0]
    assert pipe.bytes_moved == 200
    assert pipe.ops == 1


def test_pipe_serialises_concurrent_transfers():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=100.0)
    done = []

    def proc(name):
        yield from pipe.transfer(100)
        done.append((env.now, name))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert done == [(1.0, "a"), (2.0, "b")]


def test_pipe_per_op_latency():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=100.0, per_op_latency=0.5)
    assert pipe.estimate(100) == pytest.approx(1.5)


def test_pipe_rejects_nonpositive_bandwidth():
    env = Environment()
    with pytest.raises(ValueError):
        BandwidthPipe(env, bandwidth=0)


# --- Node ---------------------------------------------------------------------


def test_node_compute_uses_core():
    env = Environment()
    node = Node(env, "n0", cores=1)
    done = []

    def proc(name):
        yield from node.compute(1.0)
        done.append((env.now, name))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert done == [(1.0, "a"), (2.0, "b")]


def test_node_two_cores_run_parallel():
    env = Environment()
    node = Node(env, "n0", cores=2)
    done = []

    def proc(name):
        yield from node.compute(1.0)
        done.append((env.now, name))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert done == [(1.0, "a"), (1.0, "b")]


def test_node_fail_interrupts_spawned_processes():
    env = Environment()
    node = Node(env, "n0")
    fate = []

    def worker():
        yield env.timeout(100.0)
        fate.append("survived")

    node.spawn(worker(), label="w")

    def killer():
        yield env.timeout(5.0)
        node.fail("test")

    env.process(killer())
    env.run()
    assert fate == []
    assert not node.alive
    assert node.failed_at == 5.0


def test_node_fail_idempotent():
    env = Environment()
    node = Node(env, "n0")
    node.fail()
    node.fail()
    assert not node.alive


def test_spawn_on_dead_node_raises():
    env = Environment()
    node = Node(env, "n0")
    node.fail()

    def gen():
        yield env.timeout(1)

    with pytest.raises(NodeDownError):
        node.spawn(gen())


def test_node_on_fail_callback():
    env = Environment()
    node = Node(env, "n0")
    seen = []
    node.on_fail(lambda n: seen.append(n.node_id))
    node.fail()
    assert seen == ["n0"]


# --- Channel --------------------------------------------------------------------


def _pair(env):
    a = Node(env, "a")
    b = Node(env, "b")
    chan = Channel(env, a, b, latency=0.001)
    return a, b, chan


def test_channel_delivers_in_order():
    env = Environment()
    _a, _b, chan = _pair(env)
    got = []

    def sender():
        for i in range(5):
            chan.send(i, size=1000)
            yield env.timeout(0.01)

    def receiver():
        for _ in range(5):
            msg = yield chan.recv()
            got.append(msg.payload)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got == [0, 1, 2, 3, 4]
    assert chan.messages_delivered == 5
    assert chan.bytes_delivered == 5000


def test_channel_latency_and_bandwidth():
    env = Environment()
    a = Node(env, "a", nic_bw=1000.0)
    b = Node(env, "b")
    chan = Channel(env, a, b, latency=0.5)
    arrival = []

    def receiver():
        msg = yield chan.recv()
        arrival.append((env.now, msg.payload))

    chan.send("x", size=1000)  # 1s on NIC + 0.5 latency
    env.process(receiver())
    env.run()
    assert arrival == [(1.5, "x")]


def test_channel_sender_nic_contention():
    env = Environment()
    a = Node(env, "a", nic_bw=1000.0)
    b = Node(env, "b")
    c = Node(env, "c")
    ab = Channel(env, a, b, latency=0.0)
    ac = Channel(env, a, c, latency=0.0)
    times = {}

    def receiver(chan, name):
        yield chan.recv()
        times[name] = env.now

    ab.send("x", size=1000)
    ac.send("y", size=1000)
    env.process(receiver(ab, "b"))
    env.process(receiver(ac, "c"))
    env.run()
    # the two transfers share one NIC: second completes at ~2s
    assert times["b"] == pytest.approx(1.0)
    assert times["c"] == pytest.approx(2.0)


def test_channel_close_on_dst_failure():
    env = Environment()
    a, b, chan = _pair(env)
    errors = []

    def receiver():
        try:
            while True:
                yield chan.recv()
        except ChannelClosedError:
            errors.append(env.now)

    def killer():
        yield env.timeout(2.0)
        b.fail()

    env.process(receiver())
    env.process(killer())
    env.run()
    assert errors == [2.0]
    assert chan.closed


def test_channel_send_after_close_raises():
    env = Environment()
    a, b, chan = _pair(env)
    b.fail()
    with pytest.raises(ChannelClosedError):
        chan.send("x", 10)


def test_channel_drains_delivered_before_reporting_close():
    env = Environment()
    a, b, chan = _pair(env)
    got, errs = [], []

    def sender():
        chan.send("early", 10)
        yield env.timeout(1.0)
        a.fail()

    def receiver():
        yield env.timeout(2.0)  # message already delivered, channel closed
        try:
            msg = yield chan.recv()
            got.append(msg.payload)
            yield chan.recv()
        except ChannelClosedError:
            errs.append(env.now)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got == ["early"]
    assert errs == [2.0]


def test_channel_on_break_callback():
    env = Environment()
    a, b, chan = _pair(env)
    seen = []
    chan.on_break(lambda c: seen.append(c.name))
    a.fail()
    assert seen == [chan.name]


# --- DataCenter --------------------------------------------------------------


def test_datacenter_builds_spec():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=10, spares=3, racks=2))
    assert len(dc.workers) == 10
    assert len(dc.spares) == 3
    assert len(dc.racks) == 2
    assert dc.storage_node.node_id == "storage"
    # every node is in a rack
    for node in dc.all_nodes:
        assert dc.rack_of(node) is not None


def test_datacenter_rack_failure_is_correlated():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=8, spares=0, racks=2))
    rack = dc.racks[1]
    victims = rack.fail_all()
    assert len(victims) == 4
    assert all(not n.alive for n in rack.nodes)
    assert all(n.alive for n in dc.racks[0].nodes if n.node_id != "storage")


def test_claim_spare_removes_from_pool():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=2, spares=2, racks=1))
    first = dc.claim_spare()
    assert first not in dc.spares
    assert dc.spares_available() == 1


def test_claim_spare_skips_dead_and_exhausts():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=2, spares=2, racks=1))
    dc.spares[0].fail()
    got = dc.claim_spare()
    assert got.alive
    with pytest.raises(SimulationError):
        dc.claim_spare()


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(workers=0)
    with pytest.raises(ValueError):
        ClusterSpec(racks=0)


def test_datacenter_connect_creates_tracked_channel():
    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=2, spares=0, racks=1))
    chan = dc.connect(dc.workers[0], dc.workers[1])
    assert chan in list(dc.channels())
