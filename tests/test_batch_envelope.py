"""Batched tuple traffic (BatchEnvelope) vs per-tuple sends.

The batching contract has two halves.  With ``batch_quantum=0`` the
envelope path is never entered: configs fingerprint without the field
and runs digest bit-identically, so the committed baseline digests stay
valid.  With ``batch_quantum>0`` the kernel pays one channel message per
quantum instead of one per tuple, but *schemes must not be able to
tell*: on unpack the receiver replays the per-tuple boundary protocol,
so per-edge delivery order — and therefore checkpointed state and
exactly-once recovery — is unchanged.  The oracle is
:class:`~repro.dsps.testing.VerifySink`, whose full delivery log is
checkpointed state: full-drain runs compare bit-for-bit.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core import MSSrcAP
from repro.dsps.application import StreamApplication
from repro.dsps.graph import QueryGraph
from repro.dsps.operator import Emit, Operator
from repro.dsps.runtime import DSPSRuntime, RuntimeConfig
from repro.dsps.testing import (
    IntervalSource,
    VerifySink,
    make_chain_graph,
    make_diamond_graph,
)
from repro.dsps.tuples import BatchEnvelope, DataTuple
from repro.harness.digest import config_fingerprint, result_digest
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.simulation.core import Environment


def make_fanout_graph(source_count: int = 40, interval: float = 0.05):
    """One source feeding two independent sinks (broadcast fan-out)."""
    holder: dict = {}

    class Splitter(Operator):
        def on_tuple(self, port, tup):
            return [
                Emit(payload=tup.payload, size=tup.size, port=p, key=tup.key)
                for p in range(2)
            ]

    def sink(name):
        def make():
            s = VerifySink()
            holder[name] = s
            return [s]

        return make

    g = QueryGraph()
    g.add_hau(
        "src",
        lambda: [IntervalSource(count=source_count, interval=interval, size=20_000)],
        is_source=True,
    )
    g.add_hau("split", lambda: [Splitter()])
    g.add_hau("ka", sink("ka"), is_sink=True)
    g.add_hau("kb", sink("kb"), is_sink=True)
    g.connect("src", "split")
    g.connect("split", "ka", src_port=0)
    g.connect("split", "kb", src_port=1)
    return g, holder


def deploy(graph, holder, quantum: float, until: float = 30.0, scheme=None):
    """Run a test graph to full drain and return the sink logs."""
    env = Environment()
    app = StreamApplication(name="t", graph=graph)
    rt = DSPSRuntime(
        env,
        app,
        scheme or MSSrcAP(checkpoint_times=[8.0, 16.0]),
        RuntimeConfig(
            seed=7,
            cluster=ClusterSpec(workers=6, spares=6, racks=2),
            batch_quantum=quantum,
        ),
    )
    rt.start()
    env.run(until=until)
    return {
        name: list(sink.payload_log) for name, sink in sorted(holder.items())
    }, env


# -- digest-pinned default ---------------------------------------------------

def test_quantum_zero_is_omitted_from_config_fingerprint():
    cfg = ExperimentConfig(app="tmi", app_params={"n_minutes": 0.25})
    assert cfg.batch_quantum == 0.0
    assert "batch_quantum" not in config_fingerprint(cfg)
    batched = dataclasses.replace(cfg, batch_quantum=0.01)
    assert config_fingerprint(batched)["batch_quantum"] == 0.01


def test_quantum_zero_digest_identical_to_default():
    common = dict(
        app="tmi", scheme="ms-src", n_checkpoints=1, window=30.0, warmup=8.0,
        workers=8, spares=8, racks=2, seed=2, app_params={"n_minutes": 0.2},
    )
    default = run_experiment(ExperimentConfig(**common))
    explicit = run_experiment(ExperimentConfig(batch_quantum=0.0, **common))
    assert result_digest(default) == result_digest(explicit)
    # quantum=0 never builds an envelope
    assert all(
        c.batches_flushed == 0 for c in default.runtime.data_channels.values()
    )


# -- scheme-visible order is batching-invariant ------------------------------

@pytest.mark.parametrize("quantum", [0.01, 0.05])
@pytest.mark.parametrize(
    "maker",
    [make_chain_graph, make_diamond_graph, make_fanout_graph],
    ids=["chain", "diamond", "fanout"],
)
def test_delivery_order_unchanged_by_batching(maker, quantum):
    g0, h0 = maker()
    logs_plain, env_plain = deploy(g0, h0, quantum=0.0)
    g1, h1 = maker()
    logs_batch, env_batch = deploy(g1, h1, quantum=quantum)
    assert logs_batch == logs_plain
    assert any(log for log in logs_plain.values())  # drained something real


def test_batching_reduces_channel_messages():
    g0, h0 = make_chain_graph(source_count=80, interval=0.02)
    _, env_plain = deploy(g0, h0, quantum=0.0)
    g1, h1 = make_chain_graph(source_count=80, interval=0.02)
    _, env_batch = deploy(g1, h1, quantum=0.1)
    # same model outcome, strictly fewer kernel events
    assert env_batch.events_popped < env_plain.events_popped


def test_exactly_once_with_failure_under_batching():
    """Kill the mid node at 3.2s and recover: the batched run's final
    sink log must equal the failure-free (unbatched) run's, bit for bit
    — envelopes neither duplicate nor drop tuples across a rollback."""

    def run(quantum, fail):
        g, holder = make_chain_graph(source_count=60, interval=0.05)
        env = Environment()
        app = StreamApplication(name="t", graph=g)
        rt = DSPSRuntime(
            env,
            app,
            MSSrcAP(checkpoint_times=[2.0, 6.0], enable_recovery=True),
            RuntimeConfig(
                seed=7,
                cluster=ClusterSpec(workers=6, spares=6, racks=2),
                batch_quantum=quantum,
            ),
        )
        rt.start()
        if fail:
            node = rt.haus["mid"].node

            def killer():
                yield env.timeout(3.2)
                node.fail("test")

            env.process(killer(), label="killer")
        env.run(until=40.0)
        return list(holder["sink"].payload_log)

    clean = run(0.0, fail=False)
    assert run(0.02, fail=False) == clean
    assert run(0.02, fail=True) == clean
    assert run(0.0, fail=True) == clean


# -- envelope mechanics -------------------------------------------------------

def test_envelope_size_and_len():
    tuples = [
        DataTuple(payload=i, size=100 * (i + 1), key=i, created_at=0.0)
        for i in range(3)
    ]
    env = BatchEnvelope(tuples)
    assert len(env) == 3
    assert env.size == 100 + 200 + 300


def test_channel_coalesces_within_quantum():
    from repro.cluster.node import Node

    env = Environment()
    a, b = Node(env, "a"), Node(env, "b")
    chan_batched = __import__("repro.cluster.channel", fromlist=["Channel"]).Channel(
        env, a, b, batch_quantum=0.01, name="t"
    )
    got = []

    def receiver():
        while True:
            msg = yield chan_batched.recv()
            got.append(msg.payload)

    env.process(receiver(), label="rx")

    def sender():
        for i in range(5):
            chan_batched.offer(i, size=10)
        yield env.timeout(1.0)

    env.process(sender(), label="tx")
    env.run(until=2.0)
    assert len(got) == 1
    assert isinstance(got[0], BatchEnvelope)
    assert got[0].tuples == [0, 1, 2, 3, 4]
    assert got[0].size == 50
    assert chan_batched.batches_flushed == 1
