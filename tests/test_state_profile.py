"""Tests for the profiling pass (dynamic HAUs, smax/smin, relaxation)."""

import pytest

from repro.state import MIN_RELAXATION, StateProfile, is_dynamic


def test_is_dynamic_classification():
    # min < 0.5 * avg  =>  dynamic
    assert is_dynamic([0, 100, 200, 300])  # min 0 < avg 150 / 2
    assert not is_dynamic([100, 110, 120])  # min 100 > avg 110 / 2
    assert not is_dynamic([])
    assert not is_dynamic([0, 0, 0])  # zero average


def test_profile_finds_dynamic_haus():
    prof = StateProfile(checkpoint_period=10.0)
    for t in range(20):
        prof.observe("sawtooth", float(t), (t % 5) * 100.0)  # min 0
        prof.observe("flat", float(t), 500.0)
    assert prof.dynamic_haus() == ["sawtooth"]


def test_aggregate_series_sums_on_union_of_times():
    prof = StateProfile(checkpoint_period=10.0)
    prof.observe("a", 0.0, 100.0)
    prof.observe("a", 10.0, 200.0)
    prof.observe("b", 5.0, 50.0)
    agg = prof.aggregate_series(["a", "b"])
    times = [t for (t, _s) in agg]
    assert times == [0.0, 5.0, 10.0]
    # at t=5: a interpolates to 150, b is 50
    assert agg[1][1] == pytest.approx(200.0)


def test_profile_result_smax_smin_from_period_minima():
    prof = StateProfile(checkpoint_period=10.0)
    # Period 1 (t 0-10): min 100 at t=5.  Period 2 (t 10-20): min 200 at t=15.
    series = {0: 500, 5: 100, 9: 400, 10: 600, 15: 200, 19: 500}
    for t, s in series.items():
        prof.observe("dyn", float(t), float(s))
        prof.observe("flat", float(t), 1000.0)  # not dynamic
    res = prof.result()
    assert res.dynamic_haus == ["dyn"]
    assert res.smin == pytest.approx(100.0)
    assert res.smax == pytest.approx(200.0)
    assert res.relaxation == pytest.approx(1.0)  # (200-100)/100
    assert len(res.period_minima) == 2


def test_relaxation_factor_bounded_at_20_percent():
    prof = StateProfile(checkpoint_period=10.0)
    # both period minima identical -> alpha would be 0; bounded to 0.2
    for t, s in [(0, 500), (5, 100), (9, 500), (10, 500), (15, 100), (19, 500)]:
        prof.observe("dyn", float(t), float(s))
    res = prof.result()
    assert res.smin == pytest.approx(100.0)
    assert res.smax == pytest.approx(120.0)
    assert res.relaxation == pytest.approx(MIN_RELAXATION)


def test_profile_empty_is_safe():
    prof = StateProfile(checkpoint_period=10.0)
    res = prof.result()
    assert res.smax == 0.0
    assert res.dynamic_haus == []


def test_profile_no_dynamic_haus_gives_zero_threshold():
    prof = StateProfile(checkpoint_period=10.0)
    for t in range(10):
        prof.observe("flat", float(t), 300.0)
    res = prof.result()
    assert res.dynamic_haus == []
    assert res.smax == 0.0
