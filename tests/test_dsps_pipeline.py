"""End-to-end DSPS pipeline tests with a no-op scheme (no checkpointing)."""


from repro.cluster import ClusterSpec
from repro.dsps import (
    CheckpointScheme,
    DSPSRuntime,
    QueryGraph,
    RuntimeConfig,
    StreamApplication,
)
from repro.dsps.operator import (
    Emit,
    Operator,
    SinkOperator,
    SourceOperator,
    StatelessMapOperator,
)
from repro.simulation import Environment


class CountingSource(SourceOperator):
    """Emits integers 0..n-1 at a fixed interval."""

    def __init__(self, n=10, interval=0.1, size=1000, name=""):
        super().__init__(name)
        self.n = n
        self.interval = interval
        self.out_size = size

    def generate(self):
        for i in range(self.n):
            yield (self.interval, Emit(payload=i, size=self.out_size, key=i))


class AddOne(Operator):
    def on_tuple(self, port, tup):
        return [Emit(payload=tup.payload + 1, size=tup.size, key=tup.key)]


def build_runtime(graph, seed=1, workers=4, channel_capacity=64, inbox_capacity=128):
    env = Environment()
    app = StreamApplication(name="test", graph=graph)
    rt = DSPSRuntime(
        env,
        app,
        CheckpointScheme(),
        RuntimeConfig(
            seed=seed,
            cluster=ClusterSpec(workers=workers, spares=1, racks=1),
            channel_capacity=channel_capacity,
            inbox_capacity=inbox_capacity,
        ),
    )
    return env, rt


def chain_app(n=10, keep=True):
    g = QueryGraph()
    sink_holder = {}

    def make_sink():
        s = SinkOperator(keep_payloads=keep)
        sink_holder["op"] = s
        return [s]

    g.add_hau("src", lambda: [CountingSource(n=n)], is_source=True)
    g.add_hau("map", lambda: [AddOne()])
    g.add_hau("sink", make_sink, is_sink=True)
    g.connect("src", "map")
    g.connect("map", "sink")
    return g, sink_holder


def test_chain_delivers_all_tuples_in_order():
    g, holder = chain_app(n=20)
    env, rt = build_runtime(g)
    rt.start()
    env.run(until=60.0)
    sink = holder["op"]
    assert sink.received_count == 20
    assert sink.payload_log == [i + 1 for i in range(20)]


def test_sink_latency_recorded():
    g, _ = chain_app(n=5)
    env, rt = build_runtime(g)
    rt.start()
    env.run(until=30.0)
    assert rt.metrics.throughput() == 5
    lat = rt.metrics.average_latency()
    assert lat > 0.0
    assert lat < 1.0  # small pipeline, small latency


def test_fanout_broadcast_duplicates():
    g = QueryGraph()
    sinks = {}

    def make_sink(name):
        def factory():
            s = SinkOperator(keep_payloads=True)
            sinks[name] = s
            return [s]

        return factory

    g.add_hau("src", lambda: [CountingSource(n=5)], is_source=True)
    g.add_hau("k1", make_sink("k1"), is_sink=True)
    g.add_hau("k2", make_sink("k2"), is_sink=True)
    g.connect("src", "k1")
    g.connect("src", "k2")
    env, rt = build_runtime(g)
    rt.start()
    env.run(until=30.0)
    assert sinks["k1"].received_count == 5
    assert sinks["k2"].received_count == 5


def test_hash_routing_partitions_by_key():
    g = QueryGraph()
    sinks = {}

    def make_sink(name):
        def factory():
            s = SinkOperator(keep_payloads=True)
            sinks[name] = s
            return [s]

        return factory

    g.add_hau("src", lambda: [CountingSource(n=20)], is_source=True)
    g.add_hau("k1", make_sink("k1"), is_sink=True)
    g.add_hau("k2", make_sink("k2"), is_sink=True)
    g.connect("src", "k1", routing="hash")
    g.connect("src", "k2", routing="hash")
    env, rt = build_runtime(g)
    rt.start()
    env.run(until=60.0)
    total = sinks["k1"].received_count + sinks["k2"].received_count
    assert total == 20  # partitioned, not duplicated
    assert sinks["k1"].received_count > 0
    assert sinks["k2"].received_count > 0
    # deterministic partition: same key always to same sink
    assert set(sinks["k1"].payload_log).isdisjoint(sinks["k2"].payload_log)


def test_join_two_sources():
    g = QueryGraph()
    holder = {}

    class Join(Operator):
        state_attrs = ("seen",)

        def __init__(self):
            super().__init__()
            self.seen = []

        def on_tuple(self, port, tup):
            self.seen.append((port, tup.payload))
            return [Emit(payload=(port, tup.payload), size=tup.size)]

    def make_sink():
        s = SinkOperator(keep_payloads=True)
        holder["op"] = s
        return [s]

    g.add_hau("s0", lambda: [CountingSource(n=5)], is_source=True)
    g.add_hau("s1", lambda: [CountingSource(n=5)], is_source=True)
    g.add_hau("j", lambda: [Join()])
    g.add_hau("k", make_sink, is_sink=True)
    g.connect("s0", "j", dst_port=0)
    g.connect("s1", "j", dst_port=1)
    g.connect("j", "k")
    env, rt = build_runtime(g)
    rt.start()
    env.run(until=30.0)
    sink = holder["op"]
    assert sink.received_count == 10
    ports = {p for (p, _v) in sink.payload_log}
    assert ports == {0, 1}


def test_backpressure_blocks_source():
    """A slow sink with tiny buffers must throttle the source."""
    g = QueryGraph()

    class SlowSink(SinkOperator):
        def processing_cost(self, tup):
            return 0.5  # much slower than the source interval

    g.add_hau("src", lambda: [CountingSource(n=100, interval=0.01)], is_source=True)
    g.add_hau("sink", lambda: [SlowSink()], is_sink=True)
    g.connect("src", "sink")
    env, rt = build_runtime(g, channel_capacity=2, inbox_capacity=2)
    rt.start()
    env.run(until=10.0)
    # ~20 tuples at 0.5s each; without backpressure the source would have
    # emitted all 100 by t=1.  Source must still be mid-stream.
    src = rt.haus["src"].source_operator
    assert rt.metrics.throughput() <= 21
    assert src.emitted_count < 100


def test_determinism_same_seed_same_result():
    def run_once():
        g, holder = chain_app(n=15)
        env, rt = build_runtime(g, seed=42)
        rt.start()
        env.run(until=30.0)
        return (
            holder["op"].payload_log,
            rt.metrics.average_latency(),
            rt.metrics.throughput(),
        )

    assert run_once() == run_once()


def test_node_failure_stops_hau_processing():
    g, holder = chain_app(n=100)
    env, rt = build_runtime(g)
    rt.start()

    def killer():
        yield env.timeout(0.55)
        rt.haus["map"].node.fail("test-kill")

    env.process(killer())
    env.run(until=30.0)
    # only the tuples processed before the failure arrive
    assert 0 < holder["op"].received_count < 100


def test_multi_operator_chain_inside_hau():
    g = QueryGraph()
    holder = {}

    def make_sink():
        s = SinkOperator(keep_payloads=True)
        holder["op"] = s
        return [s]

    g.add_hau("src", lambda: [CountingSource(n=5)], is_source=True)
    g.add_hau("chain", lambda: [AddOne(), StatelessMapOperator(lambda x: x * 2)])
    g.add_hau("sink", make_sink, is_sink=True)
    g.connect("src", "chain")
    g.connect("chain", "sink")
    env, rt = build_runtime(g)
    rt.start()
    env.run(until=30.0)
    assert holder["op"].payload_log == [(i + 1) * 2 for i in range(5)]


def test_state_size_aggregates_over_operators():
    g, _ = chain_app(n=3)
    env, rt = build_runtime(g)
    rt.start()
    env.run(until=10.0)
    # sources track emitted_count (8 bytes)
    assert rt.haus["src"].state_size() == 8
    assert rt.total_state_bytes() >= 16
