"""Tests for MS-src+ap+aa: profiling, alert mode, ICR-triggered rounds."""


from repro.cluster import ClusterSpec
from repro.core import MSSrcAPAA
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph
from repro.simulation import Environment

# A pronounced sawtooth: 20 x 500 KB per window (5 s per cycle),
# collapsing at the batch boundary — the profile application-aware
# checkpointing exploits.  The cycle must be slow relative to the
# sampling interval or the turning-point detection lag eats the minimum
# (the paper's dynamics are minute-scale, §II-B2).
SAW = dict(source_count=2000, interval=0.25, window=40, tuple_size=500_000)


def deploy(scheme, seed=7, **graph_kw):
    g, holder = make_chain_graph(**graph_kw)
    env = Environment()
    app = StreamApplication(name="t", graph=g)
    rt = DSPSRuntime(
        env,
        app,
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=6, spares=6, racks=2)),
    )
    rt.start()
    return env, rt, holder


def test_profiling_finds_dynamic_hau():
    scheme = MSSrcAPAA(checkpoint_period=10.0, profile_duration=8.0, sample_interval=0.2)
    env, rt, _ = deploy(scheme, **SAW)
    env.run(until=12.0)
    assert "agg" in scheme.dynamic_haus
    assert "mid" not in scheme.dynamic_haus  # stateless
    assert scheme.profile_result is not None
    assert scheme.profile_result.smax >= scheme.profile_result.smin


def test_rounds_fire_once_per_period():
    scheme = MSSrcAPAA(
        checkpoint_period=8.0, profile_duration=6.0, sample_interval=0.2, max_rounds=3
    )
    env, rt, _ = deploy(scheme, **SAW)
    env.run(until=40.0)
    logs = scheme.checkpoint_logs()
    assert len(logs) == 3
    assert all(log.complete for log in logs)
    assert len(scheme.decisions) == 3


def test_aa_checkpoints_smaller_state_than_fixed_time_ap():
    """The point of the technique: aa's checkpointed dynamic state should be
    well below the sawtooth average that random/fixed timing pays."""
    aa = MSSrcAPAA(
        checkpoint_period=8.0, profile_duration=6.0, sample_interval=0.2, max_rounds=2
    )
    env, _, _ = deploy(aa, **SAW)
    env.run(until=30.0)
    aa_sizes = [
        log.haus["agg"].state_bytes for log in aa.checkpoint_logs() if "agg" in log.haus
    ]
    assert aa_sizes
    # sawtooth peaks at 20 x 500 KB = 10 MB, average ~5 MB; aa should be
    # well under the average at the chosen instants
    assert min(aa_sizes) < 3_000_000


def test_deadline_fallback_when_state_never_low():
    """A flat (never-below-smax) profile must still checkpoint at period end."""
    flat = dict(source_count=2000, interval=0.05, window=100000, tuple_size=100_000)
    scheme = MSSrcAPAA(
        checkpoint_period=5.0, profile_duration=4.0, sample_interval=0.2, max_rounds=1
    )
    env, rt, _ = deploy(scheme, **flat)
    env.run(until=20.0)
    assert len(scheme.decisions) == 1
    assert scheme.decisions[0][1] == "deadline"
    assert scheme.checkpoint_logs()[0].complete


def test_icr_trigger_records_reason():
    scheme = MSSrcAPAA(
        checkpoint_period=10.0, profile_duration=8.0, sample_interval=0.2, max_rounds=2
    )
    env, rt, _ = deploy(scheme, **SAW)
    env.run(until=40.0)
    reasons = {reason for (_t, reason) in scheme.decisions}
    # with a strong sawtooth, at least one round should be ICR-triggered
    assert "icr" in reasons


def test_exactly_once_with_aa_recovery():
    def run(fail=None):
        scheme = MSSrcAPAA(
            checkpoint_period=6.0,
            profile_duration=4.0,
            sample_interval=0.2,
            max_rounds=2,
            enable_recovery=fail is not None,
        )
        env, rt, holder = deploy(scheme, **dict(SAW, source_count=400))
        if fail:
            def killer():
                yield env.timeout(fail[0])
                for h in fail[1]:
                    rt.haus[h].node.fail("injected")

            env.process(killer())
        env.run(until=60.0)
        return holder["sink"].payload_log, scheme

    clean_log, _ = run()
    failed_log, scheme = run(fail=(13.0, ["agg", "mid"]))
    assert len(scheme.recoveries) == 1
    assert failed_log == clean_log
