"""Rack-shard fan-out (repro.harness.shard).

The claims under test: a shardable synth run splits into per-rack
sub-runs whose merged result is (a) byte-identical whether shards run
serially or across a process pool, (b) equal to the unsharded run on
per-HAU tuple totals after a full drain (``seed_base`` keeps every
global source replica on its own RNG stream), and (c) deterministic in
its merged metric/trace streams.  Non-shardable inputs — unequal
replicas, ``pairing: all`` edges, partition events, storage targets —
fail up front with a :class:`ShardingError` naming the offending field.
"""

from __future__ import annotations

import pytest

from repro.failures.injector import FailurePlan, PlannedFailure
from repro.harness.digest import canonical_json
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.shard import (
    ShardingError,
    merge_shards,
    plan_shards,
    run_shard,
    run_sharded,
)


def chain_topology(replicas: int = 4, count: int = 40) -> dict:
    return {
        "stages": [
            {"name": "S", "kind": "source", "replicas": replicas,
             "count": count, "interval": 0.1, "size": 4096},
            {"name": "W", "kind": "map", "replicas": replicas,
             "size": 2048, "state_window": 8},
            {"name": "K", "kind": "sink", "replicas": replicas},
        ],
        "edges": [
            {"src": "S", "dst": "W", "pairing": "aligned"},
            {"src": "W", "dst": "K", "pairing": "aligned"},
        ],
    }


def shardable_config(**overrides) -> ExperimentConfig:
    base = dict(
        app="synth", scheme="none", window=30.0, warmup=5.0, workers=8,
        spares=2, racks=2, seed=3, app_params={"topology": chain_topology()},
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def test_plan_splits_chains_and_cluster():
    plan = plan_shards(shardable_config())
    assert plan.n_shards == 2
    assert plan.spans == ((0, 2), (2, 4))
    for s, task in enumerate(plan.tasks):
        assert task.config.racks == 1
        assert task.config.workers == 4
        topo = task.config.app_params["topology"]
        assert all(stage["replicas"] == 2 for stage in topo["stages"])
        assert all(stage["seed_base"] == plan.spans[s][0] for stage in topo["stages"])
    # local replica j of shard 1 is global replica 2 + j
    assert plan.tasks[1].id_map == {
        "S0": "S2", "S1": "S3", "W0": "W2", "W1": "W3", "K0": "K2", "K1": "K3",
    }


def test_sharded_full_drain_matches_unsharded_per_hau_totals():
    cfg = shardable_config()
    base = run_experiment(cfg)
    base_haus = {
        h: hau.tuples_processed for h, hau in sorted(base.runtime.haus.items())
    }
    out = run_sharded(cfg, jobs=1)
    shard_haus = {h: v["tuples"] for h, v in out["merged"]["haus"].items()}
    assert shard_haus == base_haus
    assert sum(base_haus.values()) > 0  # the drain moved real tuples


def test_serial_and_pooled_shards_byte_identical():
    cfg = shardable_config()
    serial = run_sharded(cfg, jobs=1)
    pooled = run_sharded(cfg, jobs=2)
    assert canonical_json(serial) == canonical_json(pooled)


def test_merged_trace_is_one_sorted_stream():
    out = run_sharded(shardable_config(), jobs=1)
    keys = [
        (ev["t"], ev["shard"], ev["seq"])
        for p in out["shards"]
        for ev in p["trace"]
    ]
    # the merge itself is recomputable from the shard payloads
    merged = merge_shards(out["shards"])
    assert merged == out["merged"]
    assert sorted(keys) == sorted(keys)  # total order exists (no ties needed)
    assert out["merged"]["digest"] == merged["digest"]


def test_rack_isolated_failures_route_to_owning_shard():
    plan = plan_shards(
        shardable_config(),
        FailurePlan(events=[
            PlannedFailure(at=12.0, kind="node", target="w3", cause="t"),
            PlannedFailure(at=15.0, kind="straggler", target="spare0",
                           factor=4.0, duration=2.0, cause="t"),
            PlannedFailure(at=20.0, kind="rack", target="rack1", cause="t"),
        ]),
    )
    # w3 -> rack 3 % 2 == 1, local w1; spare0 -> rack 0, local spare0
    assert [(e.kind, e.target) for e in plan.tasks[0].failures] == [
        ("straggler", "spare0"),
    ]
    assert [(e.kind, e.target) for e in plan.tasks[1].failures] == [
        ("node", "w1"),
        ("rack", "rack0"),
    ]


def test_sharded_run_with_rack_failure_completes_deterministically():
    cfg = shardable_config(scheme="ms-src", n_checkpoints=1)
    fp = FailurePlan(
        events=[PlannedFailure(at=2.0, kind="node", target="w2", cause="t")]
    )
    one = run_sharded(cfg, fp, jobs=1)
    two = run_sharded(cfg, fp, jobs=1)
    assert canonical_json(one) == canonical_json(two)
    # the failure only perturbed its owning shard
    clean = run_sharded(cfg, jobs=1)
    assert one["shards"][1]["digest"] == clean["shards"][1]["digest"]
    assert one["shards"][0]["digest"] != clean["shards"][0]["digest"]


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda t: t["stages"][0].update(replicas=3), "unequal replica"),
        (lambda t: t["edges"][0].pop("pairing"), "pairing 'all'"),
    ],
)
def test_non_shardable_topologies_rejected(mutate, fragment):
    topo = chain_topology()
    mutate(topo)
    with pytest.raises(ShardingError, match=fragment):
        plan_shards(shardable_config(app_params={"topology": topo}))


def test_non_isolated_failure_plans_rejected():
    cfg = shardable_config()
    for event, fragment in [
        (PlannedFailure(at=1.0, kind="partition", target="rack0"), "partition"),
        (PlannedFailure(at=1.0, kind="node", target="storage"), "storage"),
        (PlannedFailure(at=1.0, kind="rack", target="rack9"), "unknown rack"),
    ]:
        with pytest.raises(ShardingError, match=fragment):
            plan_shards(cfg, FailurePlan(events=[event]))


def test_non_synth_apps_rejected():
    with pytest.raises(ShardingError, match="synth"):
        plan_shards(ExperimentConfig(app="tmi", racks=2))


def test_run_shard_payload_uses_global_ids():
    plan = plan_shards(shardable_config())
    payload = run_shard(plan.tasks[1])
    assert set(payload["haus"]) == {"S2", "S3", "W2", "W3", "K2", "K3"}
    assert all(ev["shard"] == 1 for ev in payload["trace"])
