"""Calendar-queue scheduler: order equivalence with the kernel heap.

The determinism digests rest on the calendar queue popping entries in
exactly the binary heap's ``(time, priority, seq)`` total order.  These
tests police that contract three ways: directly on the data structure
with randomized schedules (the property test the ISSUE asks for), on
the structure's edge cases (far-future overflow, adaptive resize,
cursor regression), and end-to-end — a whole experiment digests
identically under ``Environment(scheduler="heap"|"calendar")`` and the
kernel sanitizer's order assertions hold with the calendar active.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest

from repro.harness.digest import result_digest
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.sanitize import kernel as san_kernel
from repro.simulation.calendar import CalendarQueue
from repro.simulation.core import Environment, NORMAL, SimulationError, URGENT


class HeapReference:
    """The kernel's legacy scheduler, verbatim: a plain binary heap."""

    def __init__(self):
        self._heap = []

    def push(self, entry):
        heapq.heappush(self._heap, entry)

    def pop(self, horizon=float("inf")):
        if not self._heap or self._heap[0][0] > horizon:
            return None
        return heapq.heappop(self._heap)

    def peek(self):
        return self._heap[0][0] if self._heap else float("inf")

    def __len__(self):
        return len(self._heap)


def random_schedule(rng: np.random.Generator, ops: int = 4000):
    """An adversarial op stream: clustered times, exact ties, far-future
    spikes, urgent priorities and pop bursts (drains force shrink
    resizes; the spikes force overflow-heap traffic)."""
    seq = 0
    clock = 0.0
    script = []
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.55:
            u = rng.random()
            if u < 0.5:
                delay = float(rng.exponential(0.001))  # dense cluster
            elif u < 0.8:
                delay = float(rng.uniform(0.0, 1.0))
            elif u < 0.9:
                delay = 0.0  # exact tie on the current clock
            else:
                delay = float(rng.uniform(1e3, 1e6))  # far-future overflow
            prio = URGENT if rng.random() < 0.2 else NORMAL
            seq += 1
            script.append(("push", (clock + delay, prio, seq, None)))
        elif roll < 0.85:
            script.append(("pop", None))
        elif roll < 0.95:
            burst = int(rng.integers(1, 40))
            script.extend(("pop", None) for _ in range(burst))
        else:
            # pop bounded by a horizon (run-until semantics)
            script.append(("pop_horizon", clock + float(rng.uniform(0, 0.01))))
        if script[-1][0] == "push":
            clock = max(clock, 0.0)
    return script


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
def test_randomized_schedules_pop_identically(seed):
    rng = np.random.default_rng(seed)
    cal, ref = CalendarQueue(), HeapReference()
    clock = 0.0
    for op, arg in random_schedule(rng):
        if op == "push":
            cal.push(arg)
            ref.push(arg)
        elif op == "pop":
            got, want = cal.pop(), ref.pop()
            assert got == want
            if want is not None:
                clock = want[0]
        else:
            got, want = cal.pop(horizon=arg), ref.pop(horizon=arg)
            assert got == want
        assert len(cal) == len(ref)
        assert cal.peek() == ref.peek()
    # full drain: every remaining entry surfaces in heap order
    while len(ref):
        assert cal.pop() == ref.pop()
    assert cal.pop() is None


def test_equal_times_break_ties_on_priority_then_seq():
    cal = CalendarQueue()
    entries = [
        (1.0, NORMAL, 3, "c"),
        (1.0, URGENT, 4, "d"),
        (1.0, URGENT, 2, "b"),
        (1.0, NORMAL, 1, "a"),
    ]
    for e in entries:
        cal.push(e)
    assert [cal.pop()[3] for _ in range(4)] == ["b", "d", "a", "c"]


def test_far_future_overflow_cascades_in_order():
    cal = CalendarQueue()
    # far beyond the initial year (64 buckets x 1e-3 s): all on the far heap
    far = [(1e6 + i * 0.1, NORMAL, i, i) for i in range(50)]
    near = [(i * 1e-4, NORMAL, 100 + i, 100 + i) for i in range(10)]
    for e in far + near:
        cal.push(e)
    times = [cal.pop()[0] for _ in range(60)]
    assert times == sorted(times)
    assert cal.pop() is None


def test_resize_grow_and_shrink_preserve_order():
    cal = CalendarQueue()
    rng = np.random.default_rng(5)
    # 1000 entries force several doubling resizes (threshold 2x buckets)
    entries = sorted(
        (float(rng.uniform(0, 10)), NORMAL, i, i) for i in range(1000)
    )
    for e in rng.permutation(np.arange(1000)):
        cal.push(entries[int(e)])
    # draining forces shrink resizes (threshold 0.25x buckets)
    assert [cal.pop() for _ in range(1000)] == entries
    assert len(cal) == 0


def test_cursor_regression_after_horizon_scan():
    cal = CalendarQueue()
    cal.push((10.0, NORMAL, 1, "late"))
    # the horizon scan walks the cursor up to the day holding t=10 ...
    assert cal.pop(horizon=5.0) is None
    # ... and a subsequent earlier push must still pop first
    cal.push((3.0, NORMAL, 2, "early"))
    assert cal.pop()[3] == "early"
    assert cal.pop()[3] == "late"


# -- kernel integration ------------------------------------------------------

def _mixed_workload(env):
    done = []

    def ticker(label, delay, n):
        for _ in range(n):
            yield env.timeout(delay)
        done.append((env.now, label))

    for i in range(20):
        env.process(ticker(f"p{i}", 0.01 * (i + 1), 10), label=f"p{i}")
    env.run(until=5.0)
    return done, env.events_popped


def test_environment_scheduler_selection():
    assert Environment(scheduler="heap").scheduler == "heap"
    assert Environment(scheduler="calendar").scheduler == "calendar"
    with pytest.raises(SimulationError):
        Environment(scheduler="wheel")


def test_calendar_environment_matches_heap_environment():
    done_h, popped_h = _mixed_workload(Environment(scheduler="heap"))
    done_c, popped_c = _mixed_workload(Environment(scheduler="calendar"))
    assert done_c == done_h
    assert popped_c == popped_h


def test_whole_run_digest_identical_across_schedulers(monkeypatch):
    import repro.simulation.core as core

    cfg = ExperimentConfig(
        app="tmi", scheme="ms-src+ap", n_checkpoints=2, window=40.0,
        warmup=10.0, workers=8, spares=12, racks=2, seed=1,
        app_params={"n_minutes": 0.25},
    )
    digests = {}
    for sched in ("heap", "calendar"):
        monkeypatch.setattr(core, "_DEFAULT_SCHEDULER", sched)
        digests[sched] = result_digest(run_experiment(cfg))
    assert digests["heap"] == digests["calendar"]


def test_calendar_under_kernel_sanitizer():
    """The PR-8 heap-total-order assertions are the equivalence oracle:
    with the sanitizer armed, any out-of-order pop from the calendar
    raises.  Run the mixed workload with it installed (idempotent if the
    suite itself runs under REPRO_SAN=1) and require heap-equal output."""
    was = san_kernel.installed()
    if not was:
        san_kernel.install()
    try:
        done_c, popped_c = _mixed_workload(Environment(scheduler="calendar"))
        done_h, popped_h = _mixed_workload(Environment(scheduler="heap"))
        assert done_c == done_h
        assert popped_c == popped_h
    finally:
        if not was:
            san_kernel.uninstall()
