"""Tests for the structured tracing layer (repro.observability):
tracer semantics, no-op default, deterministic JSONL export, and
end-to-end checkpoint/recovery timelines."""

import json

import pytest

from repro.cluster import ClusterSpec
from repro.cluster.topology import DataCenter
from repro.core import MSSrc, MSSrcAP
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph
from repro.failures.injector import FailureInjector, FailurePlan, PlannedFailure
from repro.metrics.collectors import MetricsHub
from repro.observability import (
    NULL_TRACER,
    JsonlStreamWriter,
    TraceEvent,
    Tracer,
    dumps_jsonl,
    ensure_tracer,
    event_to_json,
    read_jsonl,
    render_summary,
    summarize,
    write_jsonl,
    write_summary,
)
from repro.simulation import Environment


def deploy(scheme, seed=7, workers=4, spares=6, traced=True, **graph_kw):
    g, holder = make_chain_graph(**graph_kw)
    env = Environment()
    if traced:
        env.enable_tracing()
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=workers, spares=spares, racks=2)),
    )
    rt.start()
    return env, rt, holder


def kill_at(env, rt, when, victims):
    def killer():
        yield env.timeout(when)
        for h in victims:
            rt.haus[h].node.fail("test")

    env.process(killer())


# -- tracer unit behaviour ------------------------------------------------------


def test_tracer_emit_select_counts():
    tr = Tracer()
    tr.emit("token.send", t=1.0, subject="src", round=1, edge="e1")
    tr.emit("token.send", t=1.5, subject="mid", round=1, edge="e2")
    tr.emit("checkpoint.commit", t=2.0, subject="src", round=1, bytes=10)
    assert len(tr) == 3
    assert [e.seq for e in tr] == [1, 2, 3]
    assert tr.counts() == {"checkpoint.commit": 1, "token.send": 2}
    assert [e.subject for e in tr.select(kind="token.send")] == ["src", "mid"]
    assert [e.kind for e in tr.select(subject="src")] == ["token.send", "checkpoint.commit"]
    assert tr.select(prefix="checkpoint.")[0].get("bytes") == 10
    assert tr.select(prefix="checkpoint.")[0].get("missing", 42) == 42


def test_tracer_subscribe_streams_each_event():
    tr = Tracer()
    seen = []
    tr.subscribe(seen.append)
    tr.emit("hau.start", t=0.0, subject="a")
    tr.emit("hau.start", t=0.0, subject="b")
    assert [e.subject for e in seen] == ["a", "b"]


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.emit("anything", t=0.0) is None
    assert NULL_TRACER.events == ()
    with pytest.raises(RuntimeError):
        NULL_TRACER.subscribe(lambda e: None)
    assert ensure_tracer(None) is NULL_TRACER
    tr = Tracer()
    assert ensure_tracer(tr) is tr


def test_jsonl_is_canonical_and_round_trips(tmp_path):
    ev = TraceEvent(seq=1, t=2.5, kind="checkpoint.commit", subject="src",
                    data=(("bytes", 10), ("round", 1)))
    line = event_to_json(ev)
    # canonical: sorted keys, compact separators
    assert line == json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))
    tr = Tracer()
    tr.emit("a.b", t=0.0, subject="x", n=1)
    tr.emit("c.d", t=1.0, subject="y", m=2.5)
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(tr, str(path)) == 2
    back = read_jsonl(str(path))
    assert [r["kind"] for r in back] == ["a.b", "c.d"]
    assert back[1]["data"] == {"m": 2.5}
    assert path.read_text() == dumps_jsonl(tr)


def test_stream_writer_matches_batch_export(tmp_path):
    tr = Tracer()
    path = tmp_path / "stream.jsonl"
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        writer = JsonlStreamWriter(fh)
        tr.subscribe(writer)
        tr.emit("a.b", t=0.0, subject="x", n=1)
        tr.emit("a.b", t=1.0, subject="y", n=2)
    assert writer.written == 2
    assert path.read_text() == dumps_jsonl(tr)


# -- no-op default: untraced runs record nothing -------------------------------


def test_untraced_run_records_no_events():
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(scheme, traced=False)
    env.run(until=10.0)
    assert env.trace is NULL_TRACER
    assert len(env.trace.events) == 0
    # the run itself still checkpointed normally
    assert scheme.checkpoint_logs()[0].complete


def test_metrics_hub_forwards_onto_tracer():
    tr = Tracer()
    hub = MetricsHub(tracer=tr)
    hub.record_event(5.0, "recovery-start", "w3")
    assert hub.events == [(5.0, "recovery-start", "w3")]  # legacy view intact
    assert tr.counts() == {"metrics.recovery-start": 1}
    assert tr.events[0].subject == "w3"
    # without a tracer the hub still works and nothing leaks to NULL_TRACER
    hub2 = MetricsHub()
    hub2.record_event(1.0, "x", "y")
    assert hub2.events == [(1.0, "x", "y")]
    assert len(NULL_TRACER.events) == 0


# -- determinism: same seed => byte-identical JSONL ------------------------------


def run_traced(seed=7):
    scheme = MSSrcAP(checkpoint_times=[1.0, 4.0], enable_recovery=True)
    # a source that outlives the failure instant, so recovery has
    # preserved tuples to replay
    env, rt, _ = deploy(scheme, seed=seed, source_count=400)
    kill_at(env, rt, 6.0, ["agg"])
    env.run(until=25.0)
    return env.trace


def test_same_seed_byte_identical_jsonl():
    a = dumps_jsonl(run_traced())
    b = dumps_jsonl(run_traced())
    assert a == b
    assert a.encode("utf-8") == b.encode("utf-8")
    kinds = {json.loads(line)["kind"] for line in a.splitlines()}
    # the acceptance criterion: checkpoint, token, failure and recovery
    # events are all present in one deterministic trace
    assert "checkpoint.commit" in kinds
    assert "token.send" in kinds and "token.recv" in kinds
    assert "failure.detected" in kinds
    assert "recovery.start" in kinds and "recovery.done" in kinds
    assert "replay.source" in kinds


def test_failure_injector_emits_trace_events():
    env = Environment()
    tr = env.enable_tracing()
    dc = DataCenter(env, ClusterSpec(workers=4, spares=2, racks=2))
    node_id = dc.workers[0].node_id
    rack_id = dc.racks[1].rack_id
    plan = FailurePlan(events=[
        PlannedFailure(at=1.0, kind="node", target=node_id, cause="single"),
        PlannedFailure(at=2.0, kind="rack", target=rack_id, cause="rack-burst"),
    ])
    FailureInjector(env, dc, plan).start()
    env.run(until=5.0)
    injects = tr.select(kind="failure.inject")
    assert [(e.subject, e.get("kind")) for e in injects] == [
        (node_id, "node"),
        (rack_id, "rack"),
    ]
    assert injects[1].get("victims", 0) >= 1


# -- end-to-end: MS-src emits matching token/checkpoint spans per HAU ------------


def test_ms_src_token_and_commit_spans_match_per_hau():
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(scheme)
    env.run(until=10.0)
    tr = env.trace
    haus = sorted(rt.app.graph.haus)
    commits = tr.select(kind="checkpoint.commit")
    # exactly one commit per HAU for round 1
    assert sorted(e.subject for e in commits) == haus
    assert all(e.get("round") == 1 for e in commits)
    assert all(e.get("scheme") == "ms-src" for e in commits)
    # every HAU with out-edges forwarded the cascade token on each out-edge
    sends = tr.select(kind="token.send")
    for hau_id in haus:
        n_out = len(rt.app.graph.out_edges(hau_id))
        hau_sends = [e for e in sends if e.subject == hau_id]
        assert len(hau_sends) == n_out
        # the token leaves only after (or exactly when) the HAU's write began:
        # MS-src forwards inside the synchronous individual checkpoint
        (write_start,) = tr.select(kind="checkpoint.write.start", subject=hau_id)
        for e in hau_sends:
            assert e.t >= write_start.t
    # token receives pair up with sends (every sent token lands downstream)
    recvs = tr.select(kind="token.recv")
    assert len(recvs) == len(sends)
    # the round closes once every HAU committed
    (complete,) = tr.select(kind="checkpoint.round.complete")
    assert complete.get("round") == 1
    assert complete.t >= max(e.t for e in commits)


# -- summary folding -------------------------------------------------------------


def test_summary_checkpoint_timeline_and_recovery_phases():
    tracer = run_traced()
    summary = summarize(tracer)
    assert summary["n_events"] == len(tracer.events)
    rounds = {r["round_id"]: r for r in summary["rounds"]}
    assert 1 in rounds
    r1 = rounds[1]
    assert r1["scheme"] == "ms-src+ap"
    assert r1["completed_at"] is not None
    assert r1["wall_clock"] >= 0.0
    for ent in r1["haus"].values():
        assert ent["commit_at"] is not None
        assert ent["mode"] == "async"
    # recovery timeline: one global rollback with its four phases
    assert len(summary["recoveries"]) == 1
    rec = summary["recoveries"][0]
    assert rec["dead"] == "agg"
    assert rec["completed_at"] is not None
    assert set(rec["phases"]) == {"reload", "disk_io", "deserialize", "reconnect"}
    # the paper's recovery time is the four phases; completed_at also
    # covers the source-replay queuing that follows
    # phase values are per-phase maxima across HAUs, so they sum only
    # approximately to the elapsed recovery time
    assert rec["total"] == pytest.approx(sum(rec["phases"].values()), abs=0.01)
    assert rec["completed_at"] - rec["started_at"] >= rec["total"]
    assert len(rec["haus"]) == len(tracer.select(kind="recovery.hau"))
    assert summary["replays"]["source"] > 0
    # failures observed by the watcher appear on the failure timeline
    assert any(f["kind"] == "failure.detected" for f in summary["failures"])
    # and the renderer shows the important lines
    text = render_summary(summary)
    assert "checkpoint rounds:" in text
    assert "recoveries (global rollback):" in text
    assert "replays:" in text


def test_experiment_harness_trace_roundtrip(tmp_path):
    from repro.harness import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(
        app="tmi", scheme="ms-src", n_checkpoints=1, window=30.0, warmup=10.0,
        workers=6, spares=8, racks=2, seed=3, app_params={"n_minutes": 0.25},
    )
    res = run_experiment(cfg, trace=True)
    assert res.tracer is not None and len(res.tracer.events) > 0
    path = tmp_path / "run.trace.jsonl"
    assert res.write_trace(str(path)) == len(res.tracer.events)
    assert path.read_text() == res.trace_jsonl()
    summary = res.trace_summary()
    assert summary["rounds"] and summary["rounds"][0]["completed_at"] is not None
    assert "checkpoint rounds:" in res.trace_report()
    # untraced runs refuse trace access loudly
    res2 = run_experiment(cfg)
    assert res2.tracer is None
    with pytest.raises(RuntimeError):
        res2.trace_jsonl()


# -- export/summary edge cases: empty traces and single events ------------------


def test_export_empty_trace(tmp_path):
    tr = Tracer()
    assert dumps_jsonl(tr) == ""
    path = tmp_path / "empty.jsonl"
    assert write_jsonl(tr, str(path)) == 0
    assert path.read_text() == ""
    assert read_jsonl(str(path)) == []


def test_export_single_event_roundtrip(tmp_path):
    tr = Tracer()
    tr.emit("hau.start", t=1.5, subject="w0", node="n3")
    text = dumps_jsonl(tr)
    assert text.endswith("\n") and text.count("\n") == 1
    path = tmp_path / "one.jsonl"
    assert write_jsonl(tr, str(path)) == 1
    [parsed] = read_jsonl(str(path))
    assert parsed == json.loads(text)
    assert parsed["kind"] == "hau.start"
    assert parsed["t"] == 1.5
    assert parsed["data"] == {"node": "n3"}


def test_jsonl_stream_writer_empty(tmp_path):
    path = tmp_path / "stream.jsonl"
    tr = Tracer()
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        writer = JsonlStreamWriter(fh)
        tr.subscribe(writer)
    assert writer.written == 0
    assert path.read_text() == ""


def test_summarize_empty_trace():
    summary = summarize(Tracer())
    assert summary["n_events"] == 0
    assert summary["span"] == [0.0, 0.0]
    assert summary["counts"] == {}
    assert summary["rounds"] == []
    assert summary["recoveries"] == []
    report = render_summary(summary)
    assert "0 events" in report
    # no optional sections appear for an empty trace
    assert "checkpoint rounds:" not in report
    assert "recoveries" not in report


def test_summarize_single_event():
    tr = Tracer()
    tr.emit("checkpoint.round.start", t=3.0, subject="ms-src", round=1)
    summary = summarize(tr)
    assert summary["n_events"] == 1
    assert summary["span"] == [3.0, 3.0]
    assert summary["counts"] == {"checkpoint.round.start": 1}
    [entry] = summary["rounds"]
    assert entry["round_id"] == 1
    assert entry["started_at"] == 3.0
    assert entry["completed_at"] is None
    report = render_summary(summary)
    assert "round 1 [ms-src] incomplete" in report


def test_write_summary_of_empty_trace_is_deterministic(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_summary(summarize(Tracer()), str(a))
    write_summary(summarize(Tracer()), str(b))
    assert a.read_bytes() == b.read_bytes()
    assert json.loads(a.read_text())["n_events"] == 0
