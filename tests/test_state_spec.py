"""Tests for state-size hints and the sampling estimator."""

from dataclasses import dataclass

from repro.state import StateHint, estimate_state_size, nominal_size


@dataclass
class Blob:
    nominal_size: int = 100


class FakeOp:
    state_attrs = ("data", "tbl", "counter")
    state_hints = {}

    def __init__(self):
        self.data = [Blob(100) for _ in range(10)]
        self.tbl = {i: Blob(50) for i in range(4)}
        self.counter = 7


def test_nominal_size_explicit_attribute():
    assert nominal_size(Blob(123)) == 123


def test_nominal_size_builtin_types():
    assert nominal_size(b"abcd") == 4
    assert nominal_size("hello") == 5
    assert nominal_size(3) == 8
    assert nominal_size([Blob(10), Blob(20)]) == 30
    assert nominal_size({"a": Blob(5)}) == 5


def test_estimate_homogeneous_list_is_exact():
    op = FakeOp()
    est = estimate_state_size(op)
    # 10*100 + 4*50 + 8 (int)
    assert est == 1000 + 200 + 8


def test_estimate_with_element_size_hint():
    class Op(FakeOp):
        state_hints = {"tbl": StateHint(element_size=1024)}

    op = Op()
    est = estimate_state_size(op)
    assert est == 1000 + 4 * 1024 + 8


def test_estimate_with_length_fn_hint():
    class Custom:
        def __init__(self):
            self.count = 5
            self.elem = 200

    class Op:
        state_attrs = ("idx",)
        state_hints = {
            "idx": StateHint(
                length_fn=lambda v: v.count,
                element_size_fn=lambda v: v.elem,
            )
        }

        def __init__(self):
            self.idx = Custom()

    assert estimate_state_size(Op()) == 1000


def test_estimate_empty_containers_zero():
    class Op:
        state_attrs = ("data",)
        state_hints = {}

        def __init__(self):
            self.data = []

    assert estimate_state_size(Op()) == 0


def test_estimate_none_attribute_skipped():
    class Op:
        state_attrs = ("maybe",)
        state_hints = {}

        def __init__(self):
            self.maybe = None

    assert estimate_state_size(Op()) == 0


def test_estimate_sampling_heterogeneous_within_bounds():
    class Op:
        state_attrs = ("data",)
        state_hints = {}

        def __init__(self):
            # sizes ramp from 0 to 99: true total = 4950*10
            self.data = [Blob(i * 10) for i in range(100)]

    est = estimate_state_size(Op())
    true = sum(i * 10 for i in range(100))
    # sampled first/middle/last: (0 + 500 + 990)/3 * 100
    assert est == int(100 * (0 + 500 + 990) / 3)
    assert 0.5 * true < est < 1.5 * true


def test_estimate_string_and_bytes_state():
    class Op:
        state_attrs = ("buf", "label")
        state_hints = {}

        def __init__(self):
            self.buf = bytearray(256)
            self.label = "xyz"

    assert estimate_state_size(Op()) == 259
