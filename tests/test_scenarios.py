"""Tests for the scenario DSL (repro.scenarios): schema validation with
actionable errors, document → cell compilation (including cache-key
stability), the degradation failure kinds end-to-end, the checked-in
example library against its digest goldens, and the seeded campaign's
byte-determinism contract."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.failures.injector import FailurePlan, PlannedFailure
from repro.harness.digest import result_digest, run_experiment
from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import cell_key, run_cells
from repro.scenarios import (
    ScenarioValidationError,
    check_expectations,
    compile_scenario,
    fuzz_documents,
    load_path,
    load_text,
    scenario_paths,
    validate,
)
from repro.scenarios.campaign import main as campaign_main
from repro.scenarios.goldens import golden_status, load_goldens, write_goldens
from repro.scenarios.loader import ScenarioParseError

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples" / "scenarios"


def minimal_doc(**overrides):
    doc = {
        "id": "unit-minimal",
        "version": 1,
        "app": {"name": "tmi", "params": {"n_minutes": 0.25}},
        "scheme": "ms-src+ap",
    }
    doc.update(overrides)
    return doc


# A tiny synthetic scenario that simulates in well under a second.
def tiny_synth_doc(**overrides):
    doc = {
        "id": "unit-tiny-synth",
        "version": 1,
        "app": {
            "name": "synth",
            "params": {
                "topology": {
                    "stages": [
                        {"name": "s", "kind": "source", "replicas": 2, "interval": 0.5},
                        {"name": "m", "kind": "map", "replicas": 2, "state_window": 8},
                        {"name": "k", "kind": "sink", "replicas": 1},
                    ],
                    "edges": [
                        {"src": "s", "dst": "m", "routing": "hash", "pairing": "all"},
                        {"src": "m", "dst": "k"},
                    ],
                }
            },
        },
        "scheme": "ms-src",
        "cluster": {"workers": 4, "spares": 2, "racks": 2},
        "run": {"window": 8.0, "warmup": 2.0, "n_checkpoints": 1, "recovery": False},
    }
    doc.update(overrides)
    return doc


# ---------------------------------------------------------------------------
# schema validation: every error is path-scoped and actionable
# ---------------------------------------------------------------------------


def test_minimal_doc_is_valid():
    assert validate(minimal_doc()) == []


def test_missing_required_fields_all_reported():
    errors = validate({})
    paths = {e.path for e in errors}
    assert {"id", "version", "app", "scheme"} <= paths


def test_unknown_field_names_the_allowed_set():
    errors = validate(minimal_doc(retries=3))
    [err] = errors
    assert err.path == "retries"
    assert "allowed:" in err.message and "failures" in err.message


def test_bad_failure_rows_are_path_scoped():
    doc = minimal_doc(failures=[
        {"at": 5.0, "kind": "meteor", "target": "w0"},
        {"at": -1.0, "kind": "node", "target": "w99"},
        {"at": 5.0, "kind": "node", "target": "w0", "duration": 4.0},
    ])
    errors = {e.path: e.message for e in validate(doc)}
    assert "choose from node, rack, partition, straggler" in errors["failures[0].kind"]
    assert "failures[1].at" in errors
    assert "w0..w7" in errors["failures[1].target"]  # names the valid range
    assert "permanent kill" in errors["failures[2].duration"]


def test_rack_targets_checked_against_cluster_shape():
    doc = minimal_doc(
        cluster={"workers": 4, "spares": 2, "racks": 3},
        failures=[{"at": 5.0, "kind": "partition", "target": "rack3"}],
    )
    [err] = validate(doc)
    assert err.path == "failures[0].target"
    assert "rack0..rack2" in err.message


def test_oracle_scheme_rejected_with_pointer():
    [err] = validate(minimal_doc(scheme="oracle"))
    assert err.path == "scheme"
    assert "oracle" in err.message and "harness" in err.message


def test_bad_synth_topology_reported_at_schema_time():
    doc = tiny_synth_doc()
    doc["app"]["params"]["topology"]["edges"].append({"src": "k", "dst": "nope"})
    errors = validate(doc)
    assert errors
    assert all(e.path == "app.params.topology" for e in errors)


def test_check_raises_with_every_error():
    with pytest.raises(ScenarioValidationError) as exc_info:
        compile_scenario({"id": "Bad Slug!", "version": 2}, source="unit.yaml")
    message = str(exc_info.value)
    assert "unit.yaml" in message
    assert "id:" in message and "version:" in message


# ---------------------------------------------------------------------------
# loader
# ---------------------------------------------------------------------------


def test_load_text_yaml_and_parse_error():
    doc = load_text("id: x\nversion: 1\n")
    assert doc == {"id": "x", "version": 1}
    with pytest.raises(ScenarioParseError):
        load_text("id: [unclosed", source="bad.yaml")


def test_load_path_json(tmp_path):
    p = tmp_path / "s.json"
    p.write_text(json.dumps(minimal_doc()), encoding="utf-8")
    assert load_path(p)["id"] == "unit-minimal"
    p.write_text("{broken", encoding="utf-8")
    with pytest.raises(ScenarioParseError):
        load_path(p)


def test_scenario_paths_excludes_goldens(tmp_path):
    (tmp_path / "a.yaml").write_text("id: a\n", encoding="utf-8")
    (tmp_path / "GOLDENS.json").write_text("{}", encoding="utf-8")
    (tmp_path / "notes.txt").write_text("", encoding="utf-8")
    assert [p.name for p in scenario_paths(tmp_path)] == ["a.yaml"]


# ---------------------------------------------------------------------------
# compiler: defaults, failure lowering, cache-key stability
# ---------------------------------------------------------------------------


def test_compile_applies_harness_defaults():
    spec = compile_scenario(minimal_doc()).spec
    cfg = spec.config
    assert (cfg.workers, cfg.spares, cfg.racks) == (8, 12, 2)
    assert (cfg.window, cfg.warmup, cfg.n_checkpoints) == (40.0, 10.0, 2)
    assert cfg.seed == 1 and cfg.enable_recovery is False
    assert spec.failure_trace is None


def test_compile_lowers_failures_with_kind_defaults():
    doc = minimal_doc(failures=[
        {"at": 20.0, "kind": "partition", "target": "rack1"},
        {"at": 15.0, "kind": "node", "target": "w3"},
    ])
    trace = compile_scenario(doc).spec.failure_trace
    assert [e.kind for e in trace] == ["node", "partition"]  # sorted by time
    node, partition = trace
    assert node.duration == 0.0 and node.factor == 1.0
    assert partition.duration == 6.0 and partition.factor == 200.0
    assert all(e.cause == "scenario" for e in trace)


def test_failure_listing_order_never_changes_the_cell_key():
    rows = [
        {"at": 20.0, "kind": "straggler", "target": "w1", "duration": 4.0, "factor": 5.0},
        {"at": 20.0, "kind": "node", "target": "w0"},
    ]
    a = compile_scenario(minimal_doc(failures=rows)).spec
    b = compile_scenario(minimal_doc(failures=list(reversed(rows)))).spec
    assert a == b
    assert cell_key(a) == cell_key(b)


def test_check_expectations_reports_each_miss():
    doc = minimal_doc(expect={"min_rounds": 2, "recovers": True, "min_throughput": 500})
    payload = {"rounds_completed": 1, "recovery": None, "throughput": 400}
    problems = check_expectations(doc, payload)
    assert len(problems) == 3
    assert any("checkpoint round" in p for p in problems)
    assert any("did not recover" in p for p in problems)
    assert any("throughput" in p for p in problems)
    good = {"rounds_completed": 2, "recovery": {"total": 1.0}, "throughput": 600}
    assert check_expectations(doc, good) == []


# ---------------------------------------------------------------------------
# degradation kinds end-to-end: perturb the run, then heal cleanly
# ---------------------------------------------------------------------------


def test_partition_and_straggler_perturb_then_restore():
    cfg = ExperimentConfig(
        app="synth", scheme="none", n_checkpoints=0, window=8.0, warmup=2.0,
        workers=4, spares=2, racks=2, seed=3,
        app_params=tiny_synth_doc()["app"]["params"],
    )
    clean = run_experiment(cfg, trace=True)
    plan = FailurePlan(events=[
        PlannedFailure(at=4.0, kind="partition", target="rack1",
                       duration=2.0, factor=100.0),
        PlannedFailure(at=5.0, kind="straggler", target="w1",
                       duration=2.0, factor=10.0),
    ])
    degraded = run_experiment(cfg, failure_plan=plan, trace=True)
    assert result_digest(degraded) != result_digest(clean)
    kinds = [e.kind for e in degraded.tracer.events if e.kind.startswith("failure.")]
    assert kinds.count("failure.inject") == 2
    assert kinds.count("failure.restore") == 2
    # after both restores the hardware is back at clean-run speeds
    node_clean = clean.runtime.dc.node("w1")
    node_degraded = degraded.runtime.dc.node("w1")
    assert node_degraded.nic_out.bandwidth == node_clean.nic_out.bandwidth
    assert node_degraded.disk.bandwidth == node_clean.disk.bandwidth


# ---------------------------------------------------------------------------
# example library: validates, and digests reproduce the committed goldens
# ---------------------------------------------------------------------------


def test_every_example_scenario_validates():
    paths = scenario_paths(EXAMPLES)
    assert len(paths) >= 6
    for path in paths:
        assert validate(load_path(path)) == [], f"{path} failed validation"


def test_every_example_scenario_has_a_golden():
    goldens = load_goldens()
    ids = {load_path(p)["id"] for p in scenario_paths(EXAMPLES)}
    assert ids == set(goldens["digests"])


def test_example_round_trip_reproduces_golden(tmp_path):
    goldens = load_goldens()
    scn = compile_scenario(load_path(EXAMPLES / "single-node-kill.yaml"))
    [payload] = run_cells([scn.spec], jobs=1, cache_dir=tmp_path / "cache")
    status = golden_status(goldens, scn.scenario_id, payload["digest"])
    if status == "env-skip":
        pytest.skip("goldens recorded under a different python/numpy build")
    assert status == "ok"
    assert payload["recovery"] is not None  # the scenario's expectation holds


def test_goldens_write_and_status_transitions(tmp_path):
    path = tmp_path / "GOLDENS.json"
    write_goldens({"a": "deadbeef"}, path)
    goldens = load_goldens(path)
    assert golden_status(goldens, "a", "deadbeef") == "ok"
    assert golden_status(goldens, "a", "cafe") == "MISMATCH"
    assert golden_status(goldens, "b", "cafe") == "new"
    assert golden_status(load_goldens(tmp_path / "missing.json"), "a", "x") == "env-skip"


# ---------------------------------------------------------------------------
# fuzzer: valid by construction, deterministic in the seed
# ---------------------------------------------------------------------------


def test_fuzz_documents_deterministic_and_valid():
    a = fuzz_documents(seed=42, count=8)
    b = fuzz_documents(seed=42, count=8)
    assert a == b
    assert [d["id"] for d in a] == [f"fuzz-42-{i:03d}" for i in range(8)]
    for doc in a:
        assert validate(doc) == []
        compile_scenario(doc)  # lowering must succeed too
    assert fuzz_documents(seed=43, count=8) != a


def test_fuzzed_kills_always_enable_recovery():
    for doc in fuzz_documents(seed=9, count=12):
        kills = any(f["kind"] in ("node", "rack") for f in doc.get("failures", []))
        if kills:
            assert doc["run"]["recovery"] is True


# ---------------------------------------------------------------------------
# campaign runner: byte-determinism and gating
# ---------------------------------------------------------------------------


def test_campaign_same_seed_byte_deterministic(tmp_path, capsys):
    args = ["--seed", "11", "--count", "2", "--skip-examples",
            "--cache-dir", str(tmp_path / "cache")]
    assert campaign_main(args + ["--output", str(tmp_path / "r1.json")]) == 0
    out1 = capsys.readouterr().out
    assert campaign_main(args + ["--output", str(tmp_path / "r2.json")]) == 0
    out2 = capsys.readouterr().out
    r1 = (tmp_path / "r1.json").read_bytes()
    r2 = (tmp_path / "r2.json").read_bytes()
    assert r1 == r2  # cold vs warm cache: reports are byte-identical
    assert out1 == out2  # stdout too (cache stats go to stderr)
    report = json.loads(r1)
    assert report["summary"]["total"] == 2
    assert {r["source"] for r in report["scenarios"]} == {"fuzz"}


def test_campaign_expectation_failure_gates(tmp_path, capsys):
    doc = tiny_synth_doc(expect={"min_throughput": 10**9})
    examples = tmp_path / "scenarios"
    examples.mkdir()
    (examples / "tiny.json").write_text(json.dumps(doc), encoding="utf-8")
    args = ["--seed", "1", "--count", "0",
            "--examples-dir", str(examples),
            "--goldens", str(examples / "GOLDENS.json"),
            "--cache-dir", str(tmp_path / "cache")]
    assert campaign_main(args) == 1
    out = capsys.readouterr().out
    assert "expect: expected throughput >= 1000000000" in out
    # the same failure is warn-only under --warn-only (the nightly mode)
    assert campaign_main(args + ["--warn-only"]) == 0


def test_campaign_rejects_invalid_checked_in_scenario(tmp_path, capsys):
    examples = tmp_path / "scenarios"
    examples.mkdir()
    (examples / "bad.yaml").write_text("id: Bad!\n", encoding="utf-8")
    code = campaign_main(["--count", "0", "--examples-dir", str(examples),
                          "--cache-dir", str(tmp_path / "cache")])
    assert code == 2
    assert "schema error" in capsys.readouterr().err
