"""Determinism digests: run-twice, serial-vs-parallel, and the golden
baseline that pins the kernel fast paths to the pre-optimisation engine.

These are the committed assertions behind the PR's "bit-identical"
claim: the digest covers every per-HAU tuple count, checkpoint-round
timeline and recovery breakdown, so any event-order perturbation in the
kernel shows up as a digest mismatch here.
"""

import json
from pathlib import Path

import pytest

from repro.harness.digest import (
    canonical_cases,
    canonical_json,
    combined_digest,
    environment_fingerprint,
    fingerprint_digest,
    result_digest,
    result_fingerprint,
)
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.sweep import CellSpec, run_cells

BASELINE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "DIGEST_baseline.json"

SMALL = dict(window=20.0, warmup=5.0, workers=6, spares=8, racks=2, seed=3)


def small_config(scheme="ms-src", n=1, **over):
    kwargs = dict(SMALL)
    kwargs.update(over)
    return ExperimentConfig(
        app="tmi", scheme=scheme, n_checkpoints=n,
        app_params={"n_minutes": 0.25}, **kwargs,
    )


def test_same_config_twice_is_bit_identical():
    cfg = small_config()
    first = run_experiment(cfg)
    second = run_experiment(cfg)
    assert result_fingerprint(first) == result_fingerprint(second)
    assert result_digest(first) == result_digest(second)


def test_different_seed_changes_digest():
    """The digest actually discriminates — it is not a constant."""
    a = result_digest(run_experiment(small_config(seed=3)))
    b = result_digest(run_experiment(small_config(seed=4)))
    assert a != b


def test_serial_and_parallel_sweeps_are_identical(tmp_path):
    """jobs=1 in-process and jobs=2 subprocess fan-out must agree byte
    for byte — per-cell digests and full payloads."""
    specs = [
        CellSpec(config=small_config(scheme="baseline", n=1)),
        CellSpec(config=small_config(scheme="ms-src", n=1)),
        CellSpec(config=small_config(scheme="ms-src+ap", n=2)),
    ]
    serial = run_cells(specs, jobs=1, use_cache=False)
    parallel = run_cells(specs, jobs=2, use_cache=False)
    assert serial == parallel
    assert [p["digest"] for p in serial] == [p["digest"] for p in parallel]
    # the engine's own work is deterministic too
    assert [p["kernel"]["events_popped"] for p in serial] == [
        p["kernel"]["events_popped"] for p in parallel
    ]


def test_canonical_json_is_stable():
    obj = {"b": 1, "a": [1.5, {"z": None, "y": "x"}]}
    assert canonical_json(obj) == canonical_json(json.loads(canonical_json(obj)))


def test_golden_digest_baseline():
    """Recompute one canonical case against the committed pre-PR digests.

    The baseline was produced by the *seed* (pre-fast-path) kernel, so
    this test is the committed proof that the free lists, kick pooling
    and store fast paths did not perturb the event order.  Skipped on
    hosts whose float environment differs from the recorded one.
    """
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline["environment"] != environment_fingerprint():
        pytest.skip("digest baseline was recorded under a different environment")
    cases = canonical_cases()
    name = "tmi/baseline@2"  # one case keeps the test cheap; CI runs all four
    cfg, kwargs = cases[name]
    got = result_digest(run_experiment(cfg, **kwargs))
    assert got == baseline["digests"][name], (
        f"digest for {name} drifted from the pre-fast-path baseline; "
        "the kernel changed the event order (or the model changed — if "
        "intentional, regenerate with `python -m repro.harness.digest --write`)"
    )


def test_combined_digest_is_order_sensitive():
    assert combined_digest(["a", "b"]) != combined_digest(["b", "a"])


def test_fingerprint_digest_round_trips_through_json():
    cfg = small_config()
    fp = result_fingerprint(run_experiment(cfg))
    assert fingerprint_digest(fp) == fingerprint_digest(json.loads(canonical_json(fp)))
