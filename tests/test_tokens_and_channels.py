"""Tests for token semantics on the wire: head-of-queue insertion,
stream boundaries in the inbox, and pre-token backlog extraction."""

import pytest

from repro.cluster import Channel, ClusterSpec
from repro.dsps import (
    CheckpointScheme,
    DSPSRuntime,
    QueryGraph,
    RuntimeConfig,
    StreamApplication,
)
from repro.dsps.testing import IntervalSource, PassThrough, VerifySink
from repro.dsps.tuples import TOKEN_SIZE, DataTuple, Token, is_token
from repro.simulation import Environment
from repro.cluster.node import Node


def test_token_dataclass_identity():
    a = Token(round_id=1, origin="x", kind="one_hop")
    b = Token(round_id=1, origin="x", kind="one_hop")
    assert a == b
    assert a.size == TOKEN_SIZE
    assert is_token(a)
    assert not is_token(DataTuple(payload=1, size=10))


def test_send_front_overtakes_queued_data():
    env = Environment()
    a = Node(env, "a", nic_bw=1_000_000.0)
    b = Node(env, "b")
    chan = Channel(env, a, b, latency=0.0, capacity=10)
    got = []

    def receiver():
        for _ in range(4):
            msg = yield chan.recv()
            got.append(msg.payload)

    for i in range(3):
        chan.send(f"d{i}", size=100_000)  # each takes 0.1s on the NIC
    chan.send_front("TOKEN", size=64)
    env.process(receiver())
    env.run()
    # d0 may already be in the NIC when the token is inserted, but the
    # token must precede every *queued* tuple
    assert got.index("TOKEN") <= 1
    assert got.index("TOKEN") < got.index("d1")


def test_send_front_on_closed_channel_raises():
    from repro.cluster import ChannelClosedError

    env = Environment()
    a = Node(env, "a")
    b = Node(env, "b")
    chan = Channel(env, a, b)
    b.fail()
    with pytest.raises(ChannelClosedError):
        chan.send_front("t", 64)


def _tiny_runtime():
    g = QueryGraph()
    g.add_hau("src", lambda: [IntervalSource(count=5, interval=0.1)], is_source=True)
    g.add_hau("mid", lambda: [PassThrough()])
    g.add_hau("sink", lambda: [VerifySink()], is_sink=True)
    g.connect("src", "mid")
    g.connect("mid", "sink")
    env = Environment()
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        CheckpointScheme(),
        RuntimeConfig(seed=1, cluster=ClusterSpec(workers=3, spares=1, racks=1)),
    )
    rt.start()
    return env, rt


def test_pre_token_backlog_splits_at_token():
    env, rt = _tiny_runtime()
    hau = rt.haus["mid"]
    # hand-build an inbox: two pre-token tuples, the token, one post-token
    hau.pause_intake()
    env.run(until=0.01)
    hau.inbox.put((0, DataTuple(payload="pre1", size=10, seq=101)))
    hau.inbox.put((0, DataTuple(payload="pre2", size=10, seq=102)))
    hau.inbox.put((0, Token(round_id=7, kind="one_hop")))
    hau.inbox.put((0, DataTuple(payload="post", size=10, seq=103)))
    backlog = hau.pre_token_backlog(round_id=7)
    payloads = [t.payload for (_e, t) in backlog]
    assert payloads == ["pre1", "pre2"]


def test_pre_token_backlog_skips_blocked_edges():
    env, rt = _tiny_runtime()
    hau = rt.haus["mid"]
    hau.pause_intake()
    env.run(until=0.01)
    hau.block_edge(0)
    hau.inbox.put((0, DataTuple(payload="held", size=10, seq=50)))
    assert hau.pre_token_backlog(round_id=1) == []


def test_checkpoint_payload_accounts_saved_tuples():
    env, rt = _tiny_runtime()
    hau = rt.haus["mid"]
    hau.pause_intake()
    env.run(until=0.01)
    hau.inbox.put((0, DataTuple(payload="pre", size=111, seq=1)))
    hau.inbox.put((0, Token(round_id=3, kind="one_hop")))
    extra = [("mid[0]->sink[0]", DataTuple(payload="copy", size=222, seq=9))]
    payload = hau.build_checkpoint_payload(3, extra_out=extra)
    assert len(payload["backlog"]) == 1
    assert len(payload["out_tuples"]) == 1
    base = hau.state_size()
    assert payload["state_size"] == base + 111 + 222


def test_unblock_drains_holdback_in_order():
    env, rt = _tiny_runtime()
    hau = rt.haus["mid"]
    hau.block_edge(0)
    hau.holdback[0].extend(
        [DataTuple(payload=i, size=1, seq=i) for i in (1, 2, 3)]
    )
    drained = hau.unblock_all_edges()
    assert [t.payload for (_e, t) in drained] == [1, 2, 3]
    assert not hau.blocked_edges
    assert not hau.holdback
