"""Tests for the runtime telemetry subsystem (repro.telemetry):
P² quantile accuracy, registry semantics, the no-op default, per-HAU
sampling, deterministic JSON snapshots, Prometheus export, and the
report CLI."""

import json
import random  # repro-lint: disable=DET002 — seeded local Random instances only, no global state

import pytest

from repro.cluster import ClusterSpec
from repro.core import MSSrc, MSSrcAP
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph
from repro.simulation import Environment
from repro.telemetry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    P2Quantile,
    Sampler,
    dumps_snapshot,
    ensure_registry,
    exact_percentile,
    read_snapshot,
    snapshot,
    to_prometheus,
    write_snapshot,
)
from repro.telemetry.report import main as report_main
from repro.telemetry.report import render_snapshot


def deploy(scheme, seed=7, workers=4, spares=6, telemetry=True, **graph_kw):
    g, holder = make_chain_graph(**graph_kw)
    env = Environment()
    if telemetry:
        env.enable_telemetry()
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=workers, spares=spares, racks=2)),
    )
    rt.start()
    return env, rt, holder


# -- exact percentile ----------------------------------------------------------


def test_exact_percentile_basics():
    assert exact_percentile([], 0.5) == 0.0
    assert exact_percentile([3.0], 0.99) == 3.0
    vals = [1.0, 2.0, 3.0, 4.0]
    assert exact_percentile(vals, 0.0) == 1.0
    assert exact_percentile(vals, 1.0) == 4.0
    assert exact_percentile(vals, 0.5) == pytest.approx(2.5)


def test_exact_percentile_rejects_bad_fraction():
    with pytest.raises(ValueError):
        exact_percentile([1.0], 1.5)
    with pytest.raises(ValueError):
        exact_percentile([1.0], -0.1)


# -- the P² estimator ----------------------------------------------------------


def test_p2_rejects_degenerate_fractions():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_p2_empty_and_small_samples_are_exact():
    est = P2Quantile(0.5)
    assert est.value() == 0.0
    for x in [5.0, 1.0, 3.0]:
        est.observe(x)
    assert est.value() == pytest.approx(exact_percentile([1.0, 3.0, 5.0], 0.5))


@pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
def test_p2_within_5pct_of_exact_on_10k_samples(p):
    """Acceptance criterion: P² within 5% of the exact sorted percentile."""
    rng = random.Random(1234)
    samples = [rng.lognormvariate(0.0, 0.5) for _ in range(10_000)]
    est = P2Quantile(p)
    for x in samples:
        est.observe(x)
    exact = exact_percentile(sorted(samples), p)
    assert est.value() == pytest.approx(exact, rel=0.05)


def test_p2_is_deterministic():
    rng = random.Random(7)
    samples = [rng.random() for _ in range(500)]
    a, b = P2Quantile(0.95), P2Quantile(0.95)
    for x in samples:
        a.observe(x)
        b.observe(x)
    assert a.value() == b.value()


# -- registry semantics --------------------------------------------------------


def test_registry_get_or_create_and_labels_canonical():
    reg = MetricRegistry()
    c1 = reg.counter("ms_x_total", app="tmi", scheme="ms-src")
    c2 = reg.counter("ms_x_total", scheme="ms-src", app="tmi")  # order-insensitive
    assert c1 is c2
    c1.inc(3)
    assert c2.value == 3.0
    assert len(reg) == 1


def test_registry_kind_mismatch_raises():
    reg = MetricRegistry()
    reg.counter("ms_x_total")
    with pytest.raises(TypeError):
        reg.gauge("ms_x_total")


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1.0)


def test_gauge_set_inc_dec():
    g = Gauge("g")
    g.set(5.0)
    g.inc(2.0)
    g.dec(3.0)
    assert g.value == 4.0


def test_histogram_streams_quantiles():
    h = Histogram("h")
    for i in range(1, 101):
        h.observe(float(i))
    assert h.count == 100
    assert h.min == 1.0 and h.max == 100.0
    assert h.mean == pytest.approx(50.5)
    q = h.quantiles()
    assert set(q) == {"p50", "p95", "p99"}
    assert q["p50"] == pytest.approx(50.0, rel=0.1)
    with pytest.raises(KeyError):
        h.percentile(0.25)


def test_registry_metrics_sorted_and_select():
    reg = MetricRegistry()
    reg.counter("ms_b_total")
    reg.gauge("ms_a_bytes", hau="B")
    reg.gauge("ms_a_bytes", hau="A")
    names = [(m.name, m.labels) for m in reg.metrics()]
    assert names == sorted(names)
    assert [m.labels for m in reg.select("ms_a_")] == [
        (("hau", "A"),),
        (("hau", "B"),),
    ]
    assert reg.get("ms_b_total") is not None
    assert reg.get("ms_missing") is None
    assert len(reg) == 3  # get() never creates


def test_null_registry_is_free_and_shared():
    assert not NULL_REGISTRY.enabled
    m = NULL_REGISTRY.counter("anything", hau="x")
    assert m is NULL_REGISTRY.histogram("other")
    m.inc()
    m.observe(3.0)
    m.set(1.0)
    assert m.value == 0.0
    assert NULL_REGISTRY.metrics() == []
    assert len(NULL_REGISTRY) == 0
    assert ensure_registry(None) is NULL_REGISTRY
    reg = MetricRegistry()
    assert ensure_registry(reg) is reg


def test_env_telemetry_defaults_to_null():
    env = Environment()
    assert env.telemetry is NULL_REGISTRY
    reg = env.enable_telemetry()
    assert env.telemetry is reg and reg.enabled
    mine = MetricRegistry()
    assert env.enable_telemetry(mine) is mine


# -- instrumented runtime ------------------------------------------------------


def test_runtime_populates_metrics():
    env, rt, _ = deploy(MSSrc(checkpoint_times=[3.0]), source_count=60)
    rt.run(until=10.0)
    reg = env.telemetry
    tuples = reg.get("ms_hau_tuples_total", hau="agg")
    assert tuples is not None and tuples.value > 0
    lat = reg.get("ms_hau_tuple_latency_seconds", hau="sink")
    assert lat is not None and lat.count > 0
    assert reg.get("ms_checkpoint_rounds_total", scheme="ms-src").value == 1.0
    sent = reg.get("ms_hau_tokens_sent_total", hau="src")
    recv = reg.get("ms_hau_tokens_received_total", hau="agg")
    assert sent is not None and sent.value >= 1.0
    assert recv is not None and recv.value >= 1.0
    wr = reg.get("ms_storage_bytes_written_total", namespace="ckpt")
    assert wr is not None and wr.value > 0


def test_runtime_without_telemetry_registers_nothing():
    env, rt, _ = deploy(MSSrc(checkpoint_times=[3.0]), telemetry=False, source_count=40)
    rt.run(until=8.0)
    assert env.telemetry is NULL_REGISTRY
    assert env.telemetry.metrics() == []


# -- the sampler ---------------------------------------------------------------


def test_sampler_records_per_hau_series():
    env, rt, _ = deploy(MSSrcAP(checkpoint_times=[4.0]), source_count=80)
    sampler = Sampler(rt, interval=1.0)
    rt.run(until=10.0)
    assert sampler.samples_taken >= 9
    series = sampler.series_dict()
    depth = series["ms_hau_inbox_depth"]
    assert set(depth) == {"src", "agg", "mid", "sink"}
    for points in depth.values():
        assert len(points) == sampler.samples_taken
        assert all(t > 0 and v >= 0 for t, v in points)
    state = series["ms_hau_state_bytes"]
    assert any(v > 0 for _t, v in state["agg"])
    # preservation bytes at the source (SourcePreserver path)
    assert any(v > 0 for _t, v in series["ms_hau_preserve_bytes"]["src"])
    # the sampler keeps registry gauges current
    g = sampler.registry.get("ms_hau_inbox_depth", hau="agg")
    assert g is not None


def test_sampler_rejects_bad_interval():
    env, rt, _ = deploy(MSSrc(), source_count=5)
    with pytest.raises(ValueError):
        Sampler(rt, interval=0.0)


# -- exporters -----------------------------------------------------------------


def test_snapshot_deterministic_across_same_seed_runs():
    def one_run():
        env, rt, _ = deploy(MSSrcAP(checkpoint_times=[4.0]), seed=11, source_count=60)
        sampler = Sampler(rt, interval=1.0)
        rt.run(until=10.0)
        return dumps_snapshot(
            snapshot(env.telemetry, sampler=sampler, meta={"seed": 11})
        )

    assert one_run() == one_run()


def test_snapshot_roundtrip_and_render(tmp_path):
    env, rt, _ = deploy(MSSrc(checkpoint_times=[3.0]), source_count=40)
    sampler = Sampler(rt, interval=1.0)
    rt.run(until=8.0)
    snap = snapshot(env.telemetry, sampler=sampler, meta={"app": "chain"})
    path = tmp_path / "snap.json"
    write_snapshot(snap, str(path))
    back = read_snapshot(str(path))
    assert back == json.loads(dumps_snapshot(snap))
    report = render_snapshot(back)
    assert "Counters and gauges" in report
    assert "Distributions" in report
    assert "Series: ms_hau_inbox_depth" in report


def test_render_empty_snapshot():
    assert "empty" in render_snapshot({"meta": {}, "metrics": [], "series": {}})


def test_report_cli(tmp_path, capsys):
    env, rt, _ = deploy(MSSrc(checkpoint_times=[3.0]), source_count=30)
    rt.run(until=6.0)
    path = tmp_path / "snap.json"
    write_snapshot(snapshot(env.telemetry, meta={"scheme": "ms-src"}), str(path))
    assert report_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "scheme=ms-src" in out
    assert report_main([]) == 2
    assert report_main([str(tmp_path / "missing.json")]) == 2


def test_prometheus_export_format():
    reg = MetricRegistry()
    reg.counter("ms_t_total", scheme="ms-src").inc(4)
    reg.gauge("ms_depth", hau='we"ird').set(2.5)
    h = reg.histogram("ms_lat_seconds")
    for x in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6):
        h.observe(x)
    text = to_prometheus(reg)
    lines = text.splitlines()
    assert "# TYPE ms_t_total counter" in lines
    assert 'ms_t_total{scheme="ms-src"} 4' in lines
    assert 'ms_depth{hau="we\\"ird"} 2.5' in lines
    assert "# TYPE ms_lat_seconds summary" in lines
    assert any(l.startswith('ms_lat_seconds{quantile="0.5"}') for l in lines)
    assert "ms_lat_seconds_count 6" in lines
    assert any(l.startswith("ms_lat_seconds_sum") for l in lines)
    assert text.endswith("\n")
    assert to_prometheus(MetricRegistry()) == ""


# -- harness integration -------------------------------------------------------


def test_run_experiment_telemetry(tmp_path):
    from repro.harness import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(
        app="tmi", scheme="ms-src", n_checkpoints=1, window=20.0, warmup=5.0,
        workers=8, spares=10, racks=2, seed=3, app_params={"n_minutes": 0.1},
    )
    res = run_experiment(cfg, telemetry=True)
    assert res.telemetry is not None and res.telemetry.enabled
    assert res.telemetry_sampler is not None
    assert set(res.latency_percentiles) == {"p50", "p95", "p99"}
    assert res.latency_percentiles["p50"] <= res.latency_percentiles["p99"]
    snap = res.telemetry_snapshot()
    assert snap["meta"] == {"app": "tmi", "scheme": "ms-src", "seed": 3}
    assert snap["metrics"] and snap["series"]
    path = tmp_path / "telemetry.json"
    res.write_telemetry(str(path))
    assert read_snapshot(str(path)) == json.loads(res.telemetry_json())

    plain = run_experiment(cfg)
    assert plain.telemetry is None
    with pytest.raises(RuntimeError):
        plain.telemetry_snapshot()


# -- small-sample quantiles (exact order statistics) ----------------------------


def test_nearest_rank_percentile_is_an_observed_value():
    from repro.telemetry.quantile import nearest_rank_percentile

    assert nearest_rank_percentile([], 0.99) == 0.0
    assert nearest_rank_percentile([7.0], 0.99) == 7.0
    # ceil(q * n)-th order statistic, never an interpolation
    vals = [1.0, 2.0, 3.0]
    assert nearest_rank_percentile(vals, 0.99) == 3.0
    assert nearest_rank_percentile(vals, 0.5) == 2.0
    assert nearest_rank_percentile(vals, 0.0) == 1.0  # rank floor is 1
    assert nearest_rank_percentile([1.0, 2.0], 0.5) == 1.0
    with pytest.raises(ValueError):
        nearest_rank_percentile([1.0], 1.5)


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_p2_tail_quantiles_exact_below_five_observations(n):
    """Regression: p99 of a tiny window is its maximum — an actual
    observation — not a linear interpolation 2% below anything measured."""
    from repro.telemetry.quantile import nearest_rank_percentile

    samples = [float(x) for x in range(10, 10 + n)]
    for p in (0.5, 0.95, 0.99):
        est = P2Quantile(p)
        for x in samples:
            est.observe(x)
        assert est.value() == nearest_rank_percentile(samples, p)
        assert est.value() in samples
    # in particular the tail of a 3-sample window is its max
    est = P2Quantile(0.99)
    for x in (0.3, 0.1, 0.2):
        est.observe(x)
    assert est.value() == 0.3


def test_histogram_small_sample_percentile_is_observed():
    reg = MetricRegistry()
    h = reg.histogram("ms_x_seconds")
    for x in (4.0, 2.0, 8.0):
        h.observe(x)
    assert h.percentile(0.99) == 8.0
    assert h.percentile(0.5) == 4.0


# -- exposition-format HELP/TYPE lines and escaping ------------------------------


def test_prometheus_help_lines_precede_type():
    from repro.telemetry.export import HELP_TEXT

    reg = MetricRegistry()
    reg.counter("ms_alerts_fired_total", slo="latency-p99").inc()
    reg.gauge("ms_alerts_active").set(1)
    reg.counter("ms_t_total").inc()  # no HELP entry -> TYPE only
    lines = to_prometheus(reg).splitlines()
    for name in ("ms_alerts_fired_total", "ms_alerts_active"):
        help_i = lines.index(f"# HELP {name} {HELP_TEXT[name]}")
        assert lines[help_i + 1] == f"# TYPE {name} " + (
            "counter" if name.endswith("_total") else "gauge"
        )
    assert "# TYPE ms_t_total counter" in lines
    assert not any(line.startswith("# HELP ms_t_total") for line in lines)


def test_prometheus_label_escaping_backslash_quote_newline():
    reg = MetricRegistry()
    reg.counter("ms_esc_total", path='a\\b"c\nd').inc(2)
    text = to_prometheus(reg)
    assert 'ms_esc_total{path="a\\\\b\\"c\\nd"} 2' in text.splitlines()
