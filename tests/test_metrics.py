"""Unit tests for metrics collectors and breakdown records."""

import pytest

from repro.metrics import CheckpointBreakdown, CheckpointLog, MetricsHub, RecoveryBreakdown


def test_throughput_counts_window():
    hub = MetricsHub()
    for t in (1.0, 2.0, 3.0, 10.0):
        hub.record_sink("k", t - 0.5, t)
    assert hub.throughput() == 4
    assert hub.throughput(start=2.0, end=5.0) == 2


def test_average_latency():
    hub = MetricsHub()
    hub.record_sink("k", 0.0, 2.0)
    hub.record_sink("k", 1.0, 2.0)
    assert hub.average_latency() == pytest.approx(1.5)
    assert hub.average_latency(start=100.0) == 0.0


def test_latency_series_and_binned():
    hub = MetricsHub()
    for i in range(10):
        hub.record_sink("k", float(i), float(i) + (2.0 if i >= 5 else 0.5))
    series = hub.latency_series()
    assert len(series) == 10
    binned = hub.binned_latency(0.0, 12.0, 6.0)
    assert len(binned) == 2
    assert binned[0][1] < binned[1][1]  # spike in the second half
    assert hub.peak_binned_latency(0.0, 12.0, 6.0) == binned[1][1]


def test_binned_latency_validates_width():
    hub = MetricsHub()
    with pytest.raises(ValueError):
        hub.binned_latency(0.0, 1.0, 0.0)


def test_stage_metrics_filter_by_prefix():
    hub = MetricsHub()
    hub.record_stage("A0", 0.0, 1.0)
    hub.record_stage("A1", 0.0, 3.0)
    hub.record_stage("B0", 0.0, 10.0)
    assert hub.stage_throughput("A") == 2
    assert hub.stage_latency("A") == pytest.approx(2.0)
    assert hub.stage_throughput("B") == 1
    assert hub.stage_throughput("") == 3
    series = hub.stage_latency_series("A")
    assert series == [(1.0, 1.0), (3.0, 3.0)]


def test_stage_binned_latency():
    hub = MetricsHub()
    hub.record_stage("A0", 0.0, 1.0)
    hub.record_stage("A0", 8.0, 9.0)
    binned = hub.stage_binned_latency("A", 0.0, 10.0, 5.0)
    assert len(binned) == 2
    assert binned[0][1] == pytest.approx(1.0)


def test_checkpoint_breakdown_components():
    bd = CheckpointBreakdown(
        hau_id="h", round_id=1, command_at=10.0, tokens_done_at=12.0,
        write_start_at=13.0, write_end_at=20.0,
        fork_seconds=0.5, serialize_seconds=1.0,
    )
    assert bd.token_collection == pytest.approx(2.0)
    assert bd.disk_io == pytest.approx(7.0)
    assert bd.other == pytest.approx(1.5)
    assert bd.total == pytest.approx(10.5)


def test_checkpoint_log_slowest_and_wallclock():
    log = CheckpointLog(round_id=1, started_at=0.0)
    a = log.breakdown("a")
    a.command_at, a.tokens_done_at = 0.0, 1.0
    a.write_start_at, a.write_end_at = 1.0, 4.0
    b = log.breakdown("b")
    b.command_at, b.tokens_done_at = 0.0, 2.0
    b.write_start_at, b.write_end_at = 2.0, 9.0
    assert log.slowest() is b
    assert log.wall_clock() == pytest.approx(9.0)
    assert not log.complete
    log.completed_at = 9.0
    assert log.complete


def test_checkpoint_log_breakdown_idempotent():
    log = CheckpointLog(round_id=1, started_at=0.0)
    assert log.breakdown("x") is log.breakdown("x")


def test_recovery_breakdown_totals():
    rec = RecoveryBreakdown(
        started_at=100.0, reload_seconds=0.3, disk_io_seconds=5.0,
        deserialize_seconds=0.7, reconnect_seconds=0.5, completed_at=110.0,
    )
    assert rec.other == pytest.approx(1.0)
    assert rec.total == pytest.approx(10.0)


def test_events_recorded():
    hub = MetricsHub()
    hub.record_event(5.0, "recovery-start", "w3")
    assert hub.events == [(5.0, "recovery-start", "w3")]


def test_latency_percentiles_sink_and_stage():
    hub = MetricsHub()
    for i in range(1, 101):
        hub.record_sink("s", 0.0, float(i))
        hub.record_stage("A0", 0.0, float(i))
    pct = hub.latency_percentiles()
    assert set(pct) == {"p50", "p95", "p99"}
    assert pct["p50"] == pytest.approx(50.5)
    assert pct["p95"] == pytest.approx(95.05)
    assert pct["p50"] <= pct["p95"] <= pct["p99"]
    stage = hub.stage_latency_percentiles("A")
    assert stage == pytest.approx(pct)
    # windowing applies
    assert hub.latency_percentiles(start=1000.0)["p50"] == 0.0


def test_latency_percentiles_empty_window():
    hub = MetricsHub()
    assert hub.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    assert hub.stage_latency_percentiles("A") == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_latency_percentiles_custom_fractions():
    hub = MetricsHub()
    for i in range(1, 11):
        hub.record_sink("s", 0.0, float(i))
    pct = hub.latency_percentiles(percentiles=(0.1, 0.9))
    assert set(pct) == {"p10", "p90"}


def test_checkpoint_breakdown_completeness_flags():
    # fully recorded
    done = CheckpointBreakdown(hau_id="a", round_id=1)
    done.command_at, done.tokens_done_at = 1.0, 2.0
    done.write_start_at, done.write_end_at = 2.0, 5.0
    assert done.complete
    assert done.spans() == {
        "token_collection": pytest.approx(1.0),
        "disk_io": pytest.approx(3.0),
        "other": 0.0,
    }

    # killed during token collection: clamped spans read 0.0, flags don't
    cut = CheckpointBreakdown(hau_id="b", round_id=1)
    cut.command_at = 1.0
    assert not cut.complete
    assert cut.token_collection == 0.0  # the misleading clamped value
    spans = cut.spans()
    assert spans["token_collection"] is None
    assert spans["disk_io"] is None

    # killed mid-write: write_end_at never stamped
    midwrite = CheckpointBreakdown(hau_id="c", round_id=1)
    midwrite.command_at, midwrite.tokens_done_at = 1.0, 2.0
    midwrite.write_start_at = 2.0
    assert not midwrite.complete
    assert midwrite.spans()["disk_io"] is None


def test_checkpoint_log_incomplete_haus():
    log = CheckpointLog(round_id=1, started_at=0.0)
    ok = log.breakdown("ok")
    ok.command_at, ok.tokens_done_at = 0.0, 1.0
    ok.write_start_at, ok.write_end_at = 1.0, 2.0
    log.breakdown("dead")  # never progressed
    assert log.incomplete_haus() == ["dead"]
    assert not log.complete


def test_recovery_breakdown_completeness():
    ok = RecoveryBreakdown(started_at=10.0, completed_at=15.0)
    assert ok.complete and ok.total == pytest.approx(5.0)
    abandoned = RecoveryBreakdown(started_at=10.0)  # completed_at unset
    assert not abandoned.complete
    assert abandoned.total == 0.0  # the misleading clamped value
