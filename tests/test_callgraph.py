"""Tests for the project call graph (repro.analysis.callgraph):
module naming, call resolution, taint seeds, sink facts, traversal and
the JSON/DOT exports."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.engine import AnalysisConfig, run_analysis
from repro.analysis.callgraph import METHOD_FANOUT_LIMIT, module_name


def build_graph(tmp_path, files):
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text), encoding="utf-8")
    (tmp_path / "DESIGN.md").write_text("", encoding="utf-8")
    project = run_analysis(AnalysisConfig(root=tmp_path, dirs=("src",), rule_ids=()))
    assert project.callgraph is not None
    return project.callgraph


def test_module_name_strips_src_and_init():
    assert module_name("src/repro/core/base.py") == "repro.core.base"
    assert module_name("src/repro/core/__init__.py") == "repro.core"
    assert module_name("benchmarks/bench_fig5.py") == "benchmarks.bench_fig5"


def test_local_and_imported_call_resolution(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/helpers.py": """\
            def helper():
                return 1
            """,
            "src/pkg/main.py": """\
            from pkg.helpers import helper

            def local():
                return 2

            def entry():
                local()
                helper()
            """,
        },
    )
    entry = graph.nodes["pkg.main.entry"]
    assert set(entry.edges) == {"pkg.main.local", "pkg.helpers.helper"}


def test_self_method_resolves_through_ancestry(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/m.py": """\
            class Base:
                def shared(self):
                    return 1

            class Child(Base):
                def run(self):
                    return self.shared()
            """,
        },
    )
    assert graph.nodes["pkg.m.Child.run"].edges == ("pkg.m.Base.shared",)
    assert graph.ancestors("Child") == {"Base"}


def test_constructor_call_resolves_to_init(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/m.py": """\
            class Widget:
                def __init__(self):
                    self.x = 1

            def make():
                return Widget()
            """,
        },
    )
    assert graph.nodes["pkg.m.make"].edges == ("pkg.m.Widget.__init__",)


def test_method_fanout_cap(tmp_path):
    # One `obj.frob()` call site against many same-named methods: beyond
    # the cap the name is too generic to link.
    classes = "\n\n".join(
        f"class C{i}:\n    def frob(self):\n        return {i}"
        for i in range(METHOD_FANOUT_LIMIT + 1)
    )
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/m.py": classes
            + "\n\ndef entry(obj):\n    return obj.frob()\n",
        },
    )
    assert graph.nodes["pkg.m.entry"].edges == ()


def test_taint_seeds_collected(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/m.py": """\
            import os
            import time

            def tainted(path):
                t = time.time()
                v = os.environ.get("X")
                names = os.listdir(path)
                ordered = sorted(os.listdir(path))
                pid = id(path)
                return t, v, names, ordered, pid
            """,
        },
    )
    seeds = {(s.kind, s.detail) for s in graph.nodes["pkg.m.tainted"].seeds}
    assert ("wall-clock", "time.time") in seeds
    assert ("environ", "os.environ") in seeds
    assert ("process-id", "id()") in seeds
    # the bare listdir seeds; the sorted()-wrapped one is laundered
    fs = [s for s in graph.nodes["pkg.m.tainted"].seeds if s.kind == "fs-order"]
    assert len(fs) == 1


def test_sink_facts(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/m.py": """\
            def to_json(obj):
                return obj

            def observe(env, hau):
                env.trace.emit("kind", hau=hau)
                env.telemetry.counter("ms_x_total").inc()
            """,
        },
    )
    assert graph.nodes["pkg.m.to_json"].sinks == ("serializer",)
    assert set(graph.nodes["pkg.m.observe"].sinks) == {"trace-event", "telemetry"}


def test_taint_paths_shortest_chain_and_skip_direct(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/m.py": """\
            import time

            def deep():
                return time.time()

            def mid():
                return deep()

            def sink():
                time.sleep(1)
                return mid()
            """,
        },
    )
    paths = graph.taint_paths("pkg.m.sink")
    by_holder = {chain[-1]: chain for _seed, chain in paths}
    # direct seed in sink itself plus the transitive one through mid
    assert by_holder["pkg.m.sink"] == ["pkg.m.sink"]
    assert by_holder["pkg.m.deep"] == ["pkg.m.sink", "pkg.m.mid", "pkg.m.deep"]

    skipped = graph.taint_paths("pkg.m.sink", skip_direct=frozenset({"wall-clock"}))
    holders = {chain[-1] for _seed, chain in skipped}
    assert holders == {"pkg.m.deep"}


def test_taint_paths_seed_veto(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/m.py": """\
            import os

            def cfg():
                return os.environ.get("X")

            def sink():
                return cfg()
            """,
        },
    )
    assert graph.taint_paths("pkg.m.sink") != []
    assert graph.taint_paths("pkg.m.sink", seed_ok=lambda node, seed: False) == []


def test_exports_json_and_dot(tmp_path):
    graph = build_graph(
        tmp_path,
        {
            "src/pkg/m.py": """\
            import time

            def to_json(obj):
                return time.time()
            """,
        },
    )
    doc = json.loads(graph.to_json())
    assert doc["version"] == 1
    names = {fn["qualname"] for fn in doc["functions"]}
    assert "pkg.m.to_json" in names
    dot = graph.to_dot()
    assert dot.startswith("digraph callgraph {")
    # seeded + sink node carries both decorations
    assert '"pkg.m.to_json" [color="red", peripheries="2"];' in dot
