"""Iteration-order canary: digests must not depend on PYTHONHASHSEED.

Runs the digest harness in two subprocesses with different hash seeds
and compares the per-case digests bit-for-bit.  Any dict/set iteration
order leaking into routing, scheduling or serialisation shows up here
before it shows up as an unexplainable baseline break on another
machine.
"""

from __future__ import annotations

import json

from repro.sanitize.canary import DEFAULT_SEEDS, _digest_once, run_canary

CASE = "tmi/baseline@2"


def test_digests_identical_across_hashseeds(capsys):
    rc = run_canary(cases=[CASE], seeds=DEFAULT_SEEDS)
    out = capsys.readouterr().out
    assert rc == 0, f"digest depends on PYTHONHASHSEED:\n{out}"
    assert "OK" in out


def test_digest_once_shape():
    doc = _digest_once(hashseed=0, cases=[CASE])
    assert set(doc["digests"]) == {CASE}
    # a digest is a hex string, stable enough to diff across seeds
    digest = doc["digests"][CASE]
    assert isinstance(digest, str) and len(digest) >= 16
    json.dumps(doc)  # canary output stays JSON-serialisable
