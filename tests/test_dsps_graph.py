"""Tests for the query network builder/validator."""

import pytest

from repro.dsps import GraphError, QueryGraph
from repro.dsps.operator import SinkOperator, SourceOperator, StatelessMapOperator
from repro.dsps.operator import Emit


class TinySource(SourceOperator):
    def generate(self):
        yield (1.0, Emit(payload=1, size=100))


def _src():
    return [TinySource()]


def _mapop():
    return [StatelessMapOperator(lambda x: x)]


def _sink():
    return [SinkOperator()]


def chain_graph():
    g = QueryGraph()
    g.add_hau("s", _src, is_source=True)
    g.add_hau("m", _mapop)
    g.add_hau("k", _sink, is_sink=True)
    g.connect("s", "m")
    g.connect("m", "k")
    return g


def test_valid_chain_passes():
    g = chain_graph()
    g.validate()
    assert g.sources() == ["s"]
    assert g.sinks() == ["k"]
    assert g.upstream("m") == ["s"]
    assert g.downstream("m") == ["k"]
    assert len(g) == 3


def test_duplicate_hau_rejected():
    g = QueryGraph()
    g.add_hau("a", _mapop)
    with pytest.raises(GraphError):
        g.add_hau("a", _mapop)


def test_unknown_endpoint_rejected():
    g = QueryGraph()
    g.add_hau("a", _mapop)
    with pytest.raises(GraphError):
        g.connect("a", "b")


def test_duplicate_edge_rejected():
    g = chain_graph()
    with pytest.raises(GraphError):
        g.connect("s", "m")


def test_cycle_rejected():
    g = QueryGraph()
    g.add_hau("s", _src, is_source=True)
    g.add_hau("a", _mapop)
    g.add_hau("b", _mapop)
    g.add_hau("k", _sink, is_sink=True)
    g.connect("s", "a")
    g.connect("a", "b")
    g.connect("b", "a", src_port=1, dst_port=1)
    g.connect("b", "k")
    with pytest.raises(GraphError, match="cycle"):
        g.validate()


def test_source_with_inbound_rejected():
    g = QueryGraph()
    g.add_hau("s1", _src, is_source=True)
    g.add_hau("s2", _src, is_source=True)
    g.add_hau("k", _sink, is_sink=True)
    g.connect("s1", "s2")
    g.connect("s2", "k")
    with pytest.raises(GraphError, match="inbound"):
        g.validate()


def test_sink_with_outbound_rejected():
    g = QueryGraph()
    g.add_hau("s", _src, is_source=True)
    g.add_hau("k", _sink, is_sink=True)
    g.add_hau("m", _mapop)
    g.connect("s", "k")
    g.connect("k", "m")
    g.connect("m", "m2") if False else None
    with pytest.raises(GraphError):
        g.validate()


def test_orphan_hau_rejected():
    g = chain_graph()
    g.add_hau("orphan", _mapop)
    with pytest.raises(GraphError):
        g.validate()


def test_no_sources_rejected():
    g = QueryGraph()
    g.add_hau("a", _mapop)
    g.add_hau("b", _mapop)
    g.connect("a", "b")
    with pytest.raises(GraphError):
        g.validate()


def test_noncontiguous_input_ports_rejected():
    g = QueryGraph()
    g.add_hau("s", _src, is_source=True)
    g.add_hau("j", _mapop)
    g.connect("s", "j", dst_port=1)  # port 0 missing
    with pytest.raises(GraphError, match="ports"):
        g.validate()


def test_bad_routing_mode_rejected():
    g = chain_graph()
    with pytest.raises(GraphError):
        g.connect("s", "k", src_port=1, routing="magic")


def test_topological_order_respects_edges():
    g = chain_graph()
    order = g.topological_order()
    assert order.index("s") < order.index("m") < order.index("k")


def test_fanout_and_ports():
    g = QueryGraph()
    g.add_hau("s", _src, is_source=True)
    g.add_hau("a", _mapop)
    g.add_hau("b", _mapop)
    g.add_hau("k", _sink, is_sink=True)
    g.connect("s", "a")
    g.connect("s", "b")
    g.connect("a", "k", dst_port=0)
    g.connect("b", "k", dst_port=1)
    g.validate()
    assert g.downstream("s") == ["a", "b"]
    assert len(g.in_edges("k")) == 2
