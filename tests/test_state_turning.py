"""Tests for turning-point detection, ICR, and series rebuild."""

import pytest

from repro.state import TurningPointDetector
from repro.state.turning import rebuild_series


def feed(detector, samples):
    out = []
    for t, s in samples:
        tp = detector.observe(t, s)
        if tp:
            out.append(tp)
    return out


def test_detects_maximum_with_icr():
    det = TurningPointDetector()
    # Fig. 10 shape: rise to 250 at t3, fall after
    tps = feed(det, [(0, 100), (1, 150), (2, 200), (3, 250), (4, 200), (5, 150)])
    assert len(tps) == 1
    tp = tps[0]
    assert tp.kind == "max"
    assert tp.time == 3
    assert tp.size == 250
    assert tp.icr == pytest.approx(-50.0)


def test_detects_minimum_with_positive_icr():
    det = TurningPointDetector()
    tps = feed(det, [(0, 250), (1, 150), (2, 100), (3, 150), (4, 200)])
    assert len(tps) == 1
    tp = tps[0]
    assert tp.kind == "min"
    assert tp.time == 2
    assert tp.size == 100
    assert tp.icr == pytest.approx(50.0)


def test_fig10_sequence_of_extrema():
    det = TurningPointDetector()
    # zigzag: 100 -> 250 -> 100 -> 250 -> 100
    series = [(0, 100), (3, 250), (6, 100), (9, 250), (12, 100), (13, 150)]
    tps = feed(det, series)
    kinds = [tp.kind for tp in tps]
    assert kinds == ["max", "min", "max", "min"]
    assert [tp.size for tp in tps] == [250, 100, 250, 100]


def test_monotonic_series_has_no_turning_points():
    det = TurningPointDetector()
    assert feed(det, [(i, i * 10) for i in range(10)]) == []


def test_flat_segments_with_tolerance():
    det = TurningPointDetector(tolerance=5.0)
    # noise of +-3 must not register direction flips
    tps = feed(det, [(0, 100), (1, 103), (2, 100), (3, 103), (4, 200), (5, 100)])
    assert len(tps) == 1
    assert tps[0].kind == "max"
    assert tps[0].size == 200


def test_out_of_order_samples_rejected():
    det = TurningPointDetector()
    det.observe(1.0, 10)
    with pytest.raises(ValueError):
        det.observe(0.5, 20)


def test_duplicate_time_sample_is_ignored():
    det = TurningPointDetector()
    det.observe(1.0, 10)
    assert det.observe(1.0, 50) is None


def test_reset_clears_history():
    det = TurningPointDetector()
    feed(det, [(0, 0), (1, 10)])
    det.reset()
    assert det.current_slope() == 0
    assert feed(det, [(2, 100), (3, 50)]) == []  # one segment, no flip yet


def test_rebuild_series_interpolates_linearly():
    pts = [(0.0, 100.0), (10.0, 200.0)]
    assert rebuild_series(pts, [0.0, 5.0, 10.0]) == [100.0, 150.0, 200.0]


def test_rebuild_series_clamps_outside_range():
    pts = [(5.0, 50.0), (10.0, 100.0)]
    assert rebuild_series(pts, [0.0, 20.0]) == [50.0, 100.0]


def test_rebuild_series_empty_points():
    assert rebuild_series([], [1.0, 2.0]) == [0.0, 0.0]
