"""Tests for MS-src: token cascade, sync checkpoints, global recovery."""


from repro.cluster import ClusterSpec
from repro.core import MSSrc
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph, make_diamond_graph
from repro.simulation import Environment


def deploy(graph_fn, scheme, seed=7, workers=6, spares=6, **graph_kw):
    g, holder = graph_fn(**graph_kw)
    env = Environment()
    app = StreamApplication(name="t", graph=g)
    rt = DSPSRuntime(
        env,
        app,
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=workers, spares=spares, racks=2)),
    )
    rt.start()
    return env, rt, holder


def test_round_completes_all_haus_checkpoint():
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    logs = scheme.checkpoint_logs()
    assert len(logs) == 1
    log = logs[0]
    assert log.complete
    assert set(log.haus) == set(rt.app.graph.haus)
    # every HAU wrote its state to shared storage
    assert rt.storage.keys("ckpt") == sorted(rt.app.graph.haus)


def test_checkpoint_is_consistent_cut():
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    cut = scheme.last_complete_round()
    assert cut is not None
    round_id, versions = cut
    assert round_id == 1
    # the source's checkpointed emitted_count matches its preservation marker
    src_payload = rt.storage.lookup("ckpt", "src", versions["src"]).value
    marker = scheme.source_markers[(1, "src")]
    assert src_payload["operators"][0]["emitted_count"] == marker


def test_tokens_cascade_in_topological_order():
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    log = scheme.checkpoint_logs()[0]
    ends = {h: bd.write_end_at for h, bd in log.haus.items()}
    assert ends["src"] < ends["agg"] < ends["mid"] < ends["sink"]


def test_diamond_waits_for_both_tokens():
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_diamond_graph, scheme)
    env.run(until=15.0)
    log = scheme.checkpoint_logs()[0]
    assert log.complete
    join_bd = log.haus["join"]
    # the join cannot checkpoint before both upstream branches have
    assert join_bd.write_start_at >= log.haus["a"].write_end_at
    assert join_bd.write_start_at >= log.haus["b"].write_end_at


def test_source_preservation_only_sources_preserve():
    scheme = MSSrc(checkpoint_times=[2.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=6.0)
    assert scheme.preserver.tuples_preserved > 0
    assert rt.storage.keys("preserve") == ["src"]


def test_gc_discards_preserved_prefix_after_round():
    scheme = MSSrc(checkpoint_times=[2.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    marker = scheme.source_markers[(1, "src")]
    remaining = scheme.preserver.replay_tuples("src", 0)
    assert all(t.seq > marker for t in remaining)


def test_multiple_rounds_supersede():
    scheme = MSSrc(checkpoint_times=[1.0, 2.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    cut = scheme.last_complete_round()
    assert cut[0] == 2
    # superseded round-1 checkpoint versions were garbage collected
    for hau_id, version in cut[1].items():
        versions = rt.storage._objects[("ckpt", hau_id)]
        assert all(o.version >= version for o in versions)


def run_to_end(graph_fn, scheme_factory, fail=None, until=40.0, seed=7, **kw):
    scheme = scheme_factory()
    env, rt, holder = deploy(graph_fn, scheme, seed=seed, **kw)
    if fail is not None:
        fail_time, victims = fail

        def killer():
            yield env.timeout(fail_time)
            for hau_id in victims:
                rt.haus[hau_id].node.fail("injected")

        env.process(killer())
    env.run(until=until)
    return rt, holder["sink"].payload_log, scheme


def test_exactly_once_single_failure_chain():
    clean_rt, clean_log, _ = run_to_end(make_chain_graph, lambda: MSSrc(checkpoint_times=[1.0]))
    _, failed_log, scheme = run_to_end(
        make_chain_graph,
        lambda: MSSrc(checkpoint_times=[1.0], enable_recovery=True),
        fail=(1.8, ["mid"]),
    )
    assert len(scheme.recoveries) == 1
    assert failed_log == clean_log


def test_exactly_once_failure_before_any_checkpoint():
    clean_rt, clean_log, _ = run_to_end(make_chain_graph, lambda: MSSrc(checkpoint_times=[]))
    _, failed_log, scheme = run_to_end(
        make_chain_graph,
        lambda: MSSrc(checkpoint_times=[], enable_recovery=True),
        fail=(0.9, ["agg"]),
    )
    assert len(scheme.recoveries) == 1
    assert failed_log == clean_log


def test_exactly_once_correlated_burst_failure():
    """The headline capability: multiple simultaneous node failures.

    With two independent source streams merging at a join, recovery may
    legitimately change the cross-stream interleaving; the guarantee is
    "no tuple missed or processed twice" (§III-A) plus per-stream order.
    """
    clean_rt, clean_log, _ = run_to_end(
        make_diamond_graph, lambda: MSSrc(checkpoint_times=[1.5]), until=60.0
    )
    _, failed_log, scheme = run_to_end(
        make_diamond_graph,
        lambda: MSSrc(checkpoint_times=[1.5], enable_recovery=True),
        fail=(2.5, ["a", "b", "join"]),
        until=60.0,
    )
    assert len(scheme.recoveries) == 1
    assert sorted(failed_log) == sorted(clean_log)  # no loss, no duplicates
    for port in (0, 1):  # per-stream order preserved
        clean_stream = [v for (p, v) in clean_log if p == port]
        failed_stream = [v for (p, v) in failed_log if p == port]
        assert failed_stream == clean_stream


def test_exactly_once_source_failure():
    clean_rt, clean_log, _ = run_to_end(make_chain_graph, lambda: MSSrc(checkpoint_times=[1.0]))
    _, failed_log, scheme = run_to_end(
        make_chain_graph,
        lambda: MSSrc(checkpoint_times=[1.0], enable_recovery=True),
        fail=(2.2, ["src"]),
    )
    assert failed_log == clean_log


def test_recovery_breakdown_recorded():
    _, _, scheme = run_to_end(
        make_chain_graph,
        lambda: MSSrc(checkpoint_times=[1.0], enable_recovery=True),
        fail=(2.0, ["agg", "mid"]),
    )
    rec = scheme.recoveries[0]
    assert rec.total > 0
    assert rec.disk_io_seconds > 0
    assert rec.reconnect_seconds > 0
    assert rec.haus_recovered == 4


def test_failed_haus_restart_on_spares():
    _, _, scheme = run_to_end(
        make_chain_graph,
        lambda: MSSrc(checkpoint_times=[1.0], enable_recovery=True),
        fail=(2.0, ["mid"]),
    )
    rt = scheme.runtime
    assert rt.haus["mid"].node.alive
    assert rt.haus["mid"].node.node_id.startswith("spare")


def test_sync_checkpoint_takes_visible_time_for_big_state():
    """An MS-src checkpoint of a ~100 MB HAU must take measurable time."""
    scheme = MSSrc(checkpoint_times=[1.0])
    g, _holder = make_chain_graph(
        source_count=200, interval=0.02, window=50, tuple_size=2_000_000
    )
    env = Environment()
    app = StreamApplication(name="t", graph=g)
    rt = DSPSRuntime(
        env,
        app,
        scheme,
        RuntimeConfig(seed=3, cluster=ClusterSpec(workers=4, spares=1, racks=1)),
    )
    rt.start()
    env.run(until=30.0)
    log = scheme.checkpoint_logs()[0]
    assert log.complete
    agg = log.haus["agg"]
    assert agg.total > 0.05
    assert agg.disk_io > 0.0
