"""Tests for repro.analysis (repro-lint): rules, engine, baseline, CLI.

Each rule gets at least one seeded-violation fixture (must fire) and
false-positive guards (must stay quiet).  The engine plumbing (inline
suppression, alias resolution, syntax-error reporting), the baseline
round-trip and the CLI exit-code / JSON-report contracts are covered
separately.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.baseline import (
    Baseline,
    baseline_from_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import list_rules_text, main
from repro.analysis.engine import (
    AnalysisConfig,
    import_aliases,
    parse_suppressions,
    run_analysis,
)
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.scenarios import parse_scenario_schema
from repro.analysis.schema import parse_metric_schema, parse_trace_schema

import ast


def run_fixture(tmp_path, files, design=None, rule_ids=None, dirs=("src",)):
    """Materialise ``files`` under ``tmp_path`` and run the analysis."""
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text), encoding="utf-8")
    if design is not None:
        (tmp_path / "DESIGN.md").write_text(textwrap.dedent(design), encoding="utf-8")
    config = AnalysisConfig(
        root=tmp_path,
        dirs=dirs,
        rule_ids=tuple(rule_ids) if rule_ids else None,
    )
    return run_analysis(config)


def rules_of(project):
    return [f.rule for f in project.findings]


# ---------------------------------------------------------------------------
# DET001 — wall-clock calls
# ---------------------------------------------------------------------------


def test_det001_flags_time_time(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            import time

            def tick(env):
                return time.time()
            """
        },
        rule_ids=["DET001"],
    )
    assert rules_of(project) == ["DET001"]
    assert "time.time" in project.findings[0].message


def test_det001_resolves_import_aliases(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            from time import perf_counter as pc
            from datetime import datetime

            def stamp():
                return pc(), datetime.now()
            """
        },
        rule_ids=["DET001"],
    )
    msgs = [f.message for f in project.findings]
    assert len(msgs) == 2
    assert any("time.perf_counter" in m for m in msgs)
    assert any("datetime.datetime.now" in m for m in msgs)


def test_det001_ignores_non_wall_clock_receivers(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def tick(env, clock):
                now = env.now
                t = clock.time()       # not the time module
                env.timeout(1.0)
                return now, t
            """
        },
        rule_ids=["DET001"],
    )
    assert project.findings == []


# ---------------------------------------------------------------------------
# DET002 — global random module / legacy numpy global RNG
# ---------------------------------------------------------------------------


def test_det002_flags_random_imports_and_numpy_global(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            import random
            from random import choice
            import numpy as np

            def jitter():
                np.random.seed(7)
                return random.random() + np.random.uniform()
            """
        },
        rule_ids=["DET002"],
    )
    # import random, from random import, np.random.seed, np.random.uniform
    assert rules_of(project) == ["DET002"] * 4


def test_det002_allows_generator_construction_and_named_streams(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            import numpy as np

            def make(registry):
                rng = np.random.default_rng(0)
                stream = registry.stream("arrivals")
                return rng.normal() + stream.choice([1, 2])
            """
        },
        rule_ids=["DET002"],
    )
    assert project.findings == []


# ---------------------------------------------------------------------------
# DET003 — unordered iteration in export paths
# ---------------------------------------------------------------------------


def test_det003_flags_set_iteration_in_export_path(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/repro/telemetry/x.py": """\
            def build(items):
                out = [x for x in {1, 2, 3}]
                for x in set(items):
                    out.append(x)
                return out
            """
        },
        rule_ids=["DET003"],
    )
    assert rules_of(project) == ["DET003"] * 2


def test_det003_flags_dict_view_in_serializer(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/repro/telemetry/x.py": """\
            def to_payload(d):
                return [k for k in d.keys()]
            """
        },
        rule_ids=["DET003"],
    )
    assert rules_of(project) == ["DET003"]
    assert "d.keys()" in project.findings[0].message


def test_det003_ignores_dict_view_outside_serializer(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/repro/telemetry/x.py": """\
            def fill(d):
                for k, v in d.items():
                    d[k] = v + 1
            """
        },
        rule_ids=["DET003"],
    )
    assert project.findings == []


def test_det003_ignores_sorted_and_order_insensitive_wraps(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/repro/telemetry/x.py": """\
            def to_payload(d):
                a = [k for k in sorted(d.keys())]
                b = sorted(v for k, v in d.items())
                c = sum(v for v in d.values())
                return a, b, c
            """
        },
        rule_ids=["DET003"],
    )
    assert project.findings == []


def test_det003_scoped_to_export_paths_only(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/repro/dsps/x.py": """\
            def to_payload(d):
                return [k for k in d.keys()] + [x for x in {1, 2}]
            """
        },
        rule_ids=["DET003"],
    )
    assert project.findings == []


# ---------------------------------------------------------------------------
# SIM001 — process generators yield engine events only
# ---------------------------------------------------------------------------


def test_sim001_flags_literal_yield_in_driven_generator(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def worker(env):
                yield 1
                yield env.timeout(1.0)

            def main(env):
                env.process(worker(env))
            """
        },
        rule_ids=["SIM001"],
    )
    assert rules_of(project) == ["SIM001"]
    assert "worker" in project.findings[0].message
    assert project.findings[0].line == 2


def test_sim001_flags_bare_yield_and_spawn_and_process_ctor(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def a(env):
                yield

            def b(env):
                yield "tick"

            def main(env, sched):
                sched.spawn(a(env))
                Process(env, b(env))
            """
        },
        rule_ids=["SIM001"],
    )
    assert rules_of(project) == ["SIM001"] * 2


def test_sim001_allows_return_yield_idiom_and_event_yields(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def hook(env):
                return
                yield

            def worker(env):
                yield env.timeout(1.0)
                yield from hook(env)

            def main(env):
                env.process(hook(env))
                env.process(worker(env))
            """
        },
        rule_ids=["SIM001"],
    )
    assert project.findings == []


def test_sim001_ignores_undriven_generators(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def plain_iterator():
                yield 1
                yield 2
            """
        },
        rule_ids=["SIM001"],
    )
    assert project.findings == []


# ---------------------------------------------------------------------------
# PROTO001 — scheme hook protocol / operator save-restore pairing
# ---------------------------------------------------------------------------


def test_proto001_flags_generator_hook_overridden_as_plain(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            class BadScheme(CheckpointScheme):
                def on_emit(self, hau, tup):
                    return tup
            """
        },
        rule_ids=["PROTO001"],
    )
    assert rules_of(project) == ["PROTO001"]
    assert "on_emit" in project.findings[0].message
    assert "yield from" in project.findings[0].message


def test_proto001_flags_yield_in_plain_hook(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            class BadScheme(SchemeHooks):
                def on_hau_started(self, hau):
                    yield hau
            """
        },
        rule_ids=["PROTO001"],
    )
    assert rules_of(project) == ["PROTO001"]
    assert "on_hau_started" in project.findings[0].message


def test_proto001_flags_missing_initiate_round(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            class HalfVariant(MeteorShowerBase):
                def write_checkpoint(self, hau, reason):
                    yield from ()
            """
        },
        rule_ids=["PROTO001"],
    )
    assert any("initiate_round" in f.message for f in project.findings)


def test_proto001_abstract_intermediate_not_flagged(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            class AbstractVariant(MeteorShowerBase):
                pass

            class Concrete(AbstractVariant):
                def initiate_round(self, reason):
                    yield from ()
            """
        },
        rule_ids=["PROTO001"],
    )
    assert project.findings == []


def test_proto001_return_yield_idiom_is_a_generator(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            class GoodScheme(CheckpointScheme):
                def on_emit(self, hau, tup):
                    return
                    yield
            """
        },
        rule_ids=["PROTO001"],
    )
    assert project.findings == []


def test_proto001_operator_snapshot_without_restore(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            class HalfOp(Operator):
                def snapshot(self):
                    return {}

            class FullOp(Operator):
                def snapshot(self):
                    return {}

                def restore(self, blob):
                    pass
            """
        },
        rule_ids=["PROTO001"],
    )
    assert rules_of(project) == ["PROTO001"]
    assert "HalfOp" in project.findings[0].message
    assert "restore" in project.findings[0].message


# ---------------------------------------------------------------------------
# TEL001 — metric names vs DESIGN.md metric schema
# ---------------------------------------------------------------------------

DESIGN_FIXTURE = """\
# design

## Trace schema

| prefix | events |
|---|---|
| `ckpt.` | `round_started`, `round_done` |
| `metrics.` | forwarded verbatim by `MetricsHub.record_event` |

## Metric schema

| metric | kind |
|---|---|
| `ms_good_total`, `ms_other_total` | counter |
"""


def test_tel001_clean_when_in_sync(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def setup(env):
                env.telemetry.counter("ms_good_total").inc()
                env.telemetry.counter("ms_other_total").inc()
            """
        },
        design=DESIGN_FIXTURE,
        rule_ids=["TEL001"],
    )
    assert project.findings == []


def test_tel001_flags_undocumented_and_dead_metrics(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def setup(env):
                env.telemetry.counter("ms_good_total").inc()
                env.telemetry.gauge("ms_rogue_bytes").set(1.0)
            """
        },
        design=DESIGN_FIXTURE,
        rule_ids=["TEL001"],
    )
    msgs = {f.message for f in project.findings}
    assert any("ms_rogue_bytes" in m and "not documented" in m for m in msgs)
    assert any("ms_other_total" in m and "never emitted" in m for m in msgs)
    # the dead-metric finding points at the DESIGN.md table row
    dead = [f for f in project.findings if "never emitted" in f.message]
    assert dead[0].path == "DESIGN.md"


def test_tel001_flags_dynamic_metric_name(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def setup(env, name):
                env.telemetry.counter(name).inc()
            """
        },
        design=DESIGN_FIXTURE,
        rule_ids=["TEL001"],
    )
    assert any("dynamic metric name" in f.message for f in project.findings)


def test_tel001_warns_when_design_missing(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def setup(env):
                env.telemetry.counter("ms_x_total").inc()
            """
        },
        rule_ids=["TEL001"],
    )
    assert rules_of(project) == ["TEL001"]
    assert project.findings[0].severity == Severity.WARNING


def test_tel001_ignores_non_telemetry_receivers(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            def setup(env, geiger):
                env.telemetry.counter("ms_good_total").inc()
                env.telemetry.counter("ms_other_total").inc()
                geiger.counter("clicks").inc()
            """
        },
        design=DESIGN_FIXTURE,
        rule_ids=["TEL001"],
    )
    assert project.findings == []


# ---------------------------------------------------------------------------
# TRC001 — trace kinds vs KINDS and DESIGN.md trace schema
# ---------------------------------------------------------------------------


def test_trc001_clean_when_in_sync(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": """\
            KINDS = ("ckpt.round_started", "ckpt.round_done")

            def run(trace, kind):
                trace.emit("ckpt.round_started")
                trace.emit("ckpt.round_done")
                trace.emit("metrics." + kind)
            """
        },
        design=DESIGN_FIXTURE,
        rule_ids=["TRC001"],
    )
    assert project.findings == []


def test_trc001_flags_emitted_but_undeclared_kind(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": """\
            KINDS = ("ckpt.round_started", "ckpt.round_done")

            def run(trace):
                trace.emit("ckpt.round_started")
                trace.emit("ckpt.round_done")
                trace.emit("ckpt.rogue")
            """
        },
        design=DESIGN_FIXTURE,
        rule_ids=["TRC001"],
    )
    assert rules_of(project) == ["TRC001"]
    assert "ckpt.rogue" in project.findings[0].message
    assert "not declared in KINDS" in project.findings[0].message


def test_trc001_flags_declared_but_never_emitted(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": """\
            KINDS = ("ckpt.round_started", "ckpt.round_done")

            def run(trace):
                trace.emit("ckpt.round_started")
            """
        },
        design=DESIGN_FIXTURE,
        rule_ids=["TRC001"],
    )
    msgs = [f.message for f in project.findings]
    assert any("ckpt.round_done" in m and "never emitted" in m for m in msgs)
    # the finding points at the KINDS tuple element
    f = project.findings[0]
    assert f.path == "src/tracer.py" and f.line == 1


def test_trc001_flags_design_doc_drift_both_directions(tmp_path):
    design = DESIGN_FIXTURE.replace("`round_started`, `round_done`", "`round_started`, `ghost`")
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": """\
            KINDS = ("ckpt.round_started", "ckpt.round_done")

            def run(trace):
                trace.emit("ckpt.round_started")
                trace.emit("ckpt.round_done")
            """
        },
        design=design,
        rule_ids=["TRC001"],
    )
    msgs = {f.message for f in project.findings}
    assert any("ckpt.round_done" in m and "not documented" in m for m in msgs)
    assert any("ckpt.ghost" in m and "not declared in KINDS" in m for m in msgs)


def test_trc001_flags_undeclared_dynamic_prefix(tmp_path):
    design = "\n".join(
        line
        for line in DESIGN_FIXTURE.splitlines()
        if "metrics." not in line
    )
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": """\
            KINDS = ("ckpt.round_started", "ckpt.round_done")

            def run(trace, kind):
                trace.emit("ckpt.round_started")
                trace.emit("ckpt.round_done")
                trace.emit("metrics." + kind)
            """
        },
        design=design,
        rule_ids=["TRC001"],
    )
    assert any("metrics." in f.message and "dynamic" in f.message for f in project.findings)


def test_trc001_flags_dynamic_kind_without_constant_prefix(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": """\
            def run(trace, kind):
                trace.emit(kind)
            """
        },
        design=DESIGN_FIXTURE,
        rule_ids=["TRC001"],
    )
    assert any("dynamic trace kind" in f.message for f in project.findings)


# ---------------------------------------------------------------------------
# TRC002 — profiling SPAN_KINDS vs tracer KINDS
# ---------------------------------------------------------------------------


def test_trc002_clean_when_span_kinds_subset_of_kinds(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": 'KINDS = ("ckpt.round_started", "ckpt.round_done")\n',
            "src/spans.py": 'SPAN_KINDS = ("ckpt.round_started",)\n',
        },
        rule_ids=["TRC002"],
    )
    assert project.findings == []


def test_trc002_flags_span_kind_missing_from_kinds(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": 'KINDS = ("ckpt.round_started",)\n',
            "src/spans.py": 'SPAN_KINDS = ("ckpt.round_started", "ckpt.ghost")\n',
        },
        rule_ids=["TRC002"],
    )
    assert rules_of(project) == ["TRC002"]
    f = project.findings[0]
    assert "ckpt.ghost" in f.message and "tracer.KINDS" in f.message
    assert f.path == "src/spans.py"


def test_trc002_quiet_without_a_kinds_inventory(tmp_path):
    # A fixture tree with SPAN_KINDS but no KINDS tuple anywhere must not
    # fire: there is no vocabulary to validate against.
    project = run_fixture(
        tmp_path,
        {"src/spans.py": 'SPAN_KINDS = ("ckpt.round_started",)\n'},
        rule_ids=["TRC002"],
    )
    assert project.findings == []


def test_trc002_ignores_computed_and_non_name_assignments(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/tracer.py": 'KINDS = ("a.b",)\n',
            "src/other.py": """\
            obj = object()
            SPAN_KINDS = tuple(sorted(["a.b"]))
            x, SPAN_KINDS2 = 1, ("a.b",)
            """,
        },
        rule_ids=["TRC002"],
    )
    assert project.findings == []


def test_repo_span_kinds_match_tracer_kinds():
    # The real repo invariant TRC002 guards, asserted directly.
    from repro.observability.tracer import KINDS
    from repro.profiling import SPAN_KINDS

    assert set(SPAN_KINDS) <= set(KINDS)


# ---------------------------------------------------------------------------
# schema parsers
# ---------------------------------------------------------------------------


def test_parse_metric_schema_first_cell_only():
    documented = parse_metric_schema(DESIGN_FIXTURE)
    assert set(documented) == {"ms_good_total", "ms_other_total"}
    # backticked tokens in later cells (e.g. module paths) never count
    text = DESIGN_FIXTURE + "| `ms_extra_total` | counter | `ms_not_a_metric` labels |\n"
    # appended outside the section header scan: re-parse a table inside the section
    assert "ms_not_a_metric" not in parse_metric_schema(
        DESIGN_FIXTURE.replace(
            "| `ms_good_total`, `ms_other_total` | counter |",
            "| `ms_good_total`, `ms_other_total` | counter about `ms_not_a_metric` |",
        )
    )
    del text


def test_parse_trace_schema_kinds_and_dynamic_prefixes():
    kinds, dynamic = parse_trace_schema(DESIGN_FIXTURE)
    assert set(kinds) == {"ckpt.round_started", "ckpt.round_done"}
    assert dynamic == {"metrics."}
    # CamelCase prose tokens (MetricsHub.record_event) are not events


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------


def test_inline_suppression_single_rule_and_all(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            import time

            def tick():
                a = time.time()  # repro-lint: disable=DET001
                b = time.time()  # repro-lint: disable=all
                return a + b
            """
        },
        rule_ids=["DET001"],
    )
    assert project.findings == []
    assert project.inline_suppressed == 2


def test_inline_suppression_does_not_hide_other_rules(tmp_path):
    project = run_fixture(
        tmp_path,
        {
            "src/m.py": """\
            import time

            def tick():
                return time.time()  # repro-lint: disable=TEL001
            """
        },
        rule_ids=["DET001"],
    )
    assert rules_of(project) == ["DET001"]


def test_syntax_error_reported_as_e000(tmp_path):
    project = run_fixture(tmp_path, {"src/broken.py": "def f(:\n    pass\n"})
    assert [f.rule for f in project.findings] == ["E000"]
    assert "syntax error" in project.findings[0].message


def test_parse_suppressions_and_import_aliases():
    supp = parse_suppressions("x = 1\ny = 2  # repro-lint: disable=A1, B2\n")
    assert supp == {2: {"A1", "B2"}}
    tree = ast.parse(
        "import numpy as np\nfrom time import monotonic as mono\nimport os.path\n"
    )
    aliases = import_aliases(tree)
    assert aliases["np"] == "numpy"
    assert aliases["mono"] == "time.monotonic"
    assert aliases["os"] == "os"


def test_findings_sort_and_fingerprint_line_independent():
    a = Finding("DET001", Severity.ERROR, "src/a.py", 10, 1, "msg")
    b = Finding("DET001", Severity.ERROR, "src/a.py", 2, 1, "msg")
    assert sort_findings([a, b]) == [b, a]
    # fingerprint ignores line/col: moving a violation keeps it baselined
    assert a.fingerprint() == b.fingerprint()
    c = Finding("DET002", Severity.ERROR, "src/a.py", 10, 1, "msg")
    assert a.fingerprint() != c.fingerprint()


def test_registry_rejects_duplicates_and_lists_sorted():
    assert [cls.id for cls in all_rules()] == sorted(cls.id for cls in all_rules())
    assert get_rule("DET001").id == "DET001"
    with pytest.raises(ValueError):

        @register
        class Dup(Rule):  # noqa: F811 - intentionally conflicting id
            id = "DET001"


# ---------------------------------------------------------------------------
# baseline round-trip
# ---------------------------------------------------------------------------


def violation_files():
    return {
        "src/m.py": """\
        import time

        def tick():
            return time.time()
        """
    }


def test_baseline_round_trip_suppresses_recorded_findings(tmp_path):
    project = run_fixture(tmp_path, violation_files(), rule_ids=["DET001"])
    assert len(project.findings) == 1
    baseline = baseline_from_findings(project.findings)
    path = tmp_path / "baseline.json"
    write_baseline(baseline, path)
    loaded = load_baseline(path)
    kept, suppressed = loaded.apply(project.findings)
    assert kept == [] and suppressed == 1
    # file is stable JSON with sorted keys
    doc = json.loads(path.read_text())
    assert doc["version"] == 1
    assert list(doc["suppressions"]) == sorted(doc["suppressions"])


def test_baseline_is_count_aware():
    f = Finding("DET001", Severity.ERROR, "src/a.py", 1, 1, "msg")
    g = Finding("DET001", Severity.ERROR, "src/a.py", 9, 1, "msg")  # same fingerprint
    baseline = baseline_from_findings([f])
    kept, suppressed = baseline.apply([f, g])
    assert suppressed == 1 and len(kept) == 1


def test_load_baseline_missing_file_and_bad_version(tmp_path):
    assert load_baseline(tmp_path / "nope.json").counts == {}
    bad = tmp_path / "bad.json"
    bad.write_text('{"version": 99, "suppressions": {}}')
    with pytest.raises(ValueError):
        load_baseline(bad)


def test_load_baseline_accepts_bare_count_entries(tmp_path):
    p = tmp_path / "b.json"
    p.write_text('{"version": 1, "suppressions": {"abcd": 2}}')
    assert load_baseline(p).counts == {"abcd": 2}


def test_baseline_apply_empty_is_identity():
    f = Finding("DET001", Severity.ERROR, "src/a.py", 1, 1, "msg")
    kept, suppressed = Baseline().apply([f])
    assert kept == [f] and suppressed == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def write_repo(tmp_path, files, design=None):
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text), encoding="utf-8")
    if design is not None:
        (tmp_path / "DESIGN.md").write_text(textwrap.dedent(design), encoding="utf-8")


def test_cli_exit_zero_on_clean_repo(tmp_path, capsys):
    write_repo(tmp_path, {"src/m.py": "def f():\n    return 1\n"})
    assert main(["--root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "repro-lint:" in out and "0 finding(s)" in out


def test_cli_exit_one_on_violation(tmp_path, capsys):
    write_repo(tmp_path, violation_files())
    assert main(["--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "src/m.py:4" in out


def test_cli_strict_gates_warnings(tmp_path, capsys):
    # telemetry emitted with no DESIGN.md -> a single TEL001 *warning*
    write_repo(
        tmp_path,
        {"src/m.py": 'def f(env):\n    env.telemetry.counter("ms_x_total").inc()\n'},
    )
    assert main(["--root", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["--root", str(tmp_path), "--strict"]) == 1


def test_cli_exit_two_on_bad_root_and_bad_baseline(tmp_path, capsys):
    assert main(["--root", str(tmp_path / "missing")]) == 2
    write_repo(tmp_path, {"src/m.py": "x = 1\n"})
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["--root", str(tmp_path), "--baseline", str(bad)]) == 2


def test_cli_json_report_schema(tmp_path, capsys):
    write_repo(tmp_path, violation_files())
    assert main(["--root", str(tmp_path), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert set(doc) == {
        "version",
        "strict",
        "dirs",
        "extra_dirs",
        "files_scanned",
        "rules",
        "findings",
        "counts",
        "suppressed_baseline",
        "suppressed_inline",
        "stale_baseline",
    }
    assert doc["counts"] == {"DET001": 1}
    (finding,) = doc["findings"]
    assert set(finding) == {
        "rule",
        "severity",
        "path",
        "line",
        "col",
        "message",
        "fingerprint",
    }
    assert doc["rules"] == [cls.id for cls in all_rules()]


def test_cli_output_writes_json_regardless_of_format(tmp_path, capsys):
    write_repo(tmp_path, violation_files())
    report = tmp_path / "report.json"
    assert main(["--root", str(tmp_path), "--output", str(report)]) == 1
    doc = json.loads(report.read_text())
    assert doc["counts"] == {"DET001": 1}


def test_cli_write_baseline_then_suppress(tmp_path, capsys):
    write_repo(tmp_path, violation_files())
    baseline = tmp_path / "baseline.json"
    assert main(["--root", str(tmp_path), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["--root", str(tmp_path), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_rules_filter(tmp_path, capsys):
    write_repo(
        tmp_path,
        {
            "src/m.py": """\
            import time
            import random

            def f():
                return time.time() + random.random()
            """
        },
    )
    assert main(["--root", str(tmp_path), "--rules", "DET002"]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out and "DET001" not in out


def test_cli_list_rules_covers_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in all_rules():
        assert cls.id in out
        assert cls.title in out
    assert "repro-lint rules" in out


def test_list_rules_text_contains_rationale_and_suppress_hint():
    text = list_rules_text()
    assert "why:" in text and "suppress:" in text


def test_cli_bad_flag_returns_two(capsys):
    assert main(["--no-such-flag"]) == 2


def test_cli_include_dirs_extends_scope(tmp_path, capsys):
    write_repo(
        tmp_path,
        {
            "src/m.py": "def f():\n    return 1\n",
            "tests/t.py": """\
            import os

            def helper(path):
                return os.listdir(path)
            """,
        },
    )
    # default scope: tests/ invisible
    assert main(["--root", str(tmp_path)]) == 0
    capsys.readouterr()
    # opted in: the DET005 in tests/ fires
    assert main(["--root", str(tmp_path), "--include-dirs", "tests"]) == 1
    out = capsys.readouterr().out
    assert "tests/t.py" in out and "DET005" in out


def test_cli_include_dirs_skips_inventory_rules(tmp_path, capsys):
    # TEL001-style inventory rules don't apply to opted-in extra dirs:
    # telemetry in a test helper needs no DESIGN.md registration.
    write_repo(
        tmp_path,
        {
            "src/m.py": "def f():\n    return 1\n",
            "tests/t.py": 'def probe(env):\n    env.telemetry.counter("ms_x_total").inc()\n',
        },
    )
    assert main(["--root", str(tmp_path), "--include-dirs", "tests", "--strict"]) == 0


def test_cli_github_format(tmp_path, capsys):
    write_repo(tmp_path, violation_files())
    assert main(["--root", str(tmp_path), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=src/m.py,line=4," in out
    assert "title=DET001::" in out


def test_cli_call_graph_export(tmp_path, capsys):
    write_repo(
        tmp_path,
        {
            "src/m.py": """\
            def helper():
                return 1

            def entry():
                return helper()
            """
        },
    )
    graph_json = tmp_path / "graph.json"
    assert main(["--root", str(tmp_path), "--call-graph", str(graph_json)]) == 0
    doc = json.loads(graph_json.read_text())
    assert doc["version"] == 1
    assert {fn["qualname"] for fn in doc["functions"]} == {"m.helper", "m.entry"}
    graph_dot = tmp_path / "graph.dot"
    assert main(["--root", str(tmp_path), "--call-graph", str(graph_dot)]) == 0
    assert graph_dot.read_text().startswith("digraph callgraph {")


def test_cli_stale_baseline_lifecycle(tmp_path, capsys):
    write_repo(tmp_path, violation_files())
    baseline = tmp_path / "baseline.json"
    assert main(["--root", str(tmp_path), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()

    # fix the violation: the baselined fingerprint goes stale
    write_repo(tmp_path, {"src/m.py": "def f():\n    return 1\n"})
    assert main(["--root", str(tmp_path), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "stale baseline" in out

    assert (
        main(["--root", str(tmp_path), "--baseline", str(baseline), "--format", "json"])
        == 0
    )
    doc = json.loads(capsys.readouterr().out)
    (entry,) = doc["stale_baseline"]
    assert entry["rule"] == "DET001"
    assert entry["unused_count"] == 1

    # rewriting the baseline prunes the stale fingerprint (the old
    # baseline must be loaded for the prune count to be known)
    assert (
        main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
                str(baseline),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "1 stale fingerprint(s) pruned" in out
    assert json.loads(baseline.read_text())["suppressions"] == {}


# ---------------------------------------------------------------------------
# the repo itself stays clean
# ---------------------------------------------------------------------------


def test_repo_is_clean_under_strict(capsys):
    """The acceptance gate: the real tree passes --strict with no baseline."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[1]
    assert main(["--root", str(root), "--strict"]) == 0


# ---------------------------------------------------------------------------
# SCN001 — scenario schema sync (validator / injector / DESIGN.md)
# ---------------------------------------------------------------------------

_SCN_INJECTOR = """
    FAILURE_KINDS = ("node", "rack")

    class FailureInjector:
        def _inject(self, event):
            pass

        def _inject_node(self, event):
            pass

        def _inject_rack(self, event):
            pass
"""

_SCN_SCHEMA = """
    TOP_LEVEL_FIELDS = ("id", "app", "failures")
    DEGRADATION_KINDS = ()
"""

_SCN_DESIGN = """
    ## Scenario schema (repro.scenarios)

    | field | shape | notes |
    |---|---|---|
    | `id` | slug | required |
    | `app` | mapping | required |
    | `failures` | list | kinds `node`, `rack` |
"""


def test_scn001_quiet_when_everything_in_sync(tmp_path):
    project = run_fixture(
        tmp_path,
        {"src/injector.py": _SCN_INJECTOR, "src/schema.py": _SCN_SCHEMA},
        design=_SCN_DESIGN,
        rule_ids=["SCN001"],
    )
    assert rules_of(project) == []


def test_scn001_kind_without_inject_handler(tmp_path):
    injector = _SCN_INJECTOR.replace(
        'FAILURE_KINDS = ("node", "rack")',
        'FAILURE_KINDS = ("node", "rack", "gamma-ray")',
    )
    project = run_fixture(
        tmp_path,
        {"src/injector.py": injector, "src/schema.py": _SCN_SCHEMA},
        design=_SCN_DESIGN.replace("`node`, `rack`", "`node`, `rack`, `gamma-ray`"),
        rule_ids=["SCN001"],
    )
    messages = [f.message for f in project.findings]
    assert any("no `_inject_gamma-ray` handler" in m for m in messages)


def test_scn001_handler_without_declared_kind(tmp_path):
    injector = _SCN_INJECTOR + "\n    def _inject_flood(self, event):\n        pass\n"
    project = run_fixture(
        tmp_path,
        {"src/injector.py": injector, "src/schema.py": _SCN_SCHEMA},
        design=_SCN_DESIGN,
        rule_ids=["SCN001"],
    )
    messages = [f.message for f in project.findings]
    assert any("`_inject_flood` exists" in m and "not declared" in m for m in messages)


def test_scn001_field_drift_both_directions(tmp_path):
    schema = _SCN_SCHEMA.replace(
        '("id", "app", "failures")', '("id", "app", "failures", "retries")'
    )
    design = _SCN_DESIGN + "    | `budget` | int | undeclared |\n"
    project = run_fixture(
        tmp_path,
        {"src/injector.py": _SCN_INJECTOR, "src/schema.py": schema},
        design=design,
        rule_ids=["SCN001"],
    )
    messages = [f.message for f in project.findings]
    assert any("`retries`" in m and "undocumented" in m for m in messages)
    assert any("`budget`" in m and "validator rejects it" in m for m in messages)


def test_scn001_degradation_kind_must_be_failure_kind(tmp_path):
    schema = _SCN_SCHEMA.replace(
        "DEGRADATION_KINDS = ()", 'DEGRADATION_KINDS = ("brownout",)'
    )
    project = run_fixture(
        tmp_path,
        {"src/injector.py": _SCN_INJECTOR, "src/schema.py": schema},
        design=_SCN_DESIGN,
        rule_ids=["SCN001"],
    )
    messages = [f.message for f in project.findings]
    assert any("`brownout`" in m and "not a FAILURE_KINDS member" in m for m in messages)


def test_scn001_documented_kind_not_declared(tmp_path):
    design = _SCN_DESIGN.replace("`node`, `rack`", "`node`, `rack`, `quake`")
    project = run_fixture(
        tmp_path,
        {"src/injector.py": _SCN_INJECTOR, "src/schema.py": _SCN_SCHEMA},
        design=design,
        rule_ids=["SCN001"],
    )
    messages = [f.message for f in project.findings]
    assert any("`quake`" in m and "FAILURE_KINDS" in m for m in messages)


def test_scn001_warns_without_design_section(tmp_path):
    project = run_fixture(
        tmp_path,
        {"src/injector.py": _SCN_INJECTOR, "src/schema.py": _SCN_SCHEMA},
        design="# nothing relevant\n",
        rule_ids=["SCN001"],
    )
    findings = [f for f in project.findings if f.rule == "SCN001"]
    assert len(findings) == 1
    assert findings[0].severity is Severity.WARNING
    assert "no scenario-schema" in findings[0].message


def test_scn001_silent_without_scenario_dsl(tmp_path):
    project = run_fixture(
        tmp_path,
        {"src/other.py": "X = 1\n"},
        design=_SCN_DESIGN,
        rule_ids=["SCN001"],
    )
    assert rules_of(project) == []


def test_parse_scenario_schema_fields_and_kinds():
    import textwrap as _tw

    fields, kinds = parse_scenario_schema(_tw.dedent(_SCN_DESIGN))
    assert set(fields) == {"id", "app", "failures"}
    assert set(kinds) == {"node", "rack"}
    # tokens outside the failures row never count as kinds
    assert "slug" not in kinds and "mapping" not in kinds


def test_live_tree_scn001_clean():
    """The real src/ + DESIGN.md must satisfy SCN001 (the CI gate)."""
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    config = AnalysisConfig(root=root, dirs=("src",), rule_ids=("SCN001",))
    project = run_analysis(config)
    assert [f.message for f in project.findings] == []


# ---------------------------------------------------------------------------
# INS001 — inspect phase-span sync (profiler / bundle / DESIGN.md)
# ---------------------------------------------------------------------------

_INS_SPANS = """
    PHASES = ("token-wait", "snapshot")
"""

_INS_BUNDLE = """
    PHASE_SPANS = ("token-wait", "snapshot")
"""

_INS_DESIGN = """
    ## Run bundles & diffing (repro.inspect)

    | file | contents |
    |---|---|
    | `MANIFEST.json` | hashes |
    | `phases.json` | totals over the phases `token-wait`, `snapshot` |
"""


def _ins_fixture(tmp_path, spans=_INS_SPANS, bundle=_INS_BUNDLE, design=_INS_DESIGN):
    return run_fixture(
        tmp_path,
        {
            "src/repro/profiling/spans.py": spans,
            "src/repro/inspect/bundle.py": bundle,
        },
        design=design,
        rule_ids=["INS001"],
    )


def test_ins001_quiet_when_everything_in_sync(tmp_path):
    assert rules_of(_ins_fixture(tmp_path)) == []


def test_ins001_profiler_phase_missing_from_bundle(tmp_path):
    spans = _INS_SPANS.replace('"snapshot")', '"snapshot", "disk-io")')
    project = _ins_fixture(tmp_path, spans=spans)
    messages = [f.message for f in project.findings]
    assert any("`disk-io`" in m and "silently vanish" in m for m in messages)


def test_ins001_bundle_phase_profiler_never_emits(tmp_path):
    bundle = _INS_BUNDLE.replace('"snapshot")', '"snapshot", "warp")')
    design = _INS_DESIGN.replace("`snapshot`", "`snapshot`, `warp`")
    project = _ins_fixture(tmp_path, bundle=bundle, design=design)
    messages = [f.message for f in project.findings]
    assert any("`warp`" in m and "cannot occur" in m for m in messages)


def test_ins001_order_mismatch(tmp_path):
    bundle = 'PHASE_SPANS = ("snapshot", "token-wait")\n'
    project = _ins_fixture(tmp_path, bundle=bundle)
    messages = [f.message for f in project.findings]
    assert any("different order" in m for m in messages)


def test_ins001_documented_drift_both_directions(tmp_path):
    spans = _INS_SPANS.replace('"snapshot")', '"snapshot", "disk-io")')
    bundle = _INS_BUNDLE.replace('"snapshot")', '"snapshot", "disk-io")')
    design = _INS_DESIGN.replace("`snapshot`", "`snapshot`, `mystery-wait`")
    project = _ins_fixture(tmp_path, spans=spans, bundle=bundle, design=design)
    messages = [f.message for f in project.findings]
    assert any("`disk-io`" in m and "undocumented" in m for m in messages)
    assert any("`mystery-wait`" in m and "not declared" in m for m in messages)


def test_ins001_warns_without_design_table(tmp_path):
    project = _ins_fixture(tmp_path, design="# nothing relevant\n")
    findings = [f for f in project.findings if f.rule == "INS001"]
    assert len(findings) == 1
    assert findings[0].severity is Severity.WARNING
    assert "no `phases.json` row" in findings[0].message


def test_ins001_silent_without_inspect_layer(tmp_path):
    project = run_fixture(
        tmp_path,
        {"src/repro/profiling/spans.py": _INS_SPANS},
        design=_INS_DESIGN,
        rule_ids=["INS001"],
    )
    assert rules_of(project) == []


def test_ins001_ignores_tuples_outside_tracked_paths(tmp_path):
    # a PHASE_SPANS in some unrelated module must not be harvested
    project = run_fixture(
        tmp_path,
        {
            "src/repro/profiling/spans.py": _INS_SPANS,
            "src/repro/inspect/bundle.py": _INS_BUNDLE,
            "src/other.py": 'PHASE_SPANS = ("bogus",)\n',
        },
        design=_INS_DESIGN,
        rule_ids=["INS001"],
    )
    assert rules_of(project) == []


def test_parse_bundle_phases_table():
    import textwrap as _tw

    from repro.analysis.inspect_rule import parse_bundle_phases

    phases = parse_bundle_phases(_tw.dedent(_INS_DESIGN))
    assert set(phases) == {"token-wait", "snapshot"}
    # tokens outside the phases.json row never count
    assert "hashes" not in phases and "file" not in phases


def test_live_tree_ins001_clean():
    """The real src/ + DESIGN.md must satisfy INS001 (the CI gate)."""
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    config = AnalysisConfig(root=root, dirs=("src",), rule_ids=("INS001",))
    project = run_analysis(config)
    assert [f.message for f in project.findings] == []


# ---------------------------------------------------------------------------
# MON001 — monitoring vocabulary sync (SLO kinds / health states / DESIGN.md)
# ---------------------------------------------------------------------------

_MON_SLO = """
    SLO_KINDS = ("latency-p99", "checkpoint-staleness")
"""

_MON_HEALTH = """
    HEALTH_STATES = ("healthy", "degraded")
"""

_MON_DESIGN = """
    ## Live monitoring & SLOs (repro.monitor)

    ### SLO kinds

    | kind | signal |
    |---|---|
    | `latency-p99` | p99 of `ms_hau_tuple_latency_seconds` |
    | `checkpoint-staleness` | seconds since last commit |

    ### Health states

    | state | meaning |
    |---|---|
    | `healthy` | fine — prose mentions of `latency-p99` never count |
    | `degraded` | a sample went over bound |
"""


def _mon_fixture(tmp_path, slo=_MON_SLO, health=_MON_HEALTH, design=_MON_DESIGN):
    return run_fixture(
        tmp_path,
        {
            "src/repro/monitor/slo.py": slo,
            "src/repro/monitor/health.py": health,
        },
        design=design,
        rule_ids=["MON001"],
    )


def test_mon001_quiet_when_in_sync(tmp_path):
    assert rules_of(_mon_fixture(tmp_path)) == []


def test_mon001_declared_but_undocumented(tmp_path):
    slo = _MON_SLO.replace('"checkpoint-staleness")', '"checkpoint-staleness", "recovery-time")')
    project = _mon_fixture(tmp_path, slo=slo)
    messages = [f.message for f in project.findings]
    assert any("`recovery-time`" in m and "not documented" in m for m in messages)


def test_mon001_documented_but_undeclared(tmp_path):
    design = _MON_DESIGN + "    | `recovering` | documented only |\n"
    project = _mon_fixture(tmp_path, design=design)
    findings = [f for f in project.findings if f.rule == "MON001"]
    assert len(findings) == 1
    assert "`recovering`" in findings[0].message
    assert "HEALTH_STATES" in findings[0].message
    assert findings[0].path.endswith("DESIGN.md")


def test_mon001_first_cell_and_subsection_scoping():
    from repro.analysis.monitor_rule import parse_monitor_schema

    documented = parse_monitor_schema(textwrap.dedent(_MON_DESIGN))
    assert set(documented["SLO_KINDS"]) == {"latency-p99", "checkpoint-staleness"}
    assert set(documented["HEALTH_STATES"]) == {"healthy", "degraded"}
    # nothing documented outside the live-monitoring section
    assert parse_monitor_schema("## Other\n| `healthy` | x |\n") == {
        "SLO_KINDS": {},
        "HEALTH_STATES": {},
    }


def test_mon001_non_literal_vocabulary_rejected(tmp_path):
    project = _mon_fixture(tmp_path, health="HEALTH_STATES = tuple(x for x in y)\n")
    messages = [f.message for f in project.findings]
    assert any("literal tuple/list" in m for m in messages)


def test_mon001_warns_when_design_missing(tmp_path):
    project = run_fixture(
        tmp_path,
        {"src/repro/monitor/slo.py": _MON_SLO},
        rule_ids=["MON001"],
    )
    findings = [f for f in project.findings if f.rule == "MON001"]
    assert len(findings) == 1
    assert findings[0].severity is Severity.WARNING


def test_mon001_ignores_vocabulary_outside_monitor_paths(tmp_path):
    project = run_fixture(
        tmp_path,
        {"src/other.py": 'SLO_KINDS = ("bogus",)\n'},
        design=_MON_DESIGN,
        rule_ids=["MON001"],
    )
    # only the documented-but-undeclared direction is impossible to hit
    # here: with no tracked declarations at all, the rule stays silent
    assert rules_of(project) == []


def test_live_tree_mon001_clean():
    """The real src/ + DESIGN.md must satisfy MON001 (the CI gate)."""
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    config = AnalysisConfig(root=root, dirs=("src",), rule_ids=("MON001",))
    project = run_analysis(config)
    assert [f.message for f in project.findings] == []
