"""Regression tests pinning bugs found (and fixed) during development.

Each test encodes the failure mode so it can never silently return.
"""


from repro.cluster import ClusterSpec
from repro.core import MSSrcAP
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph
from repro.simulation import Environment
from repro.storage.shared import SharedStorage, StorageClient


def test_storage_versions_never_recycled_after_gc():
    """Bug: version = len(versions) recycled numbers after GC, so a
    recovery could read a stale checkpoint under a reused version id."""
    from repro.cluster import DataCenter

    env = Environment()
    dc = DataCenter(env, ClusterSpec(workers=1, spares=0, racks=1))
    storage = SharedStorage(env, dc.storage_node)
    client = StorageClient(dc.workers[0], storage)

    def proc():
        v0 = yield from client.write("ns", "k", "a", size=10)
        v1 = yield from client.write("ns", "k", "b", size=10)
        storage.drop_versions_before("ns", "k", v1)
        v2 = yield from client.write("ns", "k", "c", size=10)
        assert v2 > v1 > v0
        assert storage.lookup("ns", "k", v2).value == "c"

    p = env.process(proc())
    env.run(until=p)


def test_timeout_is_not_resumed_early():
    """Bug: a settled-but-unfired Timeout resumed its waiter immediately,
    spinning zero-delay loops forever."""
    env = Environment()
    trace = []

    def proc():
        for _ in range(3):
            yield env.timeout(1.0)
            trace.append(env.now)

    env.process(proc())
    env.run(until=10.0)
    assert trace == [1.0, 2.0, 3.0]


def test_sources_resend_saved_inflight_outputs_after_recovery():
    """Bug: only _main_loop re-sent out_tuples; source HAUs dropped their
    saved in-flight copies, losing tuples after an ap recovery."""

    def run(fail):
        g, holder = make_chain_graph(source_count=60, interval=0.02, window=5, tuple_size=200_000)
        env = Environment()
        scheme = MSSrcAP(checkpoint_times=[0.5], enable_recovery=fail)
        rt = DSPSRuntime(
            env,
            StreamApplication(name="t", graph=g),
            scheme,
            RuntimeConfig(seed=3, cluster=ClusterSpec(workers=4, spares=6, racks=2)),
        )
        rt.start()
        if fail:

            def killer():
                # strike moments after the round starts, while the source's
                # out-copies are the only record of its post-token tuples
                yield env.timeout(0.55)
                rt.haus["src"].node.fail("regression")

            env.process(killer())
        env.run(until=25.0)
        return holder["sink"].payload_log

    assert run(True) == run(False)


def test_idle_hau_still_reaches_safepoints():
    """Bug: an idle HAU blocked on inbox.get() never ran maybe_checkpoint,
    starving baseline periodic checkpoints and queued replay jobs."""
    from repro.core import BaselineScheme

    g, _holder = make_chain_graph(source_count=5, interval=0.05)
    env = Environment()
    scheme = BaselineScheme(checkpoint_period=1.0)
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        scheme,
        RuntimeConfig(seed=3, cluster=ClusterSpec(workers=4, spares=1, racks=1)),
    )
    rt.start()
    env.run(until=10.0)  # stream dries up at t=0.25
    # every HAU kept checkpointing long after the stream went idle
    from collections import Counter

    counts = Counter(bd.hau_id for bd in scheme.breakdowns)
    assert all(counts[h] >= 5 for h in ("src", "agg", "mid", "sink")), counts


def test_round_state_does_not_leak_across_recovery():
    """Bug: RoundStates of a round in flight at the failure instant leaked
    into the restarted application and triggered spurious checkpoints."""
    g, _ = make_chain_graph(source_count=100, interval=0.05, tuple_size=300_000)
    env = Environment()
    scheme = MSSrcAP(checkpoint_times=[1.0, 2.0], enable_recovery=True)
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        scheme,
        RuntimeConfig(seed=3, cluster=ClusterSpec(workers=4, spares=6, racks=2)),
    )
    rt.start()

    def killer():
        yield env.timeout(2.05)  # round 2 is mid-flight
        rt.haus["agg"].node.fail("regression")

    env.process(killer())
    env.run(until=30.0)
    assert scheme.recoveries
    # no un-snapshotted round state survives the rollback
    stale = [st for st in scheme.rounds.values() if not st.write_done]
    assert all(st.snapshot_done or st.round_id > 2 for st in stale) or not stale
