"""Tests for repro.profiling: timeline reconstruction, critical paths,
straggler attribution, Chrome-trace (Perfetto) export, and the CLI.

The acceptance invariant: a round's critical-path hops are contiguous
and tile ``[round.start, round.complete]`` exactly, so the reported
seconds equal the round duration — asserted here with the hop sequence
hand-verified against the raw trace events.
"""

import json

import pytest

from repro.cluster import ClusterSpec
from repro.core import MSSrc, MSSrcAP
from repro.dsps import DSPSRuntime, RuntimeConfig, StreamApplication
from repro.dsps.testing import make_chain_graph, make_diamond_graph
from repro.metrics.breakdown import CheckpointLog
from repro.observability import write_jsonl
from repro.profiling import (
    PHASES,
    SPAN_KINDS,
    Timeline,
    build_timeline,
    compute_critical_path,
    critical_paths,
    dumps_chrome_trace,
    straggler_report,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.profiling.cli import main
from repro.profiling.spans import HAUCheckpoint, RoundWave
from repro.simulation import Environment


def deploy(graph_fn, scheme, seed=7, workers=6, spares=6, **graph_kw):
    g, holder = graph_fn(**graph_kw)
    env = Environment()
    env.enable_tracing()
    rt = DSPSRuntime(
        env,
        StreamApplication(name="t", graph=g),
        scheme,
        RuntimeConfig(seed=seed, cluster=ClusterSpec(workers=workers, spares=spares, racks=2)),
    )
    rt.start()
    return env, rt, holder


def kill_at(env, rt, when, victims):
    def killer():
        yield env.timeout(when)
        for h in victims:
            rt.haus[h].node.fail("test")

    env.process(killer())


def first(tracer, kind, subject=None, **match):
    for e in tracer.select(kind=kind):
        if subject is not None and e.subject != subject:
            continue
        if all(e.get(k) == v for k, v in match.items()):
            return e
    raise AssertionError(f"no {kind} event matching subject={subject} {match}")


# -- timeline reconstruction ----------------------------------------------------


def test_round_wave_reconstructs_every_hau_with_ordered_phases():
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    tl = build_timeline(env.trace)
    assert tl.scheme == "ms-src"
    wave = tl.round(1)
    assert wave is not None and wave.complete
    assert set(wave.haus) == set(rt.app.graph.haus)
    assert wave.incomplete_haus() == []
    for hc in wave.haus.values():
        assert hc.complete and hc.total is not None and hc.total > 0.0
        spans = hc.phase_spans()
        assert [s.name for s in spans] == list(PHASES)
        # phases are causally ordered and contiguous
        for a, b in zip(spans, spans[1:]):
            assert a.end == b.start
    # wave covers [round.start, round.complete]
    assert wave.duration == pytest.approx(
        max(hc.commit_at for hc in wave.haus.values()) - wave.started_at,
        abs=1e-6,
    )


def test_timeline_agrees_with_metrics_breakdown():
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    wave = build_timeline(env.trace).round(1)
    log = scheme.checkpoint_logs()[0]
    for hau_id, bd in log.haus.items():
        hc = wave.haus[hau_id]
        assert hc.write_start_at == pytest.approx(bd.write_start_at)
        assert hc.commit_at == pytest.approx(bd.write_end_at)
        assert hc.tokens_done_at == pytest.approx(bd.tokens_done_at)


def test_recovery_timeline_from_traced_failure():
    scheme = MSSrcAP(checkpoint_times=[1.0], enable_recovery=True)
    env, rt, _ = deploy(make_chain_graph, scheme, source_count=400)
    kill_at(env, rt, 6.0, ["agg"])
    env.run(until=25.0)
    tl = build_timeline(env.trace)
    assert len(tl.recoveries) == 1
    rec = tl.recoveries[0]
    assert rec.complete and rec.dead == "agg"
    # kill_at fails the node directly (no injector), so there is no
    # failure.inject event — only the watcher's detection
    assert rec.detected_at is not None
    assert rec.total is not None and rec.total > 0.0
    # every recovered HAU has stacked reload -> disk-io -> deserialize spans
    assert len(rec.haus) == len(env.trace.select(kind="recovery.hau"))
    for rh in rec.haus.values():
        spans = rh.phase_spans()
        assert [s.name for s in spans] == ["reload", "disk-io", "deserialize"]
        for a, b in zip(spans, spans[1:]):
            assert a.end == b.start
    # recovery.hau.start anchors the phases
    starts = env.trace.select(kind="recovery.hau.start")
    assert sorted(e.subject for e in starts) == sorted(rec.haus)


# -- critical paths: acceptance invariant ---------------------------------------


def assert_tiles_round(cp, tracer, round_id):
    """The acceptance criterion: hops are contiguous and tile the round."""
    start = first(tracer, "checkpoint.round.start", round=round_id)
    complete = first(tracer, "checkpoint.round.complete", round=round_id)
    assert cp.started_at == start.t and cp.completed_at == complete.t
    assert cp.seconds == pytest.approx(complete.t - start.t, abs=1e-9)
    assert cp.hop_sum() == pytest.approx(cp.seconds, abs=1e-9)
    assert cp.hops[0].start == start.t and cp.hops[-1].end == complete.t
    for a, b in zip(cp.hops, cp.hops[1:]):
        assert a.end == b.start


def test_ms_src_ap_critical_path_hand_verified_against_trace():
    """MS-src+ap on a chain: the async source gates the round, and every
    hop boundary is pinned to a specific raw trace event."""
    scheme = MSSrcAP(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    tr = env.trace
    cp = compute_critical_path(tr, 1)
    assert cp is not None
    assert_tiles_round(cp, tr, 1)
    assert cp.gating_hau == "src"
    assert [h.kind for h in cp.hops] == [
        "round-start",
        "control-hop",
        "command-wait",
        "safepoint-wait",
        "snapshot",
        "disk-io",
        "round-complete",
    ]
    # hand-verify each boundary against the trace events it came from
    ctrl = first(tr, "control.send", subject="src")
    cmd = first(tr, "checkpoint.command", subject="src", round=1)
    td = first(tr, "checkpoint.tokens.done", subject="src", round=1)
    cs = first(tr, "checkpoint.start", subject="src", round=1)
    ws = first(tr, "checkpoint.write.start", subject="src", round=1)
    commit = first(tr, "checkpoint.commit", subject="src", round=1)
    hop = {h.kind: h for h in cp.hops}
    assert hop["control-hop"].start == ctrl.t and hop["control-hop"].end == cmd.t
    assert hop["command-wait"].start == cmd.t and hop["command-wait"].end == td.t
    assert hop["safepoint-wait"].start == td.t and hop["safepoint-wait"].end == cs.t
    assert hop["snapshot"].start == cs.t and hop["snapshot"].end == ws.t
    assert hop["disk-io"].start == ws.t and hop["disk-io"].end == commit.t
    assert hop["round-complete"].start == commit.t


def test_ms_src_cascade_critical_path_walks_the_whole_chain():
    """MS-src: the synchronous token cascade makes the sink the gate and
    the path traverses every edge src -> agg -> mid -> sink."""
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_chain_graph, scheme)
    env.run(until=10.0)
    cp = compute_critical_path(env.trace, 1)
    assert cp is not None
    assert_tiles_round(cp, env.trace, 1)
    assert cp.gating_hau == "sink"
    per_hau = ["token-wait", "safepoint-wait", "snapshot", "disk-io"]
    assert [h.kind for h in cp.hops] == (
        ["round-start", "control-hop", "command-wait",
         "safepoint-wait", "snapshot", "disk-io"]
        + (["token-forward", "token-hop"] + per_hau) * 3
        + ["round-complete"]
    )
    assert [h.subject for h in cp.hops if h.kind == "token-hop"] == [
        "src->agg", "agg->mid", "mid->sink",
    ]


def test_diamond_critical_path_takes_max_over_parents():
    """The join waits for both branches; the path must follow whichever
    token arrived last (verified directly against the arrivals)."""
    scheme = MSSrc(checkpoint_times=[1.0])
    env, rt, _ = deploy(make_diamond_graph, scheme)
    env.run(until=15.0)
    tr = env.trace
    cp = compute_critical_path(tr, 1)
    assert cp is not None
    assert_tiles_round(cp, tr, 1)
    assert cp.gating_hau == "sink"
    join_recvs = [e for e in tr.select(kind="token.recv") if e.subject == "join"]
    assert len(join_recvs) == 2
    last_origin = max(join_recvs, key=lambda e: (e.t, e.seq)).get("origin")
    hop_edges = [h.subject for h in cp.hops if h.kind == "token-hop"]
    assert f"{last_origin}->join" in hop_edges
    other = ({"a", "b"} - {last_origin}).pop()
    assert f"{other}->join" not in hop_edges


def test_critical_paths_covers_every_complete_round():
    scheme = MSSrcAP(checkpoint_times=[1.0, 4.0])
    env, rt, _ = deploy(make_chain_graph, scheme, source_count=400)
    env.run(until=10.0)
    paths = critical_paths(env.trace)
    assert [p.round_id for p in paths] == [1, 2]
    for p in paths:
        assert_tiles_round(p, env.trace, p.round_id)


# -- critical paths: deterministic tie-breaks (synthetic traces) ----------------


def ev(seq, t, kind, subject, **data):
    return {"seq": seq, "t": t, "kind": kind, "subject": subject, "data": data}


def two_source_round(commit_a=1.05, commit_b=1.05, a="agg", b="agg2"):
    """A synthetic MS-src+ap-style round: two sources, no tokens."""
    events = [ev(1, 1.0, "checkpoint.round.start", "sch", round=1)]
    seq = 2
    for hau, commit in ((a, commit_a), (b, commit_b)):
        events += [
            ev(seq, 1.0, "control.send", hau, message="checkpoint"),
            ev(seq + 1, 1.001, "checkpoint.command", hau, round=1, via="control"),
            ev(seq + 2, 1.001, "checkpoint.tokens.done", hau, round=1, edges=0),
            ev(seq + 3, 1.002, "checkpoint.start", hau, round=1, mode="async"),
            ev(seq + 4, 1.003, "checkpoint.write.start", hau, round=1),
            ev(seq + 5, commit, "checkpoint.commit", hau, round=1, bytes=10),
        ]
        seq += 6
    last = max(commit_a, commit_b)
    events.append(ev(seq, last, "checkpoint.round.complete", "sch", round=1))
    return events


def test_gating_commit_tie_breaks_by_smallest_hau_id():
    # exact tie: the smaller HAU id wins, and "agg" < "agg2" despite the
    # shared prefix
    cp = compute_critical_path(two_source_round(), 1)
    assert cp.gating_hau == "agg"
    # no tie: the later commit gates regardless of id order
    cp = compute_critical_path(two_source_round(commit_b=1.06), 1)
    assert cp.gating_hau == "agg2"
    assert cp.seconds == pytest.approx(0.06)
    assert cp.hop_sum() == pytest.approx(cp.seconds)


def front_token_round(recv_m1=1.01, recv_m2=1.01):
    """Two upstream HAUs insert front tokens toward one receiver ``z``."""
    events = [
        ev(1, 1.0, "checkpoint.round.start", "sch", round=1),
        ev(2, 1.0, "control.send", "m1", message="checkpoint"),
        ev(3, 1.0, "control.send", "m2", message="checkpoint"),
        ev(4, 1.001, "checkpoint.command", "m1", round=1, via="control"),
        ev(5, 1.001, "checkpoint.command", "m2", round=1, via="control"),
        ev(6, 1.002, "token.send", "m1", round=1, edge="m1[0]->z[0]", front=True),
        ev(7, 1.002, "token.send", "m2", round=1, edge="m2[0]->z[1]", front=True),
        ev(8, recv_m2, "token.recv", "z", round=1, origin="m2", edge_idx=1),
        ev(9, recv_m1, "token.recv", "z", round=1, origin="m1", edge_idx=0),
        ev(10, max(recv_m1, recv_m2), "checkpoint.tokens.done", "z", round=1, edges=2),
        ev(11, 1.011, "checkpoint.start", "z", round=1, mode="sync"),
        ev(12, 1.012, "checkpoint.write.start", "z", round=1),
        ev(13, 1.02, "checkpoint.commit", "z", round=1, bytes=10),
        ev(14, 1.02, "checkpoint.round.complete", "sch", round=1),
    ]
    return events


def test_same_instant_arrivals_tie_break_by_smallest_origin():
    cp = compute_critical_path(front_token_round(), 1)
    assert cp.gating_hau == "z"
    assert [h.subject for h in cp.hops if h.kind == "token-hop"] == ["m1->z"]
    # the front token roots through token-insert + control-hop + round-start
    assert [h.kind for h in cp.hops] == [
        "round-start", "control-hop", "token-insert", "token-hop",
        "token-wait", "safepoint-wait", "snapshot", "disk-io",
        "round-complete",
    ]
    assert cp.hop_sum() == pytest.approx(cp.seconds)
    # a genuinely later arrival wins over id order
    cp = compute_critical_path(front_token_round(recv_m2=1.015), 1)
    assert [h.subject for h in cp.hops if h.kind == "token-hop"] == ["m2->z"]


def test_critical_path_absent_for_incomplete_round():
    events = two_source_round()[:-1]  # drop round.complete
    assert compute_critical_path(events, 1) is None
    assert critical_paths(events) == []


# -- stragglers -----------------------------------------------------------------


def test_straggler_report_flags_above_k_times_median():
    wave = RoundWave(round_id=1, scheme="sch", started_at=0.0, completed_at=6.0)
    for hau, total in (("a", 1.0), ("b", 1.2), ("c", 5.0)):
        wave.haus[hau] = HAUCheckpoint(
            hau_id=hau, round_id=1, command_at=0.0, commit_at=total
        )
    tl = Timeline(rounds=[wave], scheme="sch")
    report = straggler_report(tl, k=2.0)
    assert [(s.hau_id, s.round_id) for s in report] == [("c", 1)]
    (s,) = report
    assert s.median_seconds == pytest.approx(1.2)
    assert s.ratio == pytest.approx(5.0 / 1.2)
    # raising k past the outlier silences the report
    assert straggler_report(tl, k=5.0) == []


def test_straggler_report_needs_at_least_two_samples():
    wave = RoundWave(round_id=1, scheme="sch", started_at=0.0)
    wave.haus["a"] = HAUCheckpoint(hau_id="a", round_id=1, command_at=0.0, commit_at=9.0)
    assert straggler_report(Timeline(rounds=[wave])) == []


# -- interrupted rounds (breakdown regression) ----------------------------------


def test_checkpoint_log_lists_haus_that_never_reported():
    # Regression: a round interrupted before an HAU even saw the command
    # used to read as clean — expected_haus makes the absence visible.
    log = CheckpointLog(round_id=1, started_at=1.0, expected_haus=("a", "b", "c"))
    done = log.breakdown("a")
    done.tokens_done_at = 1.1
    done.write_start_at = 1.2
    done.write_end_at = 1.3
    stalled = log.breakdown("b")
    stalled.tokens_done_at = 1.1  # died before its write finished
    assert not log.complete
    assert log.incomplete_haus() == ["b", "c"]


def test_mid_round_failure_reports_incomplete_haus_not_silence():
    """A failure landing mid checkpoint round must leave the interrupted
    round marked incomplete with the affected HAUs listed — including
    HAUs the token cascade never reached."""
    scheme = MSSrc(checkpoint_times=[1.0], enable_recovery=True)
    env, rt, _ = deploy(make_chain_graph, scheme, source_count=400)
    # src commits ~1.009 and agg's write runs ~1.010-1.022 (seed 7):
    # killing agg at 1.012 interrupts the round mid-cascade
    kill_at(env, rt, 1.012, ["agg"])
    env.run(until=20.0)
    log = scheme.checkpoint_logs()[0]
    assert log.round_id == 1 and not log.complete
    incomplete = log.incomplete_haus()
    assert "agg" in incomplete
    # mid and sink never saw a token: only expected_haus can report them
    assert "mid" in incomplete and "sink" in incomplete
    assert "src" not in incomplete  # src committed before the failure
    assert set(log.expected_haus) == set(rt.app.graph.haus)
    # the profiler shows the same truncation from the trace alone
    wave = build_timeline(env.trace).round(1)
    assert not wave.complete
    assert "agg" in wave.incomplete_haus()
    assert compute_critical_path(env.trace, 1) is None


# -- chrome trace export --------------------------------------------------------


def run_chain_trace(seed=7):
    scheme = MSSrcAP(checkpoint_times=[1.0, 4.0], enable_recovery=True)
    env, rt, _ = deploy(make_chain_graph, scheme, seed=seed, source_count=400)
    kill_at(env, rt, 6.0, ["agg"])
    env.run(until=25.0)
    return env.trace


def test_chrome_trace_is_valid_trace_event_json():
    trace = to_chrome_trace(run_chain_trace())
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events
    pids = set()
    for e in events:
        assert e["ph"] in ("X", "i", "M")
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        pids.add(e["pid"])
        if e["ph"] == "X":
            assert isinstance(e["ts"], int) and e["ts"] >= 0
            assert isinstance(e["dur"], int) and e["dur"] >= 0
        elif e["ph"] == "i":
            assert e["s"] == "g"
    # every pid is named via metadata
    named = {
        e["pid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert named == pids
    # per-HAU checkpoint phases and critical-path hops are present
    cats = {e.get("cat") for e in events if e["ph"] == "X"}
    assert {"round", "checkpoint", "critical-path", "recovery"} <= cats


def test_chrome_trace_byte_identical_across_same_seed_runs(tmp_path):
    a = dumps_chrome_trace(to_chrome_trace(run_chain_trace()))
    b = dumps_chrome_trace(to_chrome_trace(run_chain_trace()))
    assert a == b
    assert a.encode("utf-8") == b.encode("utf-8")
    # and the file writer emits exactly that payload
    path = tmp_path / "run.perfetto.json"
    n = write_chrome_trace(run_chain_trace(), str(path))
    assert n > 0
    assert path.read_text(encoding="utf-8") == a
    json.loads(a)  # parses cleanly


# -- CLI ------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("profiling") / "run.trace.jsonl"
    write_jsonl(run_chain_trace(), str(path))
    return str(path)


def test_cli_table_output(trace_file, capsys):
    assert main([trace_file, "--critical-path"]) == 0
    out = capsys.readouterr().out
    assert "Checkpoint rounds" in out
    assert "Critical path: round 1" in out
    assert "Recoveries" in out


def test_cli_round_filter(trace_file, capsys):
    assert main([trace_file, "--round", "1", "--critical-path"]) == 0
    out = capsys.readouterr().out
    assert "Critical path: round 1" in out
    assert "Critical path: round 2" not in out


def test_cli_json_output(trace_file, capsys):
    assert main([trace_file, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    body = payload["trace"]
    assert {"timeline", "critical_paths", "stragglers"} <= set(body)
    assert [p["round"] for p in body["critical_paths"]] == [1, 2]
    for p in body["critical_paths"]:
        assert p["seconds"] == pytest.approx(
            sum(h["duration"] for h in p["hops"]), abs=1e-9
        )
    assert body["timeline"]["recoveries"]


def test_cli_chrome_trace_output(trace_file, tmp_path, capsys):
    out_path = tmp_path / "cli.perfetto.json"
    assert main([trace_file, "--format", "chrome-trace", "-o", str(out_path)]) == 0
    trace = json.loads(out_path.read_text(encoding="utf-8"))
    assert trace["traceEvents"]


def test_cli_missing_trace_file_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_unknown_scheme_exits_two(capsys):
    assert main(["--schemes", "warp-drive"]) == 2
    assert "error:" in capsys.readouterr().err


# -- vocabulary -----------------------------------------------------------------


def test_span_kinds_are_a_subset_of_tracer_kinds():
    from repro.observability.tracer import KINDS

    assert set(SPAN_KINDS) <= set(KINDS)
    assert len(SPAN_KINDS) == len(set(SPAN_KINDS))
