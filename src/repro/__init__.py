"""Meteor Shower reproduction — a reliable stream processing system.

Full Python reproduction of *Meteor Shower: A Reliable Stream Processing
System for Commodity Data Centers* (Wang, Peh, Koukoumidis, Tao, Chan;
IEEE IPDPS 2012) on a deterministic discrete-event cluster simulator.

Layering (bottom-up):

* :mod:`repro.simulation` — the discrete-event kernel;
* :mod:`repro.cluster`, :mod:`repro.storage` — nodes, racks, channels,
  shared checkpoint storage;
* :mod:`repro.dsps` — the distributed stream processing engine (HAUs,
  query networks, token-aware SPE loops);
* :mod:`repro.state` — state-size tracking and profiling;
* :mod:`repro.core` — **the paper's contribution**: the baseline and the
  three Meteor Shower variants, plus global-rollback recovery;
* :mod:`repro.failures` — the Table-I failure model and burst injector;
* :mod:`repro.apps` — the three evaluation applications (TMI, BCP,
  SignalGuru) with real kernels;
* :mod:`repro.metrics`, :mod:`repro.harness` — measurement and the
  per-figure experiment drivers;
* :mod:`repro.observability` — the structured trace spine: checkpoint /
  token / failure / recovery timelines as deterministic JSONL.

Quick start::

    from repro.harness import ExperimentConfig, run_experiment
    res = run_experiment(ExperimentConfig(app="bcp", scheme="ms-src+ap",
                                          n_checkpoints=3))
    print(res.throughput, res.latency)

See README.md for the tour and EXPERIMENTS.md for paper-vs-measured
results.
"""

__version__ = "1.0.0"

__all__ = [
    "simulation",
    "cluster",
    "storage",
    "dsps",
    "state",
    "core",
    "failures",
    "apps",
    "metrics",
    "harness",
    "observability",
]
