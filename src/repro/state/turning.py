"""Turning-point detection and instantaneous change rate (ICR).

Each dynamic HAU "records its recent few state sizes and detects the
turning points (local extrema)" (§III-C2) and, in alert mode, reports
the turning point together with the ICR — the slope of the new segment
starting at the turning point (§III-C3: "the ICR of -50 means that
HAU1's state size will decrease by 50 per unit of time in the near
future").

The detector is streaming: feed ``observe(t, size)`` samples; it emits a
:class:`TurningPoint` when the series' direction flips.  The ICR at a
turning point is the slope *leaving* the point — in a live system this is
known "only shortly after" the point; the paper ignores that small lag
and so do we, by emitting the turning point when the next sample reveals
the new slope.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TurningPoint:
    """A local extremum of a state-size series."""

    time: float
    size: float
    icr: float  # slope leaving the point (bytes per second)
    kind: str  # "min" | "max"


def _direction(delta: float, tolerance: float) -> int:
    if delta > tolerance:
        return 1
    if delta < -tolerance:
        return -1
    return 0


class TurningPointDetector:
    """Streaming local-extrema detector with slope (ICR) reporting.

    ``tolerance`` suppresses jitter: size deltas within ±tolerance count
    as flat and do not flip the direction.
    """

    def __init__(self, tolerance: float = 0.0):
        self.tolerance = float(tolerance)
        self._prev: tuple[float, float] | None = None
        self._direction = 0  # -1 falling, +1 rising, 0 unknown/flat
        self._candidate: tuple[float, float] | None = None

    def observe(self, time: float, size: float) -> TurningPoint | None:
        """Feed one sample; returns a turning point if one is revealed."""
        if self._prev is None:
            self._prev = (time, size)
            return None
        prev_t, prev_s = self._prev
        if time < prev_t:
            raise ValueError("samples must be time-ordered")
        if time == prev_t:
            self._prev = (time, size)
            return None
        new_dir = _direction(size - prev_s, self.tolerance)
        result: TurningPoint | None = None
        if new_dir != 0 and self._direction != 0 and new_dir != self._direction:
            # the previous sample was an extremum; ICR is the slope leaving it
            icr = (size - prev_s) / (time - prev_t)
            kind = "max" if self._direction > 0 else "min"
            result = TurningPoint(time=prev_t, size=prev_s, icr=icr, kind=kind)
        if new_dir != 0:
            self._direction = new_dir
        self._prev = (time, size)
        return result

    def current_slope(self) -> int:
        return self._direction

    def reset(self) -> None:
        self._prev = None
        self._direction = 0
        self._candidate = None


def rebuild_series(
    turning_points: list[tuple[float, float]], times: list[float]
) -> list[float]:
    """Linear interpolation between turning points (§III-C2, step two).

    Dynamic HAUs report only turning points to keep network traffic low;
    the controller "roughly recovers" intermediate sizes by linear
    interpolation.  ``turning_points`` is a time-sorted list of (t, size).
    Queries outside the covered range clamp to the nearest endpoint.
    """
    if not turning_points:
        return [0.0 for _ in times]
    pts = sorted(turning_points)
    out: list[float] = []
    for t in times:
        if t <= pts[0][0]:
            out.append(pts[0][1])
            continue
        if t >= pts[-1][0]:
            out.append(pts[-1][1])
            continue
        # binary search would be overkill for the few points involved
        for (t0, s0), (t1, s1) in zip(pts, pts[1:]):
            if t0 <= t <= t1:
                frac = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
                out.append(s0 + frac * (s1 - s0))
                break
    return out
