"""Declarative state-size hints and the sampling estimator.

The paper's precompiler (§III-C1) scans C++ operator classes and emits a
``state_size()`` member that *samples* container elements (3 random
samples by default) instead of walking every element.  Developers can
hint a fixed ``element_size`` or explicit ``length``/``element_size``
expressions for opaque containers.

Here the same contract is expressed as :class:`StateHint` entries on the
operator class; :func:`estimate_state_size` implements the generated
function, including three-point sampling (first / middle / last, the
deterministic analogue of the paper's random samples).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

DEFAULT_SAMPLES = 3


@dataclass(frozen=True)
class StateHint:
    """How to size one state attribute.

    Exactly mirrors the paper's comment annotations:

    * ``element_size`` — every element has this fixed nominal size
      (``// state element_size=1024``).
    * ``length_fn`` / ``element_size_fn`` — explicit accessors for
      user-defined containers (``length="idx->count()"``).
    * ``samples`` — number of elements sampled when sizes vary
      (``// state sample=N``).
    """

    element_size: int | None = None
    length_fn: Callable[[Any], int] | None = None
    element_size_fn: Callable[[Any], int] | None = None
    samples: int = DEFAULT_SAMPLES


def nominal_size(value: Any) -> int:
    """Nominal byte size of one state element.

    Workload objects carry an explicit ``nominal_size`` attribute or a
    ``size`` field; plain scalars fall back to 8 bytes (a C++ double /
    pointer).  This is the declared-size convention of DESIGN.md.
    """
    explicit = getattr(value, "nominal_size", None)
    if explicit is not None:
        return int(explicit)
    explicit = getattr(value, "size", None)
    if isinstance(explicit, (int, float)) and not isinstance(explicit, bool):
        return int(explicit)
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, dict):
        return sum(nominal_size(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(nominal_size(v) for v in value)
    return 8


def _sample_container_size(container: Any, hint: StateHint) -> int:
    """The generated-code pattern: len * mean(sampled element sizes)."""
    try:
        length = len(container)
    except TypeError:
        return 0
    if length == 0:
        return 0
    if isinstance(container, dict):
        elements: list[Any] = list(container.values())
    else:
        elements = list(container)
    if hint.element_size is not None:
        return length * hint.element_size
    n = max(1, min(hint.samples, length))
    # deterministic analogue of the paper's first/middle/last sampling
    idxs = sorted({0, length - 1, length // 2} if n >= 3 else {0, length - 1})
    idxs = list(idxs)[:n]
    sampled = [nominal_size(elements[i]) for i in idxs]
    return int(length * (sum(sampled) / len(sampled)))


def estimate_state_size(operator: Any) -> int:
    """Total estimated state size of an operator, in bytes.

    Walks ``operator.state_attrs``; for each attribute applies its
    :class:`StateHint` (if any) or the default sampled estimate.  Unknown
    (non-container, non-hinted) attributes contribute their nominal size,
    matching the precompiler's "ignore what it cannot see" behaviour only
    for genuinely opaque objects.
    """
    total = 0
    hints = getattr(operator, "state_hints", {}) or {}
    for attr in getattr(operator, "state_attrs", ()):
        value = getattr(operator, attr, None)
        if value is None:
            continue
        hint = hints.get(attr)
        if hint is not None and hint.length_fn is not None:
            length = hint.length_fn(value)
            if length <= 0:
                continue
            if hint.element_size_fn is not None:
                total += length * hint.element_size_fn(value)
            elif hint.element_size is not None:
                total += length * hint.element_size
            continue
        if isinstance(value, (list, tuple, dict, set)):
            total += _sample_container_size(value, hint or StateHint())
        elif isinstance(value, (int, float, bool)):
            total += 8
        elif isinstance(value, (bytes, bytearray, str)):
            total += len(value)
        else:
            total += nominal_size(value)
    return total
