"""State-size machinery for application-aware checkpointing (§III-C).

Replaces the paper's C++ precompiler with declarative hints: an operator
lists its state attributes and optional :class:`StateHint`s; sampling
estimators produce the cheap ``state_size()`` the controller consumes.

Also home to the runtime side of §III-C2: turning-point detection with
instantaneous change rates (ICR), dynamic-HAU classification, and the
profiling pass that derives the alert-mode threshold ``smax``.
"""

from repro.state.spec import StateHint, estimate_state_size, nominal_size
from repro.state.turning import TurningPointDetector, TurningPoint
from repro.state.profile import (
    StateProfile,
    ProfileResult,
    is_dynamic,
    MIN_RELAXATION,
)

__all__ = [
    "StateHint",
    "estimate_state_size",
    "nominal_size",
    "TurningPointDetector",
    "TurningPoint",
    "StateProfile",
    "ProfileResult",
    "is_dynamic",
    "MIN_RELAXATION",
]
