"""Profiling pass: dynamic HAUs, per-period minima, and the smax threshold.

Implements §III-C2:

1. *Find dynamic HAUs* — observe each HAU's ``state_size()`` over a
   profiling window; HAUs whose minimum is less than half their average
   are dynamic.
2. *Rebuild the aggregated state size* of all dynamic HAUs from their
   reported turning points (piecewise-linear "zigzag polyline").
3. *Derive the threshold* — per checkpoint period, find the minimum of
   the aggregate series; ``smin``/``smax`` are the lowest and highest of
   those per-period minima; the relaxation factor
   ``alpha = (smax - smin) / smin`` is bounded below by 20% ("we do so by
   bounding the relaxation factor to a minimum of 20% relative to smin").
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

MIN_RELAXATION = 0.20
DYNAMIC_RATIO = 0.5  # min < 0.5 * avg  =>  dynamic HAU
ZERO_FLOOR_FRACTION = 0.10  # smax floor as a fraction of the aggregate mean


def is_dynamic(sizes: Sequence[float], min_avg_bytes: float = 0.0) -> bool:
    """Classify one HAU from its observed state-size samples.

    ``min_avg_bytes`` filters out HAUs whose state is too small to be
    worth timing checkpoints around (a few-KB rolling window fluctuates
    relative to itself but contributes nothing to checkpoint size).
    """
    if not sizes:
        return False
    avg = sum(sizes) / len(sizes)
    if avg <= 0 or avg < min_avg_bytes:
        return False
    return min(sizes) < DYNAMIC_RATIO * avg


@dataclass
class ProfileResult:
    """Output of the profiling pass."""

    smax: float
    smin: float
    relaxation: float
    period_minima: list[tuple[float, float]]  # (time, aggregate size) per period
    dynamic_haus: list[str]

    @property
    def alert_threshold(self) -> float:
        return self.smax


@dataclass
class StateProfile:
    """Accumulates per-HAU samples during profiling and derives the result.

    ``min_relaxation`` is the lower bound on the relaxation factor
    (paper default 20%); exposed for the A1 ablation bench.
    """

    checkpoint_period: float
    samples: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    min_relaxation: float = MIN_RELAXATION
    #: ignore HAUs whose average state is below this (not worth optimising)
    min_dynamic_bytes: float = 0.0
    #: drop this leading fraction of the observation window before
    #: classifying/aggregating — the cold-start ramp from empty state would
    #: otherwise masquerade as a deep minimum
    startup_skip: float = 0.0

    def _trimmed(self, hau_id: str) -> list[tuple[float, float]]:
        series = self.samples.get(hau_id, [])
        if not series or self.startup_skip <= 0:
            return series
        t0, t1 = series[0][0], series[-1][0]
        cut = t0 + self.startup_skip * (t1 - t0)
        return [(t, s) for (t, s) in series if t >= cut] or series

    def observe(self, hau_id: str, time: float, size: float) -> None:
        self.samples.setdefault(hau_id, []).append((time, size))

    def dynamic_haus(self) -> list[str]:
        out = []
        for hau_id in sorted(self.samples):
            series = self._trimmed(hau_id)
            if is_dynamic([s for (_t, s) in series], self.min_dynamic_bytes):
                out.append(hau_id)
        return out

    def aggregate_series(self, hau_ids: Sequence[str]) -> list[tuple[float, float]]:
        """Sum the chosen HAUs' (startup-trimmed) series on the union of
        their sample times."""
        trimmed = {h: self._trimmed(h) for h in hau_ids}
        times = sorted({t for series in trimmed.values() for (t, _s) in series})
        if not times:
            return []
        out = []
        for t in times:
            total = 0.0
            for h in hau_ids:
                total += _interp(trimmed[h], t)
            out.append((t, total))
        return out

    def result(self) -> ProfileResult:
        dyn = self.dynamic_haus()
        agg = self.aggregate_series(dyn)
        if not agg:
            return ProfileResult(
                smax=0.0, smin=0.0, relaxation=self.min_relaxation,
                period_minima=[], dynamic_haus=dyn,
            )
        t0 = agg[0][0]
        horizon = agg[-1][0]
        minima: list[tuple[float, float]] = []
        period_start = t0
        while period_start < horizon or not minima:
            period_end = period_start + self.checkpoint_period
            window = [(t, s) for (t, s) in agg if period_start <= t < period_end]
            if window:
                best = min(window, key=lambda ts: ts[1])
                minima.append(best)
            if period_end > horizon:
                break
            period_start = period_end
        if not minima:
            best = min(agg, key=lambda ts: ts[1])
            minima = [best]
        smin = min(s for (_t, s) in minima)
        smax = max(s for (_t, s) in minima)
        # Bound the relaxation factor to >= 20% relative to smin: it is
        # "better to conservatively increase smax a little".
        if smin > 0:
            alpha = (smax - smin) / smin
            if alpha < self.min_relaxation:
                smax = smin * (1.0 + self.min_relaxation)
                alpha = self.min_relaxation
        else:
            alpha = self.min_relaxation
        # Floor: when the state collapses to (near) zero at the batch
        # boundaries, the per-period minima — and hence smax — degenerate
        # to ~0 and alert mode could never engage.  Any state below a small
        # fraction of the aggregate average is unambiguously "minimal".
        mean_aggregate = sum(s for (_t, s) in agg) / len(agg)
        smax = max(smax, ZERO_FLOOR_FRACTION * mean_aggregate)
        return ProfileResult(
            smax=smax,
            smin=smin,
            relaxation=alpha if smin > 0 else self.min_relaxation,
            period_minima=minima,
            dynamic_haus=dyn,
        )


def _interp(series: list[tuple[float, float]], t: float) -> float:
    """Piecewise-linear interpolation with endpoint clamping."""
    if not series:
        return 0.0
    if t <= series[0][0]:
        return series[0][1]
    if t >= series[-1][0]:
        return series[-1][1]
    for (t0, s0), (t1, s1) in zip(series, series[1:]):
        if t0 <= t <= t1:
            if t1 == t0:
                return s1
            return s0 + (t - t0) / (t1 - t0) * (s1 - s0)
    return series[-1][1]
