"""``python -m repro.monitor`` — replay SLO monitoring over a trace file.

The same :class:`~repro.monitor.plane.MonitorPlane` that rides live
runs replays a recorded trace (the JSONL that ``--trace-out`` /
``repro.observability.export`` writes) completely offline, producing
the identical alert log and health timeline the live run produced for
every trace-derived SLO::

    python -m repro.monitor TRACE.jsonl                    # tables
    python -m repro.monitor TRACE.jsonl --json             # canonical JSON
    python -m repro.monitor TRACE.jsonl --period 2 \\
        --bound checkpoint-staleness=20                    # tuned windows

Registry-backed SLO kinds (``latency-p99``) need the live metric
registry and are inactive in replay; everything else — checkpoint
durations, recovery time, checkpoint staleness, alerts, health — comes
straight from the trace.  Output is byte-deterministic, so two replays
of the same file diff clean.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.harness.digest import canonical_json
from repro.harness.report import format_table
from repro.monitor.plane import MonitorPlane
from repro.monitor.slo import SLO_KINDS, default_slos
from repro.observability.export import read_jsonl
from repro.observability.tracer import TraceEvent


def load_trace(path: str) -> list[TraceEvent]:
    """Read a trace JSONL file back into :class:`TraceEvent` records."""
    events = []
    for row in read_jsonl(path):
        events.append(
            TraceEvent(
                seq=int(row.get("seq", 0)),
                t=float(row.get("t", 0.0)),
                kind=str(row.get("kind", "")),
                subject=str(row.get("subject", "")),
                data=tuple(sorted((row.get("data") or {}).items())),
            )
        )
    return events


def _parse_bounds(pairs: list[str]) -> dict[str, float]:
    bounds: dict[str, float] = {}
    for pair in pairs:
        kind, sep, value = pair.partition("=")
        if not sep or kind not in SLO_KINDS:
            raise SystemExit(
                f"--bound wants KIND=SECONDS with KIND in {', '.join(SLO_KINDS)}; "
                f"got {pair!r}"
            )
        bounds[kind] = float(value)
    return bounds


def replay(
    path: str,
    period: float = 1.0,
    bounds: dict[str, float] | None = None,
    fast_window: float = 10.0,
    slow_window: float = 30.0,
) -> MonitorPlane:
    """Run the offline replay and return the finished plane."""
    plane = MonitorPlane(
        period=period,
        slos=default_slos(bounds, fast_window=fast_window, slow_window=slow_window),
    )
    plane.run_offline(load_trace(path))
    return plane


def render_tables(plane: MonitorPlane) -> str:
    """The human-facing view: alert log + health timeline + summary."""
    parts = []
    summary = plane.summary()
    parts.append(
        format_table(
            ["ticks", "fired", "resolved", "active"],
            [[plane.ticks, summary["fired"], summary["resolved"], summary["active"]]],
            title="monitor summary",
        )
    )
    if plane.alerts:
        parts.append(
            format_table(
                ["t", "slo", "subject", "action", "burn_fast", "burn_slow"],
                [
                    [a["t"], a["slo"], a["subject"] or "-", a["action"],
                     a["burn_fast"], a["burn_slow"]]
                    for a in plane.alerts
                ],
                title="alert log",
            )
        )
    else:
        parts.append("alert log: (no alerts)")
    timeline = plane.health.timeline
    if timeline:
        parts.append(
            format_table(
                ["t", "entity", "from", "to", "reason"],
                [[h["t"], h["entity"], h["from"], h["to"], h["reason"]] for h in timeline],
                title="health timeline",
            )
        )
    else:
        parts.append("health timeline: (no transitions)")
    return "\n\n".join(parts)


def as_json(plane: MonitorPlane) -> dict[str, Any]:
    return {
        "alerts": plane.as_dict(),
        "health_timeline": list(plane.health.timeline),
        "health": plane.health.states(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.monitor",
        description="Replay SLO burn-rate monitoring over a recorded trace file.",
    )
    parser.add_argument("trace", help="trace JSONL file (see --trace-out / export.write_jsonl)")
    parser.add_argument("--period", type=float, default=1.0, help="tick period in sim seconds")
    parser.add_argument(
        "--bound",
        action="append",
        default=[],
        metavar="KIND=SECONDS",
        help="override one SLO bound (repeatable)",
    )
    parser.add_argument("--fast-window", type=float, default=10.0, help="fast burn window (s)")
    parser.add_argument("--slow-window", type=float, default=30.0, help="slow burn window (s)")
    parser.add_argument("--json", action="store_true", help="canonical JSON instead of tables")
    args = parser.parse_args(argv)

    plane = replay(
        args.trace,
        period=args.period,
        bounds=_parse_bounds(args.bound),
        fast_window=args.fast_window,
        slow_window=args.slow_window,
    )
    if args.json:
        print(canonical_json(as_json(plane)))
    else:
        print(render_tables(plane))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
