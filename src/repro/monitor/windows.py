"""Windowed readers over sim-time: tumbling/sliding aggregation helpers.

The monitoring plane *reads* the cumulative state other subsystems
already maintain — counters and P² percentile snapshots in the
:class:`~repro.telemetry.registry.MetricRegistry` — and turns it into
per-window quantities: deltas and rates for counters (tumbling windows,
one per evaluation tick) and bounded sliding-window aggregates for
gauge-like samples.  Readers never write to the registry they read and
never touch simulation state, so a monitored run's physics (and its
determinism digest) are identical to an unmonitored one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class WindowSpec:
    """One window shape: ``slide == length`` is tumbling, smaller slides
    overlap.  Purely descriptive — evaluation cadence is the plane's
    tick period; the spec says how much history each evaluation sees."""

    name: str
    length: float
    slide: float

    def __post_init__(self) -> None:
        if not self.length > 0.0:
            raise ValueError(f"window length must be > 0, got {self.length!r}")
        if not 0.0 < self.slide <= self.length:
            raise ValueError(
                f"window slide must be in (0, length], got {self.slide!r}"
            )

    @property
    def tumbling(self) -> bool:
        return self.slide == self.length


class CounterWindow:
    """Tumbling-window view of a cumulative counter.

    ``advance(t, cumulative)`` returns the delta since the previous
    tick — the per-window increment — and remembers the new baseline.
    The first observation establishes the baseline (delta from 0.0:
    everything before monitoring started belongs to the first window).
    """

    __slots__ = ("last_t", "last_value")

    def __init__(self) -> None:
        self.last_t = 0.0
        self.last_value = 0.0

    def advance(self, t: float, cumulative: float) -> float:
        delta = cumulative - self.last_value
        self.last_t = t
        self.last_value = cumulative
        return delta


class SlidingWindow:
    """Bounded (sim-time, value) history with O(1) eviction.

    Holds samples for ``length`` seconds past ``now`` (half-open
    ``(now - length, now]`` like the burn-rate windows) and answers the
    aggregates the health/series exports need.
    """

    __slots__ = ("length", "_samples")

    def __init__(self, length: float):
        if not length > 0.0:
            raise ValueError(f"window length must be > 0, got {length!r}")
        self.length = length
        self._samples: deque[tuple[float, float]] = deque()

    def observe(self, t: float, value: float) -> None:
        self._samples.append((t, float(value)))

    def evict(self, now: float) -> None:
        cutoff = now - self.length
        samples = self._samples
        while samples and samples[0][0] <= cutoff:
            samples.popleft()

    def count(self) -> int:
        return len(self._samples)

    def total(self) -> float:
        return sum(v for _t, v in self._samples)

    def mean(self) -> float:
        n = len(self._samples)
        return self.total() / n if n else 0.0

    def maximum(self) -> float:
        return max((v for _t, v in self._samples), default=0.0)

    def last(self) -> float:
        return self._samples[-1][1] if self._samples else 0.0

    def rate(self) -> float:
        """Total per second over the window length (a windowed rate)."""
        return self.total() / self.length
