"""The live monitoring plane: deterministic in-simulation observability.

A :class:`MonitorPlane` evaluates windowed telemetry on a fixed
sim-time period.  Each *tick* it

1. folds the trace events emitted since the previous tick into SLO
   samples (checkpoint durations, recovery times, commit recency) and
   the health state machine,
2. reads counter deltas and P² percentile snapshots from the
   :class:`~repro.telemetry.registry.MetricRegistry` (pure reads),
3. advances every burn-rate evaluator and emits ``alert.fire`` /
   ``alert.resolve`` trace events plus ``ms_alerts_*`` metrics, and
4. appends one row to the window series.

Determinism contract: ticks are scheduled at :data:`~repro.simulation.
core.MONITOR` priority, which sorts *after* every workload event at the
same instant — the plane observes each instant only once it has fully
settled, and the workload's own event order (and therefore the
determinism digest) is bit-identical with monitoring on or off.

The same class replays offline: :meth:`run_offline` drives the tick
loop from a recorded trace (``python -m repro.monitor trace.jsonl``),
with the registry-backed SLOs inactive (a trace carries no registry)
and everything trace-derived producing the identical alert log and
health timeline the live run produced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.monitor.health import HealthTracker
from repro.monitor.slo import PER_HAU_KINDS, SLO, BurnEvaluator, default_slos
from repro.monitor.windows import CounterWindow
from repro.observability.tracer import NULL_TRACER, TraceEvent
from repro.telemetry.registry import NULL_REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.core import Environment

# Trace kinds that open/close a recovery-time measurement.  MS schemes
# use recovery.start/done; the 1-safe baseline has its own pair.
_RECOVERY_STARTS = ("recovery.start", "baseline.recover.start")
_RECOVERY_ENDS = ("recovery.done", "baseline.recover.done")


class MonitorPlane:
    """Windowed SLO evaluation + health tracking for one run."""

    def __init__(
        self,
        period: float,
        slos: tuple[SLO, ...] | None = None,
        racks: dict[str, str] | None = None,
        nodes: dict[str, str] | None = None,
    ):
        if not period > 0.0:
            raise ValueError(f"monitor period must be > 0, got {period!r}")
        self.period = float(period)
        self.slos = tuple(slos) if slos is not None else default_slos()
        self.ticks = 0
        self.alerts: list[dict[str, Any]] = []
        self.series: list[dict[str, Any]] = []
        self.health = HealthTracker(racks=racks, nodes=nodes)
        self._env: Environment | None = None
        self._trace = NULL_TRACER
        self._telem = NULL_REGISTRY
        self._cursor = 0  # index into the tracer's event list
        self._evaluators: dict[tuple[str, str], BurnEvaluator] = {}
        self._slo_by_kind = {s.kind: s for s in self.slos}
        # trace-derived bookkeeping
        self._write_start: dict[str, float] = {}  # hau -> checkpoint.write.start t
        self._last_commit: dict[str, float] = {}  # hau -> last checkpoint.commit t
        self._recovery_start: float | None = None
        self._tuples_window = CounterWindow()
        self._samples_folded = 0

    # -- kernel wiring -------------------------------------------------------
    def attach(self, env: "Environment") -> "MonitorPlane":
        """Ride on a live environment: read its tracer/registry and start
        the tick schedule.  Call after ``enable_tracing``/``enable_telemetry``
        (the plane reads whichever are enabled) and before ``env.run``."""
        self._env = env
        self._trace = env.trace
        self._telem = env.telemetry
        self._schedule_tick()
        return self

    def _schedule_tick(self) -> None:
        from repro.simulation.core import MONITOR, Event

        env = self._env
        assert env is not None
        ev = Event(env, name="monitor-tick")
        ev.add_callback(self._on_tick)
        env._schedule(ev, delay=self.period, priority=MONITOR)

    def _on_tick(self, _event: Any) -> None:
        env = self._env
        assert env is not None
        self.tick(env.now)
        self._schedule_tick()

    # -- the tick ------------------------------------------------------------
    def tick(self, now: float) -> None:
        """One window evaluation at sim-time ``now``."""
        self.ticks += 1
        if self._trace.enabled:
            events = self._trace.events
            self._ingest(events[self._cursor:])
            self._cursor = len(events)
        self._sample_registry(now)
        self._sample_staleness(now)
        self._evaluate(now)
        self._append_series_row(now)
        if self._telem.enabled:
            self._telem.counter("ms_monitor_ticks_total").inc()

    # -- trace ingestion -----------------------------------------------------
    def _ingest(self, events: list[TraceEvent]) -> None:
        for e in events:
            kind = e.kind
            if kind == "checkpoint.write.start":
                self._write_start[e.subject] = e.t
            elif kind == "checkpoint.commit":
                started = self._write_start.pop(e.subject, None)
                if started is not None:
                    self._observe(e.t, "checkpoint-duration", "", e.t - started)
                self._last_commit[e.subject] = e.t
            elif kind in _RECOVERY_STARTS:
                if self._recovery_start is None:
                    self._recovery_start = e.t
                self.health.on_trace_event(e.t, "recovery.start", e.subject)
            elif kind in _RECOVERY_ENDS:
                if self._recovery_start is not None:
                    self._observe(e.t, "recovery-time", "", e.t - self._recovery_start)
                    self._recovery_start = None
                self.health.on_trace_event(e.t, "recovery.done", e.subject)
            elif kind == "hau.start":
                self.health.learn_placement(e.subject, str(e.get("node", "")))
                self.health.on_trace_event(e.t, kind, e.subject)
            elif kind in ("failure.inject", "recovery.hau.start", "recovery.hau"):
                if kind == "recovery.hau":
                    node = str(e.get("node", ""))
                    if node:
                        self.health.learn_placement(e.subject, node)
                self.health.on_trace_event(e.t, kind, e.subject)

    # -- registry + derived samples ------------------------------------------
    def _sample_registry(self, now: float) -> None:
        if not self._telem.enabled or "latency-p99" not in self._slo_by_kind:
            return
        worst = None
        for metric in self._telem.select("ms_hau_tuple_latency_seconds"):
            if getattr(metric, "count", 0) > 0:
                p99 = metric.percentile(0.99)
                worst = p99 if worst is None else max(worst, p99)
        if worst is not None:
            self._observe(now, "latency-p99", "", worst)

    def _sample_staleness(self, now: float) -> None:
        slo = self._slo_by_kind.get("checkpoint-staleness")
        if slo is None:
            return
        for hau in sorted(self._last_commit):
            staleness = now - self._last_commit[hau]
            self._observe(now, "checkpoint-staleness", hau, staleness)
            self.health.on_sample(now, hau, "checkpoint-staleness", staleness <= slo.bound)

    def _observe(self, t: float, kind: str, subject: str, value: float) -> None:
        slo = self._slo_by_kind.get(kind)
        if slo is None:
            return
        key = (kind, subject if kind in PER_HAU_KINDS else "")
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = self._evaluators[key] = BurnEvaluator(slo, key[1])
        evaluator.observe(t, float(value) <= slo.bound)
        self._samples_folded += 1
        if self._telem.enabled:
            self._telem.counter("ms_monitor_samples_total", slo=kind).inc()

    # -- burn-rate evaluation ------------------------------------------------
    def _evaluate(self, now: float) -> None:
        for key in sorted(self._evaluators):
            evaluator = self._evaluators[key]
            action = evaluator.evaluate(now)
            if action is None:
                continue
            kind, subject = key
            row = {
                "t": now,
                "slo": kind,
                "subject": subject,
                "action": action,
                "burn_fast": evaluator.burn_fast,
                "burn_slow": evaluator.burn_slow,
            }
            self.alerts.append(row)
            self.health.on_alert(now, subject, kind, action)
            if action == "fire":
                if self._trace.enabled:
                    self._trace.emit(
                        "alert.fire",
                        t=now,
                        subject=subject,
                        slo=kind,
                        burn_fast=evaluator.burn_fast,
                        burn_slow=evaluator.burn_slow,
                    )
                if self._telem.enabled:
                    self._telem.counter("ms_alerts_fired_total", slo=kind).inc()
                    self._telem.gauge("ms_alerts_active").inc()
            else:
                if self._trace.enabled:
                    self._trace.emit(
                        "alert.resolve",
                        t=now,
                        subject=subject,
                        slo=kind,
                        burn_fast=evaluator.burn_fast,
                        burn_slow=evaluator.burn_slow,
                    )
                if self._telem.enabled:
                    self._telem.counter("ms_alerts_resolved_total", slo=kind).inc()
                    self._telem.gauge("ms_alerts_active").dec()

    def _append_series_row(self, now: float) -> None:
        tuples_total = 0.0
        latency_p99 = 0.0
        if self._telem.enabled:
            for metric in self._telem.select("ms_hau_tuples_total"):
                tuples_total += metric.value
            for metric in self._telem.select("ms_hau_tuple_latency_seconds"):
                if getattr(metric, "count", 0) > 0:
                    latency_p99 = max(latency_p99, metric.percentile(0.99))
        delta = self._tuples_window.advance(now, tuples_total)
        staleness_max = 0.0
        if self._last_commit:
            staleness_max = max(now - t for t in self._last_commit.values())
        self.series.append(
            {
                "t": now,
                "tuples_delta": delta,
                "tuples_rate": delta / self.period,
                "latency_p99": latency_p99,
                "staleness_max": staleness_max,
                "alerts_active": self.active_alerts(),
            }
        )

    # -- offline replay ------------------------------------------------------
    def run_offline(self, events: list[TraceEvent], until: float | None = None) -> None:
        """Drive the tick loop from a recorded trace (no environment).

        Ticks run at ``period, 2*period, ...`` through ``until``
        (default: the last event's timestamp — the live plane cannot
        tick past the end of the simulation, so neither does replay),
        each fed the events that fall inside it — the same slicing the
        live schedule produces.  Registry-backed SLOs are inactive (a
        trace carries no registry); everything trace-derived reproduces
        the live run exactly.
        """
        if self._env is not None:
            raise RuntimeError("plane is attached to a live environment")
        if until is None:
            until = events[-1].t if events else 0.0
        cursor = 0
        now = 0.0
        while now + self.period <= until:
            now += self.period
            upto = cursor
            while upto < len(events) and events[upto].t <= now:
                upto += 1
            self._ingest(events[cursor:upto])
            cursor = upto
            self.ticks += 1
            self._sample_staleness(now)
            self._evaluate(now)
            self._append_series_row(now)

    # -- exports -------------------------------------------------------------
    def active_alerts(self) -> int:
        return sum(1 for e in self._evaluators.values() if e.active)

    def summary(self) -> dict[str, Any]:
        by_slo: dict[str, dict[str, int]] = {}
        for row in self.alerts:
            bucket = by_slo.setdefault(row["slo"], {"fired": 0, "resolved": 0})
            bucket["fired" if row["action"] == "fire" else "resolved"] += 1
        return {
            "fired": sum(b["fired"] for b in by_slo.values()),
            "resolved": sum(b["resolved"] for b in by_slo.values()),
            "active": self.active_alerts(),
            "by_slo": dict(sorted(by_slo.items())),
        }

    def as_dict(self) -> dict[str, Any]:
        """The JSON-ready alerts block (payloads, bundles, artifacts)."""
        return {
            "period": self.period,
            "ticks": self.ticks,
            "summary": self.summary(),
            "log": list(self.alerts),
        }
