"""Per-HAU and per-rack health timelines.

A four-state machine per entity, fed by the same deterministic inputs
the alert engine sees — SLO samples, alert fire/resolve, and the
failure/recovery trace kinds::

    healthy --(bad SLO sample)--------------> degraded
    healthy/degraded --(alert fires, node/rack failure)--> alerting
    alerting --(recovery.hau.start)---------> recovering
    recovering --(recovery.hau done, hau.start restart)--> healthy
    degraded --(good sample again)----------> healthy
    alerting --(alert resolves, no recovery needed)------> healthy

Rack states are rolled up from member HAUs (worst member wins:
alerting > recovering > degraded > healthy) and re-derived after every
HAU transition, so the rack timeline interleaves deterministically with
the HAU timeline that caused it.

The exported timeline is a list of ``{t, entity, from, to, reason}``
rows in emission order — byte-identical across same-seed runs, and the
shape ``repro.inspect`` bundles under ``alerts.json``.
"""

from __future__ import annotations

from typing import Any

# Health vocabulary.  Literal tuple on purpose — repro-lint's MON001
# rule diffs it against the DESIGN.md health-state table.
HEALTH_STATES = (
    "healthy",
    "degraded",
    "alerting",
    "recovering",
)

# Worst-member-wins ordering for the rack rollup.
_SEVERITY = {"healthy": 0, "degraded": 1, "recovering": 2, "alerting": 3}


class HealthTracker:
    """Tracks entity health and records every transition.

    ``racks`` maps HAU id -> rack id (from the runtime's placement);
    without it (offline trace replay) only HAU timelines are produced.
    Unknown HAUs materialise as ``healthy`` on first mention, so the
    tracker works from a bare trace with no topology preamble.
    """

    def __init__(self, racks: dict[str, str] | None = None, nodes: dict[str, str] | None = None):
        self._racks = dict(racks or {})  # hau -> rack
        self._nodes = dict(nodes or {})  # hau -> node
        self._state: dict[str, str] = {}  # hau -> state
        self._rack_state: dict[str, str] = {}  # rack -> state
        self.timeline: list[dict[str, Any]] = []

    # -- transitions ---------------------------------------------------------
    def _set(self, t: float, hau: str, to: str, reason: str) -> None:
        frm = self._state.get(hau, "healthy")
        if frm == to:
            return
        self._state[hau] = to
        self.timeline.append(
            {"t": t, "entity": f"hau:{hau}", "from": frm, "to": to, "reason": reason}
        )
        self._roll_up(t, hau, reason)

    def _roll_up(self, t: float, hau: str, reason: str) -> None:
        rack = self._racks.get(hau)
        if rack is None:
            return
        members = [h for h, r in self._racks.items() if r == rack]
        worst = "healthy"
        for member in members:
            state = self._state.get(member, "healthy")
            if _SEVERITY[state] > _SEVERITY[worst]:
                worst = state
        frm = self._rack_state.get(rack, "healthy")
        if frm == worst:
            return
        self._rack_state[rack] = worst
        self.timeline.append(
            {"t": t, "entity": f"rack:{rack}", "from": frm, "to": worst, "reason": reason}
        )

    # -- inputs --------------------------------------------------------------
    def learn_placement(self, hau: str, node: str, rack: str | None = None) -> None:
        """Record (or update, after a restart elsewhere) where an HAU
        lives, so failure.inject events can be matched to it.  Offline
        replay learns placement from ``hau.start``/``recovery.hau``
        events; live runs pass the maps up front."""
        if node:
            self._nodes[hau] = node
        if rack:
            self._racks[hau] = rack

    def on_sample(self, t: float, hau: str, kind: str, good: bool) -> None:
        """A per-HAU SLO sample: bad degrades, good heals a degradation."""
        state = self._state.get(hau, "healthy")
        if not good and state == "healthy":
            self._set(t, hau, "degraded", f"slo:{kind} sample over bound")
        elif good and state == "degraded":
            self._set(t, hau, "healthy", f"slo:{kind} sample back in bound")

    def on_alert(self, t: float, subject: str, kind: str, action: str) -> None:
        """An alert fired/resolved.  Per-HAU alerts drive that HAU; run-wide
        alerts (subject "") drive every currently-tracked HAU that is not
        already recovering."""
        targets = [subject] if subject else sorted(self._state)
        for hau in targets:
            state = self._state.get(hau, "healthy")
            if action == "fire" and state in ("healthy", "degraded"):
                self._set(t, hau, "alerting", f"slo:{kind} alert fired")
            elif action == "resolve" and state == "alerting":
                self._set(t, hau, "healthy", f"slo:{kind} alert resolved")

    def on_trace_event(self, t: float, kind: str, subject: str) -> None:
        """Fold one failure/recovery trace event into the machine."""
        if kind == "failure.inject":
            # subject is a node id or rack id; every HAU placed there alerts
            for hau in sorted(self._nodes):
                if self._nodes[hau] == subject or self._racks.get(hau) == subject:
                    if self._state.get(hau, "healthy") != "recovering":
                        self._set(t, hau, "alerting", f"failure injected at {subject}")
        elif kind == "recovery.hau.start":
            self._set(t, subject, "recovering", "recovery started")
        elif kind == "recovery.hau":
            self._set(t, subject, "healthy", "recovery complete")
        elif kind == "hau.start":
            # A restart only heals an entity that was mid-recovery or
            # alerting; the boot-time hau.start of a healthy run is a no-op.
            if self._state.get(subject) in ("recovering", "alerting"):
                self._set(t, subject, "healthy", "restarted")

    # -- exports -------------------------------------------------------------
    def states(self) -> dict[str, str]:
        """Current state per entity (HAUs and racks), sorted keys."""
        out = {f"hau:{h}": s for h, s in self._state.items()}
        out.update({f"rack:{r}": s for r, s in self._rack_state.items()})
        return dict(sorted(out.items()))
