"""Declarative SLOs and Google-SRE-style multi-window burn-rate alerting.

An :class:`SLO` names a service-level objective over one sample stream
(p99 end-to-end latency, per-HAU checkpoint write duration, recovery
time, per-HAU checkpoint staleness), a ``bound`` a sample must stay at
or under to count as *good*, and an ``objective`` — the error budget,
the fraction of samples allowed to violate the bound.

Burn rate is the budget-spend speed: ``bad_fraction(window) /
objective``.  Burn 1.0 means the budget is being spent exactly as fast
as it accrues; burn 10 means ten times too fast.  A
:class:`BurnEvaluator` tracks one SLO for one subject over a *fast* and
a *slow* sliding window (the multi-window pattern from the Google SRE
workbook): an alert **fires** only when both windows burn at or above
``burn_threshold`` (the slow window proves it is not a blip, the fast
window proves it is still happening) and **resolves** when the fast
window drops back below the threshold.

Everything here is pure arithmetic over (sim-time, good/bad) samples —
same samples in, same fire/resolve instants out, which is what makes
alert logs byte-deterministic and replayable from a trace file.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

# The SLO vocabulary.  A literal tuple on purpose: repro-lint's MON001
# rule reads it from the AST and diffs it against the DESIGN.md "Live
# monitoring & SLOs" table, so docs and code cannot drift.
SLO_KINDS = (
    "latency-p99",  # probe/per-HAU p99 tuple latency snapshot per tick
    "checkpoint-duration",  # per-HAU checkpoint.write.start -> commit seconds
    "recovery-time",  # recovery.start -> recovery.done seconds
    "checkpoint-staleness",  # per-HAU seconds since last commit, per tick
)

# SLO kinds evaluated per HAU (alert subjects are HAU ids); the rest
# aggregate over the whole run (subject "").
PER_HAU_KINDS = frozenset({"checkpoint-staleness"})

# Kinds that need the live MetricRegistry (snapshot reads); the others
# are derived purely from trace events and stay active in offline
# replay (``python -m repro.monitor`` over a trace file).
REGISTRY_KINDS = frozenset({"latency-p99"})


@dataclass(frozen=True)
class SLO:
    """One objective: samples of ``kind`` must stay <= ``bound``.

    ``objective`` is the allowed bad fraction (the error budget);
    ``fast_window``/``slow_window`` are sliding-window lengths in sim
    seconds; ``burn_threshold`` is the budget-spend multiple at which
    the alert fires.
    """

    kind: str
    bound: float
    objective: float = 0.1
    fast_window: float = 10.0
    slow_window: float = 30.0
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; choose from {SLO_KINDS}")
        if not self.objective > 0.0:
            raise ValueError(f"SLO objective must be > 0, got {self.objective!r}")
        if not 0.0 < self.fast_window <= self.slow_window:
            raise ValueError(
                f"need 0 < fast_window <= slow_window, got "
                f"{self.fast_window!r}/{self.slow_window!r}"
            )


# Default bounds, sized for the scaled-down harness runs (seconds).  A
# scenario's ``monitor.slos`` mapping overrides per kind.
DEFAULT_BOUNDS = {
    "latency-p99": 1.0,
    "checkpoint-duration": 5.0,
    "recovery-time": 5.0,
    "checkpoint-staleness": 60.0,
}


def default_slos(
    bounds: dict[str, float] | None = None,
    fast_window: float = 10.0,
    slow_window: float = 30.0,
) -> tuple[SLO, ...]:
    """The standard SLO set, with per-kind bound overrides.

    Deterministic order (= SLO_KINDS order), so alert evaluation — and
    therefore the alert log — never depends on dict iteration order.
    """
    overrides = dict(bounds or {})
    unknown = sorted(set(overrides) - set(SLO_KINDS))
    if unknown:
        raise ValueError(f"unknown SLO kind(s) in bounds: {', '.join(unknown)}")
    slos = []
    for kind in SLO_KINDS:
        slo = SLO(
            kind=kind,
            bound=DEFAULT_BOUNDS[kind],
            fast_window=fast_window,
            slow_window=slow_window,
        )
        if kind in overrides:
            slo = replace(slo, bound=float(overrides[kind]))
        slos.append(slo)
    return tuple(slos)


class BurnEvaluator:
    """Burn-rate state for one (SLO, subject) pair.

    Samples arrive as ``observe(t, good)``; ``evaluate(now)`` evicts
    everything older than the slow window, computes both burn rates and
    returns ``"fire"`` / ``"resolve"`` / ``None`` as the alert state
    machine dictates.  Windows are half-open ``(now - length, now]`` so
    a sample ages out exactly one window-length after it arrived.
    """

    __slots__ = ("slo", "subject", "active", "burn_fast", "burn_slow", "_samples")

    def __init__(self, slo: SLO, subject: str = ""):
        self.slo = slo
        self.subject = subject
        self.active = False
        self.burn_fast = 0.0
        self.burn_slow = 0.0
        self._samples: deque[tuple[float, bool]] = deque()

    def observe(self, t: float, good: bool) -> None:
        self._samples.append((t, good))

    def _burn(self, now: float, window: float) -> float:
        cutoff = now - window
        good = bad = 0
        for t, ok in self._samples:
            if t > cutoff:
                if ok:
                    good += 1
                else:
                    bad += 1
        total = good + bad
        if total == 0:
            return 0.0  # no data burns no budget
        return (bad / total) / self.slo.objective

    def evaluate(self, now: float) -> str | None:
        """Advance the alert state machine to ``now``."""
        cutoff = now - self.slo.slow_window
        samples = self._samples
        while samples and samples[0][0] <= cutoff:
            samples.popleft()
        self.burn_fast = self._burn(now, self.slo.fast_window)
        self.burn_slow = self._burn(now, self.slo.slow_window)
        threshold = self.slo.burn_threshold
        if not self.active:
            if self.burn_fast >= threshold and self.burn_slow >= threshold:
                self.active = True
                return "fire"
            return None
        if self.burn_fast < threshold:
            self.active = False
            return "resolve"
        return None
