"""repro.monitor — the live monitoring plane.

Deterministic in-simulation observability: windowed telemetry readers,
declarative SLOs with Google-SRE multi-window burn-rate alerting, and
per-HAU / per-rack health timelines.  Runs inside the simulation at a
priority below every workload event (so the determinism digest is
bit-identical with monitoring on or off) and replays offline from a
recorded trace (``python -m repro.monitor``).
"""

from repro.monitor.health import HEALTH_STATES, HealthTracker
from repro.monitor.plane import MonitorPlane
from repro.monitor.slo import (
    DEFAULT_BOUNDS,
    PER_HAU_KINDS,
    REGISTRY_KINDS,
    SLO,
    SLO_KINDS,
    BurnEvaluator,
    default_slos,
)
from repro.monitor.windows import CounterWindow, SlidingWindow, WindowSpec

__all__ = [
    "DEFAULT_BOUNDS",
    "HEALTH_STATES",
    "PER_HAU_KINDS",
    "REGISTRY_KINDS",
    "SLO",
    "SLO_KINDS",
    "BurnEvaluator",
    "CounterWindow",
    "HealthTracker",
    "MonitorPlane",
    "SlidingWindow",
    "WindowSpec",
    "default_slos",
]
