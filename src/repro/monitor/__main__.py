"""Entry point for ``python -m repro.monitor``."""

import sys

from repro.monitor.cli import main

if __name__ == "__main__":
    sys.exit(main())
