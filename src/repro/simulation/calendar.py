"""Calendar-queue scheduler: amortized O(1) insert/pop at high event density.

A classic binary heap pays O(log n) per operation with n pending events;
at 10k-HAU topology scale the schedule holds tens of thousands of
in-flight timeouts and the log factor (plus cache misses on a single
large array) starts to show.  A *calendar queue* (Brown 1988) instead
hashes each event into a bucket by its timestamp — ``bucket = ⌊t/width⌋
mod nbuckets`` — and pops by walking the calendar day by day, so both
operations are amortized O(1) when the bucket width tracks the mean
event spacing.

Ordering contract (the part the determinism digests rest on): entries
are full ``(time, priority, seq, item)`` tuples and must pop in exactly
the total order the kernel's binary heap would produce.  The proof
sketch, mirrored in DESIGN.md:

* two entries with different timestamps map to different *days* (or the
  same day, where the per-bucket heap orders them); the pop cursor
  visits days in increasing order and never emits an entry belonging to
  a later day than the one under the cursor, so smaller times always
  surface first;
* two entries with equal time land in the same day, hence the same
  bucket, where the per-bucket binary heap compares ``(time, priority,
  seq)`` lexicographically — identical to the global heap's tie-break;
* ``seq`` is unique per environment, so comparisons never reach the
  (uncomparable) item and the order is total.

Overflow policy: entries beyond the current calendar *year* (``boundary
= first_day + nbuckets``) would wrap around and collide with near-term
days, so they fall back to a plain binary heap (``_far``) — heap
semantics for far-future events, exactly as cheap as the kernel's
default scheduler.  When the cursor exhausts a year, the next year's
entries cascade from the far heap into the calendar (hierarchical
time-wheel style).  Bucket count doubles/halves as the population
crosses 2x/0.25x the bucket count, and each resize re-derives the bucket
width from the observed event-time span (Brown's rule: about three mean
gaps per bucket), so the structure adapts to the workload without any
wall-clock or randomized input — resizes are a pure function of the
push/pop history, keeping same-seed runs bit-identical.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any

#: A scheduled entry: ``(time, priority, seq, item)`` — identical to the
#: tuples the kernel pushes onto its binary heap.
Entry = tuple[float, int, int, Any]

_INF = float("inf")

#: Initial bucket count; also the floor the calendar never shrinks below.
_MIN_BUCKETS = 64

#: Bucket width before the first adaptive resize has seen real spacings.
_INITIAL_WIDTH = 1e-3


class CalendarQueue:
    """Priority queue over ``(time, priority, seq, item)`` entries.

    Drop-in order-equivalent replacement for the kernel's event heap:
    :meth:`push` accepts the same tuples ``heappush`` would, and
    :meth:`pop` returns them in the same total order ``heappop`` would.
    """

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_width",
        "_day",
        "_boundary",
        "_far",
        "_count",
    )

    def __init__(
        self, width: float = _INITIAL_WIDTH, nbuckets: int = _MIN_BUCKETS
    ) -> None:
        self._nbuckets = nbuckets
        self._width = width
        self._buckets: list[list[Entry]] = [[] for _ in range(nbuckets)]
        #: calendar day (``⌊t/width⌋``) the pop cursor is parked on
        self._day = 0
        #: first day owned by the far heap; buckets only ever hold days
        #: below this, so a year's days map to buckets injectively
        self._boundary = nbuckets
        self._far: list[Entry] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarQueue {self._count} entries, {self._nbuckets} buckets "
            f"x {self._width:g}s, {len(self._far)} far>"
        )

    # -- scheduling --------------------------------------------------------
    def push(self, entry: Entry) -> None:
        d = int(entry[0] / self._width)
        if d >= self._boundary:
            heappush(self._far, entry)
        else:
            if d < self._day:
                # Cursor regression: run-until-horizon advances the clock
                # without popping, so a later push can land on an earlier
                # (already scanned, necessarily empty) day.  Rewinding the
                # cursor just rescans those empty days.
                self._day = d
            heappush(self._buckets[d % self._nbuckets], entry)
        self._count += 1
        if self._count > (self._nbuckets << 1):
            self._resize(self._nbuckets << 1)

    def pop(self, horizon: float = _INF) -> Entry | None:
        """Remove and return the least entry, or None if empty or if the
        least entry's time exceeds ``horizon`` (entry stays queued)."""
        if not self._count:
            return None
        if self._count < (self._nbuckets >> 2) and self._nbuckets > _MIN_BUCKETS:
            self._resize(self._nbuckets >> 1)
        return self._next(horizon, remove=True)

    def peek(self) -> float:
        """Time of the least entry, or +inf if the calendar is empty."""
        if not self._count:
            return _INF
        entry = self._next(_INF, remove=False)
        assert entry is not None  # count > 0 guarantees an entry exists
        return entry[0]

    # -- internals ---------------------------------------------------------
    def _next(self, horizon: float, remove: bool) -> Entry | None:
        buckets = self._buckets
        n = self._nbuckets
        w = self._width
        day = self._day
        while True:
            boundary = self._boundary
            # Scan at most one full year of days: n consecutive days visit
            # every bucket exactly once, so a fruitless capped scan proves
            # the next bucket entry lies more than a year past the cursor
            # (possible after a cursor regression widened [day, boundary)
            # beyond n) — find it by direct min scan instead of walking an
            # unbounded run of empty days.
            limit = boundary if boundary - day <= n else day + n
            while day < limit:
                b = buckets[day % n]
                if b:
                    t = b[0][0]
                    if t < (day + 1) * w:
                        self._day = day
                        if t > horizon:
                            return None
                        if not remove:
                            return b[0]
                        self._count -= 1
                        return heappop(b)
                    # bucket min belongs to a later day sharing this slot
                day += 1
            far = self._far
            if day < boundary and self._count > len(far):
                return self._min_anywhere(horizon, remove)
            if far:
                t = far[0][0]
                if t > horizon:
                    self._day = day
                    return None
                # Jump the cursor to the far heap's first day and cascade
                # the next year's entries into the calendar.
                day = int(t / w)
                self._boundary = boundary = day + n
                while far and int(far[0][0] / w) < boundary:
                    e = heappop(far)
                    heappush(buckets[int(e[0] / w) % n], e)
                continue
            # count > 0 but neither the year scan nor the far heap yielded
            # an entry: a one-ulp disagreement between ⌊t/width⌋ and the
            # day-window comparison stranded a straggler.  Fall back to a
            # direct min scan — order stays exact, only speed degrades.
            return self._min_anywhere(horizon, remove)

    def _min_anywhere(self, horizon: float, remove: bool) -> Entry | None:
        best: list[Entry] | None = None
        for b in self._buckets:
            if b and (best is None or b[0] < best[0]):
                best = b
        if self._far and (best is None or self._far[0] < best[0]):
            best = self._far
        if best is None or best[0][0] > horizon:
            return None
        if not remove:
            return best[0]
        self._count -= 1
        return heappop(best)

    def _resize(self, new_n: int) -> None:
        entries: list[Entry] = []
        for b in self._buckets:
            entries.extend(b)
        entries.extend(self._far)
        width = self._width
        lo = 0.0
        if entries:
            lo = min(e[0] for e in entries)
            hi = max(e[0] for e in entries)
            span = hi - lo
            if span > 0.0:
                # Brown's rule: about three mean inter-event gaps per
                # bucket keeps per-bucket heaps shallow while the year
                # still covers a useful slice of the future.
                width = 3.0 * span / len(entries)
        self._nbuckets = new_n
        self._width = width
        self._buckets = [[] for _ in range(new_n)]
        self._far = []
        self._day = int(lo / width)
        self._boundary = self._day + new_n
        for e in entries:
            d = int(e[0] / width)
            if d >= self._boundary:
                heappush(self._far, e)
            else:
                heappush(self._buckets[d % new_n], e)
