"""Shared-resource primitives: capacity-limited resources and FIFO stores.

These model contention in the cluster: a node's CPU cores, a disk's
request queue, a NIC.  Both follow the SimPy request/release idiom but
are deliberately small: requests are events, granted strictly FIFO
(deterministic), and cancellable (a process killed while queued must not
later wake up and hold the resource).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.simulation.core import Environment, Event, SimulationError


class _Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_seq", "_abandoned")

    def __init__(self, env: Environment, resource: "Resource", priority: int = 0):
        super().__init__(env)
        self.resource = resource
        self.priority = priority
        self._seq = 0
        self._abandoned = False

    def cancel(self) -> None:
        """Withdraw the claim; releases the slot if already granted."""
        if self.triggered:
            self.resource.release(self)
        else:
            self.resource._abandon(self)


class Resource:
    """A counted resource with ``capacity`` identical slots.

    Grants are FIFO within a priority class; a lower ``priority`` value is
    served first (used e.g. to let small latency-sensitive disk writes
    overtake bulk checkpoint chunks between service quanta).
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._queue: list[tuple[int, int, _Request]] = []  # heap
        self._seq = 0
        self._users: set[_Request] = set()
        self._cancelled = 0  # tombstoned (abandoned) entries still in _queue

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        return len(self._queue) - self._cancelled

    def request(self, priority: int = 0) -> _Request:
        req = _Request(self.env, self, priority=priority)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._seq += 1
            req._seq = self._seq
            heapq.heappush(self._queue, (priority, self._seq, req))
        return req

    def release(self, request: _Request) -> None:
        if request not in self._users:
            raise SimulationError("releasing a request that does not hold the resource")
        self._users.remove(request)
        self._grant_next()

    def _abandon(self, request: _Request) -> None:
        # Lazy tombstone instead of an O(n) scan + heapify per cancel
        # (interrupt storms — a rack failure killing dozens of queued
        # writers — made each cancel linear in the wait queue).  The
        # entry stays in the heap, flagged, and is discarded when it
        # surfaces in _grant_next; once tombstones outnumber live
        # entries the heap is compacted in one deterministic pass.
        if request._abandoned:
            return
        request._abandoned = True
        self._cancelled = cancelled = self._cancelled + 1
        if cancelled > len(self._queue) - cancelled:
            self._queue = [e for e in self._queue if not e[2]._abandoned]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def _grant_next(self) -> None:
        queue = self._queue
        users = self._users
        while queue and len(users) < self.capacity:
            _p, _s, nxt = heapq.heappop(queue)
            if nxt._abandoned:
                self._cancelled -= 1
                continue
            users.add(nxt)
            nxt.succeed()


class _Get(Event):
    __slots__ = ("store",)

    def __init__(self, env: Environment, store: "Store"):
        super().__init__(env)
        self.store = store

    def cancel(self) -> None:
        if not self.triggered:
            self.store._abandon_get(self)

    def _recycle(self) -> None:
        super()._recycle()
        self.store = None


class _Put(Event):
    __slots__ = ("store", "item")

    def __init__(self, env: Environment, store: "Store", item: Any):
        super().__init__(env)
        self.store = store
        self.item = item

    def cancel(self) -> None:
        if not self.triggered:
            self.store._abandon_put(self)

    def _recycle(self) -> None:
        super()._recycle()
        self.store = None
        self.item = None


class Store:
    """An unbounded-or-bounded FIFO queue of items.

    ``get()`` returns an event that fires with the next item; ``put(item)``
    returns an event that fires when the item is accepted (immediately if
    under capacity).  Used for operator input buffers and network channel
    endpoints.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[_Get] = deque()
        self._putters: deque[_Put] = deque()
        # Get/put events churn once per tuple hop; recycle them through
        # the environment's free lists (shared across stores per class).
        # The pool lists are cached on the store so put()/get() skip the
        # acquire() call and its dict lookup on every tuple hop.
        env.register_pool(_Get)
        env.register_pool(_Put)
        self._get_pool = env._pools[_Get]
        self._put_pool = env._pools[_Put]

    def __len__(self) -> int:
        return len(self.items)

    def peek_all(self) -> tuple[Any, ...]:
        """Snapshot of queued items, head first (used by checkpointing)."""
        return tuple(self.items)

    def put(self, item: Any) -> _Put:
        env = self.env
        pool = self._put_pool
        if pool:
            env.pool_hits += 1
            ev = pool.pop()
            ev.store = self
            ev.item = item
        else:
            env.pool_misses += 1
            ev = _Put(env, self, item)
        # Fast path: room and no queued putters (the steady state) — accept
        # in place, skipping the _drain loop.  The succeed order matches
        # _drain exactly: the put settles first, then (via the virtual
        # _drain, so PriorityStore keeps its min-scan) any waiting getter.
        if not self._putters and len(self.items) < self.capacity:
            self.items.append(ev.item)
            ev.succeed()
            if self._getters:
                self._drain()
            return ev
        self._putters.append(ev)
        self._drain()
        return ev

    def put_front(self, item: Any) -> None:
        """Insert ``item`` at the *head* of the queue, bypassing capacity.

        Used for checkpoint tokens, which Meteor Shower places "at the
        head of the queue" of the output buffers (§III-B); tokens are tiny
        and must never be delayed behind backpressured data.
        """
        self.items.appendleft(item)
        self._drain()

    def get(self) -> _Get:
        env = self.env
        pool = self._get_pool
        if pool:
            env.pool_hits += 1
            ev = pool.pop()
            ev.store = self
        else:
            env.pool_misses += 1
            ev = _Get(env, self)
        # Fast path: an item is ready (getters must be empty then — _drain
        # never leaves both getters and items).  Succeed order matches
        # _drain: the get settles first, then at most one backpressured
        # putter is admitted into the slot just freed.
        if self.items and not self._getters:
            ev.succeed(self.items.popleft())
            if self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
            return ev
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            # admit puts while there is room
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # satisfy getters while there are items
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progress = True

    def _abandon_get(self, ev: _Get) -> None:
        try:
            self._getters.remove(ev)
        except ValueError:
            pass

    def _abandon_put(self, ev: _Put) -> None:
        try:
            self._putters.remove(ev)
        except ValueError:
            pass


class PriorityStore(Store):
    """A store that yields the smallest item first (items must be orderable).

    Ties are broken by insertion order via an internal sequence number, so
    heterogeneous payloads can be wrapped as ``(priority, payload)``.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._seq = 0

    def put(self, item: Any) -> _Put:
        self._seq += 1
        return super().put((item, self._seq))

    def get(self) -> _Get:
        env = self.env
        pool = self._get_pool
        if pool:
            env.pool_hits += 1
            ev = pool.pop()
            ev.store = self
        else:
            env.pool_misses += 1
            ev = _Get(env, self)
        # Fast path mirroring Store.get, with the min-scan pick.
        if self.items and not self._getters:
            best_idx = min(range(len(self.items)), key=lambda i: self.items[i])
            item, _seq = self.items[best_idx]
            del self.items[best_idx]
            ev.succeed(item)
            if self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
            return ev
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            if self._getters and self.items:
                best_idx = min(range(len(self.items)), key=lambda i: self.items[i])
                item, _seq = self.items[best_idx]
                del self.items[best_idx]
                self._getters.popleft().succeed(item)
                progress = True


class Gate:
    """A reusable open/closed barrier.

    Processes wait on :meth:`wait`; :meth:`open` releases all current
    waiters and lets future waiters pass immediately until :meth:`close`.
    Used to pause an HAU's intake during synchronous checkpoints.
    """

    def __init__(self, env: Environment, opened: bool = True):
        self.env = env
        self._opened = opened
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        return self._opened

    def wait(self) -> Event:
        ev = self.env.event(name="gate")
        if self._opened:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        self._opened = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        self._opened = False
