"""Deterministic discrete-event simulation engine.

A small, self-contained SimPy-style kernel used as the substrate for the
Meteor Shower reproduction.  Processes are Python generators that yield
:class:`Event` objects; the :class:`Environment` advances a virtual clock
and resumes processes when the events they wait on fire.

Design goals (see DESIGN.md):

* **Determinism** — same seed, same schedule, bit-identical runs.  Events
  with equal timestamps fire in insertion order (monotonic sequence
  numbers break ties).
* **Zero wall-clock coupling** — simulated seconds only; suitable for
  modelling a 56-node cluster far faster than real time.
* **Interruptible waits** — processes can be interrupted (used for
  fail-stop node kills) and can wait on composite conditions
  (:class:`AnyOf` / :class:`AllOf`).
"""

from repro.simulation.core import (
    Environment,
    Event,
    Process,
    Timeout,
    Interrupt,
    SimulationError,
    AnyOf,
    AllOf,
)
from repro.simulation.resources import Resource, Store, PriorityStore
from repro.simulation.rng import RngRegistry

# Opt-in runtime sanitizers (REPRO_SAN=1): installed once at import time
# so the per-event hot path carries no enablement branch when off.
from repro.sanitize import maybe_install_kernel as _maybe_install_kernel

_maybe_install_kernel()

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "AnyOf",
    "AllOf",
    "Resource",
    "Store",
    "PriorityStore",
    "RngRegistry",
]
