"""Core of the discrete-event engine: events, processes, environment.

The engine is a classic event-heap design.  An :class:`Event` has a value
and a list of callbacks; scheduling an event pushes ``(time, priority,
seq, event)`` onto a heap.  A :class:`Process` wraps a generator: every
``yield`` hands back an event (or condition), and the process resumes when
that event fires.  This mirrors the structure of SimPy, trimmed to what
the reproduction needs and tuned for determinism.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable
import heapq
from typing import Any

from repro.observability.tracer import NULL_TRACER, Tracer
from repro.telemetry.registry import NULL_REGISTRY, MetricRegistry

# Event scheduling priorities.  URGENT is used internally for process
# resumption bookkeeping so that, at a given instant, state mutations
# settle before ordinary events fire.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not model errors)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    ``cause`` carries an arbitrary payload describing why (e.g. the
    failure event that killed the node hosting the process).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` settles it
    exactly once.  Callbacks registered before settlement run when the
    environment pops the event off the heap; callbacks registered after
    settlement run immediately at the current simulated instant.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_settled",
        "_scheduled",
        "_flushed",
        "name",
    )

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool | None = None
        self._settled = False
        self._scheduled = False
        self._flushed = False
        self.name = name

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been settled (succeeded or failed)."""
        return self._settled

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if not self._settled:
            raise SimulationError(f"value of pending event {self!r}")
        return self._value

    # -- settlement --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Settle the event successfully, scheduling callbacks after ``delay``."""
        if self._settled:
            raise SimulationError(f"event {self!r} already settled")
        self._settled = True
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Settle the event with an exception; waiters see it raised."""
        if self._settled:
            raise SimulationError(f"event {self!r} already settled")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._settled = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=delay)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "settled" if self._settled else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._settled = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class _Condition(Event):
    """Base for AnyOf/AllOf composite waits."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev._flushed:
                # Fired in the past: observe right away.
                self._observe(ev)
            else:
                # Pending, or settled but not yet fired (e.g. a Timeout whose
                # delay has not elapsed): wait for its callback flush.
                ev.callbacks.append(self._observe)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev._flushed and ev.ok}

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any constituent event fires (or fails)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator yields :class:`Event` objects.  When a yielded event
    succeeds, its value is sent back into the generator; when it fails,
    the exception is thrown in.  :meth:`interrupt` throws
    :class:`Interrupt` into the generator at the current instant.
    """

    __slots__ = ("_generator", "_waiting_on", "label")

    def __init__(self, env: "Environment", generator: Generator, label: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process target {generator!r} is not a generator")
        self._generator = generator
        self._waiting_on: Event | None = None
        self.label = label
        # Bootstrap: resume once at the current instant.
        boot = Event(env, name=f"boot:{label}")
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            return  # interrupting a finished process is a no-op
        # Detach from whatever we were waiting on so its later settlement
        # does not resume us twice.
        waited = self._waiting_on
        if waited is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        kick = Event(self.env, name=f"interrupt:{self.label}")
        kick.callbacks.append(lambda _ev: self._step(throw=Interrupt(cause)))
        kick.succeed(delay=0.0)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if self.triggered:
            return
        if event.ok:
            self._step(send=event.value)
        else:
            self._step(throw=event.value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        if self.triggered:
            return
        self.env._active_process = self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An uncaught Interrupt terminates the process quietly: this is
            # the normal fate of a process on a killed node.
            self.succeed(None)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process {self.label!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        if target._flushed:
            # The event already flushed its callbacks (it fired in the past):
            # resume via a fresh event so we stay in heap order.
            kick = Event(self.env, name=f"rewait:{self.label}")
            kick.callbacks.append(lambda _ev: self._resume(target))
            kick.succeed()
        else:
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.label!r} {state}>"


class Environment:
    """Holds the clock and the event heap; runs the simulation."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        # Structured tracing (repro.observability): the no-op default means
        # instrumented hot paths pay one attribute check per emission site.
        self.trace = NULL_TRACER
        # Runtime telemetry (repro.telemetry): same contract as tracing —
        # the shared no-op registry keeps disabled instrumentation free.
        self.telemetry = NULL_REGISTRY

    def enable_tracing(self, tracer: Tracer | None = None) -> Tracer:
        """Attach a :class:`~repro.observability.tracer.Tracer` (a fresh
        one unless given) and return it.  All instrumented layers emit
        through ``env.trace`` from then on."""
        self.trace = tracer if tracer is not None else Tracer()
        return self.trace

    def enable_telemetry(
        self, registry: MetricRegistry | None = None
    ) -> MetricRegistry:
        """Attach a :class:`~repro.telemetry.registry.MetricRegistry` (a
        fresh one unless given) and return it.  Like tracing, enable
        before constructing the runtime: instrumented layers cache
        ``env.telemetry`` at construction time."""
        self.telemetry = registry if registry is not None else MetricRegistry()
        return self.telemetry

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- factories ----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, label: str = "") -> Process:
        return Process(self, generator, label=label)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def step(self) -> None:
        """Pop and fire the next event; advances the clock."""
        if not self._heap:
            raise SimulationError("step() on empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now - 1e-12:
            raise SimulationError("event scheduled in the past")
        self._now = max(self._now, when)
        event._flushed = True
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until a time, an event, or schedule exhaustion.

        * ``until`` is a number → run until the clock reaches it.
        * ``until`` is an :class:`Event` → run until it fires; returns its
          value (raises if it failed).
        * ``until`` is None → run until no events remain.
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            done = {"hit": sentinel._flushed}
            if not done["hit"]:
                sentinel.callbacks.append(lambda _ev: done.__setitem__("hit", True))
            while not done["hit"]:
                if not self._heap:
                    if sentinel.triggered:
                        break
                    raise SimulationError("schedule exhausted before until-event fired")
                self.step()
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
