"""Core of the discrete-event engine: events, processes, environment.

The engine is a classic event-heap design.  An :class:`Event` has a value
and a list of callbacks; scheduling an event pushes ``(time, priority,
seq, event)`` onto a heap.  A :class:`Process` wraps a generator: every
``yield`` hands back an event (or condition), and the process resumes when
that event fires.  This mirrors the structure of SimPy, trimmed to what
the reproduction needs and tuned for determinism.

Fast paths (see DESIGN.md, "Kernel performance"): the kernel recycles
hot-path event objects through per-environment free lists, resumes
processes through pooled :class:`_Kick` markers instead of throwaway
``boot:``/``rewait:``/``interrupt:`` events, allocates callback lists
lazily, and settles events with inlined scheduling.  Every fast path
preserves the ``(time, priority, seq)`` total order exactly — the heap
receives the same entries with the same sequence numbers as the original
slow paths, so same-seed runs remain bit-identical (checked by
``benchmarks/DIGEST_baseline.json`` and ``python -m repro.harness.digest``).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Generator, Iterable
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any

from repro.observability.tracer import NULL_TRACER, Tracer
from repro.simulation.calendar import CalendarQueue
from repro.telemetry.registry import NULL_REGISTRY, MetricRegistry

# Event scheduling priorities.  URGENT is used internally for process
# resumption bookkeeping so that, at a given instant, state mutations
# settle before ordinary events fire.  MONITOR sorts *after* every
# workload event at the same instant: the observability plane
# (repro.monitor) evaluates its windows only once the instant has fully
# settled, so monitoring can never perturb workload event order.
URGENT = 0
NORMAL = 1
MONITOR = 2

# Scheduler backend for new environments: the binary heap (default, the
# digest-pinned fast path) or the calendar queue (REPRO_SCHED=calendar;
# same (time, priority, seq) total order, amortized O(1) at high event
# density).  Read once at import, like the other REPRO_* config knobs.
_SCHEDULERS = ("heap", "calendar")
_DEFAULT_SCHEDULER = os.environ.get("REPRO_SCHED", "heap")

# Per-environment free-list bound: big enough to absorb the steady-state
# churn of a 56-node run, small enough that a burst never pins memory.
_POOL_LIMIT = 512


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not model errors)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    ``cause`` carries an arbitrary payload describing why (e.g. the
    failure event that killed the node hosting the process).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` settles it
    exactly once.  Callbacks registered before settlement run when the
    environment pops the event off the heap; callbacks registered after
    settlement run immediately at the current simulated instant (callers
    check ``_flushed`` first — see :class:`_Condition` / :class:`Process`).

    ``callbacks`` is ``None`` until the first waiter attaches, so events
    nobody waits on (pure delays, fire-and-forget puts) never allocate a
    list.  Use :meth:`add_callback` or handle the ``None`` case inline.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_settled",
        "_scheduled",
        "_flushed",
        "name",
    )

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = None
        self._value: Any = None
        self._ok: bool | None = None
        self._settled = False
        self._scheduled = False
        self._flushed = False
        self.name = name

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been settled (succeeded or failed)."""
        return self._settled

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if not self._settled:
            raise SimulationError(f"value of pending event {self!r}")
        return self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Attach a callback, allocating the list on first use."""
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = [fn]
        else:
            cbs.append(fn)

    def _recycle(self) -> None:
        """Reset to pristine pre-settlement state before pooling.

        Called by :meth:`Environment.step` only on provably-unreferenced
        instances of registered pool classes; subclasses with extra
        references override and chain up so the pool never pins objects.
        """
        self._value = None
        self._ok = None
        self._settled = False
        self._scheduled = False
        self._flushed = False
        self.callbacks = None
        self.name = ""

    # -- settlement --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Settle the event successfully, scheduling callbacks after ``delay``.

        Scheduling is inlined: a settleable event is never already on the
        heap (pre-scheduled settled events — timeouts — bypass this path),
        so the ``_scheduled`` guard of :meth:`Environment._schedule` is
        statically true here.
        """
        if self._settled:
            raise SimulationError(f"event {self!r} already settled")
        self._settled = True
        self._ok = True
        self._value = value
        self._scheduled = True
        env = self.env
        env._seq = seq = env._seq + 1
        if env._cal is None:
            heappush(env._heap, (env._now + delay, NORMAL, seq, self))
        else:
            env._cal.push((env._now + delay, NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Settle the event with an exception; waiters see it raised."""
        if self._settled:
            raise SimulationError(f"event {self!r} already settled")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._settled = True
        self._ok = False
        self._value = exception
        self._scheduled = True
        env = self.env
        env._seq = seq = env._seq + 1
        if env._cal is None:
            heappush(env._heap, (env._now + delay, NORMAL, seq, self))
        else:
            env._cal.push((env._now + delay, NORMAL, seq, self))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "settled" if self._settled else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Prefer :meth:`Environment.timeout`, which recycles instances through
    the environment's free list (a direct construction works identically
    but always allocates).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._settled = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def _recycle(self) -> None:
        # A timeout is born settled, so _settled/_ok/_scheduled stay True
        # in the pool; Environment.timeout() re-arms _flushed/delay/_value.
        self._value = None
        self.callbacks = None


class _Kick:
    """A pooled direct-resume marker on the event heap.

    Replaces the throwaway ``boot:``/``rewait:``/``interrupt:`` kick
    events: when popped, :meth:`fire` sends the settled value (or throws
    the stored exception) straight into the waiting generator — no Event
    allocation, no callback-list flush.  A kick occupies a heap slot with
    the same ``(time, priority, seq)`` it would have had as an event, so
    the total order is untouched.  Kicks are engine-internal and never
    escape to model code, so they recycle unconditionally after firing.
    """

    __slots__ = ("env", "process", "target", "throw")

    def __init__(self, env: "Environment"):
        self.env = env
        self.process: Process | None = None
        self.target: Event | None = None
        self.throw: BaseException | None = None

    def fire(self) -> None:
        proc, target, throw = self.process, self.target, self.throw
        self.process = self.target = self.throw = None
        pool = self.env._kick_pool
        if len(pool) < _POOL_LIMIT:
            pool.append(self)
        if throw is not None:
            # interrupt: _step itself ignores already-finished processes
            proc._step(throw=throw)
        elif target is not None:
            # rewait: deliver the flushed target's outcome
            proc._resume(target)
        elif not proc._settled:
            # boot: first resumption of a fresh generator
            proc._step(send=None)


class _Condition(Event):
    """Base for AnyOf/AllOf composite waits."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev._flushed:
                # Fired in the past: observe right away.
                self._observe(ev)
            else:
                # Pending, or settled but not yet fired (e.g. a Timeout whose
                # delay has not elapsed): wait for its callback flush.
                ev.add_callback(self._observe)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev._flushed and ev.ok}

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any constituent event fires (or fails)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator yields :class:`Event` objects.  When a yielded event
    succeeds, its value is sent back into the generator; when it fails,
    the exception is thrown in.  :meth:`interrupt` throws
    :class:`Interrupt` into the generator at the current instant.
    """

    __slots__ = ("_generator", "_waiting_on", "label")

    def __init__(self, env: "Environment", generator: Generator, label: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process target {generator!r} is not a generator")
        self._generator = generator
        self._waiting_on: Event | None = None
        self.label = label
        # Bootstrap: resume once at the current instant (pooled kick; same
        # heap slot the old `boot:` event occupied).
        env._schedule_kick(self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._settled:
            return  # interrupting a finished process is a no-op
        # Detach from whatever we were waiting on so its later settlement
        # does not resume us twice.
        waited = self._waiting_on
        if waited is not None and waited.callbacks and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        self.env._schedule_kick(self, throw=Interrupt(cause))

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # The callback-side twin of _step with the delegated call inlined:
        # this runs once per popped event, so the extra frame is visible.
        self._waiting_on = None
        if self._settled:
            return
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            self.succeed(None)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            env._active_process = None

        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process {self.label!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        if target._flushed:
            env._schedule_kick(self, target=target)
        else:
            cbs = target.callbacks
            if cbs is None:
                target.callbacks = [self._resume]
            else:
                cbs.append(self._resume)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        if self._settled:
            return
        env = self.env
        env._active_process = self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An uncaught Interrupt terminates the process quietly: this is
            # the normal fate of a process on a killed node.
            self.succeed(None)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            env._active_process = None

        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process {self.label!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        if target._flushed:
            # The event already flushed its callbacks (it fired in the past):
            # resume via a pooled kick so we stay in heap order.
            env._schedule_kick(self, target=target)
        else:
            cbs = target.callbacks
            if cbs is None:
                target.callbacks = [self._resume]
            else:
                cbs.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.label!r} {state}>"


class Environment:
    """Holds the clock and the event heap; runs the simulation."""

    __slots__ = (
        "_now",
        "_heap",
        "_cal",
        "_seq",
        "_active_process",
        "trace",
        "telemetry",
        "_pools",
        "_kick_pool",
        "events_popped",
        "pool_hits",
        "pool_misses",
    )

    def __init__(self, scheduler: str | None = None):
        self._now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        # Scheduler backend: None means the binary heap above (default);
        # a CalendarQueue means every push/pop goes through it instead.
        # Both produce the identical (time, priority, seq) total order.
        if scheduler is None:
            scheduler = _DEFAULT_SCHEDULER
        if scheduler not in _SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r} (expected one of {_SCHEDULERS})"
            )
        self._cal: CalendarQueue | None = (
            CalendarQueue() if scheduler == "calendar" else None
        )
        self._seq = 0
        self._active_process: Process | None = None
        # Structured tracing (repro.observability): the no-op default means
        # instrumented hot paths pay one attribute check per emission site.
        self.trace = NULL_TRACER
        # Runtime telemetry (repro.telemetry): same contract as tracing —
        # the shared no-op registry keeps disabled instrumentation free.
        self.telemetry = NULL_REGISTRY
        # Free lists (never shared across environments), keyed by exact
        # class; subclasses join via register_pool().  Plus kernel counters.
        self._pools: dict[type, list[Event]] = {Event: [], Timeout: []}
        self._kick_pool: list[_Kick] = []
        self.events_popped = 0
        self.pool_hits = 0
        self.pool_misses = 0

    def enable_tracing(self, tracer: Tracer | None = None) -> Tracer:
        """Attach a :class:`~repro.observability.tracer.Tracer` (a fresh
        one unless given) and return it.  All instrumented layers emit
        through ``env.trace`` from then on."""
        self.trace = tracer if tracer is not None else Tracer()
        return self.trace

    def enable_telemetry(
        self, registry: MetricRegistry | None = None
    ) -> MetricRegistry:
        """Attach a :class:`~repro.telemetry.registry.MetricRegistry` (a
        fresh one unless given) and return it.  Like tracing, enable
        before constructing the runtime: instrumented layers cache
        ``env.telemetry`` at construction time."""
        self.telemetry = registry if registry is not None else MetricRegistry()
        return self.telemetry

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Name of the active scheduler backend (``heap`` or ``calendar``)."""
        return "heap" if self._cal is None else "calendar"

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- kernel statistics ---------------------------------------------------
    def kernel_stats(self) -> dict[str, int]:
        """Counters of the engine's own work (not simulated behaviour)."""
        return {
            "events_popped": self.events_popped,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
        }

    def publish_kernel_metrics(self) -> None:
        """Fold the kernel counters into ``env.telemetry`` (one shot, at
        end of run — per-pop increments would tax the hot loop)."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        telemetry.counter("ms_kernel_events_popped_total").inc(self.events_popped)
        telemetry.counter("ms_kernel_pool_hits_total").inc(self.pool_hits)
        telemetry.counter("ms_kernel_pool_misses_total").inc(self.pool_misses)

    # -- event pooling -------------------------------------------------------
    def register_pool(self, cls: type) -> None:
        """Opt an :class:`Event` subclass into step()-time recycling.

        The class must define ``_recycle`` to clear every extra reference
        it holds (see :meth:`Event._recycle`); instances come back via
        :meth:`acquire`.  Only exact-type matches are pooled.
        """
        self._pools.setdefault(cls, [])

    def acquire(self, cls: type) -> Event | None:
        """A recycled, reset instance of a registered class, or None.

        The caller re-initialises its own fields; the Event core is
        already pristine (``_recycle`` ran at recycle time).
        """
        pool = self._pools.get(cls)
        if pool:
            self.pool_hits += 1
            return pool.pop()
        self.pool_misses += 1
        return None

    # -- factories ----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        pool = self._pools[Event]
        if pool:
            self.pool_hits += 1
            ev = pool.pop()
            ev.name = name
            return ev
        self.pool_misses += 1
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._pools[Timeout]
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            self.pool_hits += 1
            t = pool.pop()
            t.delay = delay
            t._value = value
            t._flushed = False
            # _settled/_ok/_scheduled were left True by the recycler; the
            # schedule below mirrors Timeout.__init__ exactly.
            self._seq = seq = self._seq + 1
            if self._cal is None:
                heappush(self._heap, (self._now + delay, NORMAL, seq, t))
            else:
                self._cal.push((self._now + delay, NORMAL, seq, t))
            return t
        self.pool_misses += 1
        return Timeout(self, delay, value)

    def process(self, generator: Generator, label: str = "") -> Process:
        return Process(self, generator, label=label)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq = seq = self._seq + 1
        if self._cal is None:
            heappush(self._heap, (self._now + delay, priority, seq, event))
        else:
            self._cal.push((self._now + delay, priority, seq, event))

    def _schedule_kick(
        self,
        process: Process,
        target: Event | None = None,
        throw: BaseException | None = None,
    ) -> None:
        """Schedule a pooled direct-resume marker at the current instant.

        Takes the same heap slot (NORMAL priority, next sequence number)
        the old kick events took, so resumption order is unchanged."""
        pool = self._kick_pool
        if pool:
            kick = pool.pop()
        else:
            kick = _Kick(self)
        kick.process = process
        kick.target = target
        kick.throw = throw
        self._seq = seq = self._seq + 1
        if self._cal is None:
            heappush(self._heap, (self._now, NORMAL, seq, kick))
        else:
            self._cal.push((self._now, NORMAL, seq, kick))

    def step(self) -> None:
        """Pop and fire the next event; advances the clock."""
        cal = self._cal
        if cal is None:
            heap = self._heap
            if not heap:
                raise SimulationError("step() on empty schedule")
            when, _prio, _seq, event = heappop(heap)
        else:
            entry = cal.pop()
            if entry is None:
                raise SimulationError("step() on empty schedule")
            when, _prio, _seq, event = entry
        now = self._now
        if when < now - 1e-12:
            raise SimulationError("event scheduled in the past")
        if when > now:
            self._now = when
        self.events_popped += 1
        cls = event.__class__
        if cls is _Kick:
            event.fire()
            return
        event._flushed = True
        callbacks = event.callbacks
        if callbacks is not None:
            event.callbacks = None
            for cb in callbacks:
                cb(event)
        # Recycle provably-unreferenced hot-path events: refcount 2 means
        # only this frame's local and getrefcount's argument hold the
        # object, so no generator, condition, or model structure can ever
        # observe it again — reuse is invisible.  The exact-class pool
        # lookup keeps unregistered subclasses (conditions, processes,
        # resource requests) out.
        if getrefcount(event) == 2:
            pool = self._pools.get(cls)
            if pool is not None and len(pool) < _POOL_LIMIT:
                event._recycle()
                pool.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        cal = self._cal
        if cal is None:
            return self._heap[0][0] if self._heap else float("inf")
        return cal.peek()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until a time, an event, or schedule exhaustion.

        * ``until`` is a number → run until the clock reaches it.
        * ``until`` is an :class:`Event` → run until it fires; returns its
          value (raises if it failed).
        * ``until`` is None → run until no events remain.
        """
        if until is None or isinstance(until, Event) or self._cal is not None:
            return self._run_stepwise(until)
        # Heap fast path for the run-until-horizon shape every experiment
        # uses: step() inlined with the heap, free lists and counters
        # hoisted into locals.  Pops the identical entries in the
        # identical order as step(), so digests are unaffected.
        horizon = float(until)
        now = self._now
        if horizon < now:
            raise SimulationError("cannot run backwards in time")
        heap = self._heap
        pools_get = self._pools.get
        kick_cls = _Kick
        limit = _POOL_LIMIT
        refcount = getrefcount
        pop = heappop
        popped = 0
        try:
            while heap and heap[0][0] <= horizon:
                when, _prio, _seq, event = pop(heap)
                if when > now:
                    self._now = now = when
                elif when < now - 1e-12:
                    raise SimulationError("event scheduled in the past")
                popped += 1
                cls = event.__class__
                if cls is kick_cls:
                    event.fire()
                    continue
                event._flushed = True
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for cb in callbacks:
                        cb(event)
                if refcount(event) == 2:
                    pool = pools_get(cls)
                    if pool is not None and len(pool) < limit:
                        event._recycle()
                        pool.append(event)
        finally:
            self.events_popped += popped
        self._now = horizon
        return None

    def _run_stepwise(self, until: float | Event | None) -> Any:
        """Generic run loop driving :meth:`step` per event.

        Used for the calendar-queue backend and the non-horizon ``until``
        shapes; also the loop the REPRO_SAN sanitizer reinstates so every
        pop goes through the audited step.
        """
        step = self.step
        cal = self._cal
        if until is None:
            if cal is None:
                heap = self._heap
                while heap:
                    step()
            else:
                while cal:
                    step()
            return None
        if isinstance(until, Event):
            sentinel = until
            while not sentinel._flushed:
                if not (self._heap if cal is None else cal):
                    if sentinel.triggered:
                        break
                    raise SimulationError("schedule exhausted before until-event fired")
                step()
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError("cannot run backwards in time")
        while self.peek() <= horizon:
            step()
        self._now = horizon
        return None
