"""Deterministic per-component random streams.

Every stochastic component (workload generator, failure injector,
baseline checkpoint phase picker, ...) draws from its own named
``numpy.random.Generator`` derived from a root seed via ``SeedSequence``
spawning keyed on the component name.  Adding a new component therefore
never perturbs the streams of existing ones — a requirement for the
regression tests that pin exact simulated outcomes.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Hands out independent, reproducible RNG streams by name."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (memoised) generator for ``name``.

        The stream key mixes the root seed with a CRC of the name, so the
        mapping is stable across runs and insertion orders.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are all independent of this one's."""
        return RngRegistry(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)
