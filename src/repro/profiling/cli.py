"""``python -m repro.profiling`` — causal timelines from traces or runs.

Two input modes:

* **Trace file**: point it at a trace JSONL written by
  ``ExperimentResult.write_trace`` (or the CI artifact) and it
  reconstructs the timeline offline.
* **Run mode** (no positional argument): runs the configured schemes
  in-process with tracing enabled — ``--schemes ms-src,ms-src+ap`` etc.
  — so ``python -m repro.profiling --format chrome-trace`` is a
  one-command Perfetto export of a headline-style run.

Formats: ``table`` (fixed-width, via the harness formatter), ``json``
(deterministic timeline + critical paths + stragglers), and
``chrome-trace`` (Perfetto / ``chrome://tracing`` loadable).

``--straggler-report`` narrows the output to just the straggler report
(HAUs whose per-round checkpoint time exceeds ``--straggler-k`` x the
round median) in table or json form.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.profiling.chrome_trace import (
    dumps_chrome_trace,
    merge_chrome_traces,
    to_chrome_trace,
)
from repro.profiling.critical_path import (
    compute_critical_path,
    critical_paths,
    straggler_report,
)
from repro.profiling.spans import Timeline, build_timeline

_JSON_KW = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)

DEFAULT_SCHEMES = "ms-src,ms-src+ap,ms-src+ap+aa"


def _fmt_t(value: float | None) -> str:
    return "-" if value is None else f"{value:.3f}"


def render_timeline(
    tl: Timeline,
    title: str = "",
    round_filter: int | None = None,
    show_critical_path: bool = False,
    straggler_k: float = 2.0,
) -> str:
    """Fixed-width tables for one timeline."""
    # deferred: keep repro.profiling importable without the harness
    from repro.harness.report import format_table

    sections: list[str] = []
    waves = [
        w for w in tl.rounds if round_filter is None or w.round_id == round_filter
    ]
    if waves:
        rows = [
            [
                w.round_id,
                _fmt_t(w.started_at),
                _fmt_t(w.completed_at),
                _fmt_t(w.duration),
                len(w.haus),
                ",".join(w.incomplete_haus()) or "-",
            ]
            for w in waves
        ]
        label = f"Checkpoint rounds ({tl.scheme})" if tl.scheme else "Checkpoint rounds"
        sections.append(
            format_table(
                ["round", "start", "complete", "seconds", "haus", "incomplete"],
                rows,
                title=title + label if title else label,
            )
        )
    elif title:
        sections.append(f"{title}no checkpoint rounds in trace")

    if show_critical_path:
        paths = (
            [p for p in [compute_critical_path(tl.events, round_filter)] if p]
            if round_filter is not None
            else critical_paths(tl.events)
        )
        for path in paths:
            rows = [
                [h.kind, h.subject, _fmt_t(h.start), _fmt_t(h.end), _fmt_t(h.duration)]
                for h in path.hops
            ]
            sections.append(
                format_table(
                    ["hop", "subject", "start", "end", "seconds"],
                    rows,
                    title=(
                        f"Critical path: round {path.round_id} "
                        f"({path.seconds:.3f}s, gated by {path.gating_hau})"
                    ),
                )
            )

    straggler_table = render_stragglers(tl, round_filter, straggler_k)
    if straggler_table is not None:
        sections.append(straggler_table)

    if tl.recoveries:
        rows = [
            [
                i + 1,
                _fmt_t(rec.detected_at),
                _fmt_t(rec.started_at),
                _fmt_t(rec.reconnect_at),
                _fmt_t(rec.total),
                len(rec.haus),
                rec.dead or "-",
            ]
            for i, rec in enumerate(tl.recoveries)
        ]
        sections.append(
            format_table(
                ["#", "detected", "start", "reconnect", "seconds", "haus", "dead"],
                rows,
                title="Recoveries",
            )
        )
    if not sections:
        sections.append("empty trace: no rounds, recoveries or spans")
    return "\n\n".join(sections)


def render_stragglers(
    tl: Timeline, round_filter: int | None, straggler_k: float
) -> str | None:
    """Straggler table for one timeline; ``None`` when nothing is flagged."""
    from repro.harness.report import format_table

    stragglers = [
        s
        for s in straggler_report(tl, k=straggler_k)
        if round_filter is None or s.round_id == round_filter
    ]
    if not stragglers:
        return None
    rows = [
        [s.round_id, s.hau_id, _fmt_t(s.seconds), _fmt_t(s.median_seconds),
         f"{s.ratio:.2f}x"]
        for s in stragglers
    ]
    return format_table(
        ["round", "hau", "seconds", "median", "ratio"],
        rows,
        title=f"Stragglers (> {straggler_k:g}x round median)",
    )


def timeline_payload(
    tl: Timeline, round_filter: int | None, straggler_k: float
) -> dict[str, Any]:
    """The JSON-format payload for one timeline."""
    paths = (
        [p for p in [compute_critical_path(tl.events, round_filter)] if p]
        if round_filter is not None
        else critical_paths(tl.events)
    )
    data = tl.as_dict()
    if round_filter is not None:
        data["rounds"] = [r for r in data["rounds"] if r["round"] == round_filter]
    return {
        "timeline": data,
        "critical_paths": [p.as_dict() for p in paths],
        "stragglers": [
            s.as_dict()
            for s in straggler_report(tl, k=straggler_k)
            if round_filter is None or s.round_id == round_filter
        ],
    }


def _run_schemes(args: argparse.Namespace) -> list[tuple[str, Any]]:
    """Run each configured scheme with tracing on; returns (name, tracer)."""
    # deferred: the harness pulls in the whole experiment stack
    from repro.harness.experiment import ExperimentConfig, run_experiment

    out = []
    for scheme in args.schemes.split(","):
        scheme = scheme.strip()
        if not scheme:
            continue
        cfg = ExperimentConfig(
            app=args.app,
            scheme=scheme,
            n_checkpoints=args.checkpoints,
            window=args.window,
            warmup=args.warmup,
            seed=args.seed,
            workers=args.workers,
            spares=args.spares,
            racks=args.racks,
            enable_recovery=args.failure_at is not None,
        )
        result = run_experiment(cfg, failure_at=args.failure_at, trace=True)
        out.append((scheme, result.tracer))
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profiling",
        description="Causal timelines, critical paths and Perfetto export.",
    )
    parser.add_argument(
        "trace", nargs="?", default=None,
        help="trace JSONL file (omit to run the configured schemes)",
    )
    parser.add_argument(
        "--format", choices=("table", "json", "chrome-trace"), default="table",
    )
    parser.add_argument("--round", type=int, default=None, metavar="N",
                        help="restrict output to round N")
    parser.add_argument("--critical-path", action="store_true",
                        help="show per-round critical-path hops (table format)")
    parser.add_argument("--straggler-k", type=float, default=2.0,
                        help="straggler threshold: k x round median (default 2)")
    parser.add_argument("--straggler-report", action="store_true",
                        help="print only the straggler report (table/json formats)")
    parser.add_argument("--output", "-o", default=None,
                        help="write to a file instead of stdout")
    run = parser.add_argument_group("run mode (no trace file)")
    run.add_argument("--app", default="tmi")
    run.add_argument("--schemes", default=DEFAULT_SCHEMES,
                     help=f"comma-separated scheme list (default {DEFAULT_SCHEMES})")
    run.add_argument("--checkpoints", type=int, default=2)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--window", type=float, default=60.0)
    run.add_argument("--warmup", type=float, default=20.0)
    run.add_argument("--workers", type=int, default=8)
    run.add_argument("--spares", type=int, default=12)
    run.add_argument("--racks", type=int, default=2)
    run.add_argument("--failure-at", type=float, default=None,
                     help="inject a whole-app failure at this instant")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.trace is not None:
        from repro.observability.export import read_jsonl

        try:
            events = read_jsonl(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        sources: list[tuple[str, Any]] = [("", events)]
    else:
        try:
            sources = _run_schemes(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not sources:
            print("error: no schemes to run", file=sys.stderr)
            return 2

    if args.straggler_report:
        if args.format == "chrome-trace":
            print("error: --straggler-report supports table/json formats only",
                  file=sys.stderr)
            return 2
        if args.format == "json":
            payload = {}
            for name, src in sources:
                tl = build_timeline(src)
                payload[name or "trace"] = [
                    s.as_dict()
                    for s in straggler_report(tl, k=args.straggler_k)
                    if args.round is None or s.round_id == args.round
                ]
            text = json.dumps(payload, **_JSON_KW) + "\n"
        else:
            parts = []
            for name, src in sources:
                tl = build_timeline(src)
                table = render_stragglers(tl, args.round, args.straggler_k)
                if table is None:
                    table = f"no stragglers (> {args.straggler_k:g}x round median)"
                parts.append(f"== {name} ==\n\n{table}" if name else table)
            text = "\n\n".join(parts) + "\n"
        return _write_output(text, args.output)

    if args.format == "chrome-trace":
        traces = [
            to_chrome_trace(
                src,
                pid_base=i * 1000,
                label_prefix=f"{name}/" if name else "",
            )
            for i, (name, src) in enumerate(sources)
        ]
        text = dumps_chrome_trace(
            traces[0] if len(traces) == 1 else merge_chrome_traces(traces)
        )
    elif args.format == "json":
        payload: dict[str, Any] = {}
        for name, src in sources:
            tl = build_timeline(src)
            payload[name or "trace"] = timeline_payload(
                tl, args.round, args.straggler_k
            )
        text = json.dumps(payload, **_JSON_KW) + "\n"
    else:
        parts = []
        for name, src in sources:
            tl = build_timeline(src)
            parts.append(
                render_timeline(
                    tl,
                    title=f"== {name} ==\n\n" if name else "",
                    round_filter=args.round,
                    show_critical_path=args.critical_path,
                    straggler_k=args.straggler_k,
                )
            )
        text = "\n\n".join(parts) + "\n"

    return _write_output(text, args.output)


def _write_output(text: str, output: str | None) -> int:
    try:
        if output:
            with open(output, "w", encoding="utf-8", newline="\n") as fh:
                fh.write(text)
        else:
            sys.stdout.write(text)
    except BrokenPipeError:
        # downstream consumer (e.g. `head`) closed the pipe early
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
