"""Causal span reconstruction over a deterministic trace stream.

The tracer (PR 1) records *events* — instants.  This module folds them
back into *spans* — intervals with a start, an end and a phase name —
so a run can be read as a timeline instead of a flat JSONL stream:

* **Checkpoint waves** (:class:`RoundWave`): one per application
  checkpoint round, from ``checkpoint.round.start`` to
  ``checkpoint.round.complete``, holding every HAU's individual
  checkpoint (:class:`HAUCheckpoint`) with per-phase attribution that
  mirrors :mod:`repro.metrics.breakdown` (Fig. 14): token-wait,
  safepoint-wait, snapshot (fork + serialise) and disk I/O.
* **Recovery timelines** (:class:`RecoveryTimeline`): from
  ``failure.inject`` through detection, per-HAU reload/read/deserialise
  (Fig. 16) and reconnection to ``recovery.done``.

Everything here is a pure function of the event stream: feed it the
same trace twice and the spans are identical, which is what makes the
Chrome-trace export (:mod:`repro.profiling.chrome_trace`) byte-stable.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.observability.tracer import NullTracer, TraceEvent, Tracer

# Trace kinds the span builder consumes.  Every entry MUST exist in
# ``repro.observability.tracer.KINDS`` — enforced by the TRC002 lint
# rule (see repro.analysis.schema), which fails ``--strict`` on drift.
SPAN_KINDS = (
    "control.send",
    "token.send",
    "token.recv",
    "checkpoint.round.start",
    "checkpoint.command",
    "checkpoint.tokens.done",
    "checkpoint.start",
    "checkpoint.write.start",
    "checkpoint.commit",
    "checkpoint.round.complete",
    "failure.inject",
    "failure.detected",
    "recovery.start",
    "recovery.hau.start",
    "recovery.hau",
    "recovery.reconnect",
    "recovery.done",
)

# Per-HAU checkpoint phases, in causal order (DESIGN.md: "Causal
# timelines & critical paths").
PHASES = ("token-wait", "safepoint-wait", "snapshot", "disk-io")


@dataclass(frozen=True)
class Ev:
    """A normalised trace event: works for live :class:`TraceEvent`
    objects and for dicts round-tripped through JSONL."""

    seq: int
    t: float
    kind: str
    subject: str
    data: dict[str, Any]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


def normalize_events(source: Any) -> list[Ev]:
    """Accept a Tracer, an iterable of TraceEvents, or JSONL dicts."""
    if isinstance(source, (Tracer, NullTracer)):
        events: Iterable[Any] = source.events
    else:
        events = source
    out: list[Ev] = []
    for e in events:
        if isinstance(e, Ev):
            out.append(e)
        elif isinstance(e, TraceEvent):
            out.append(Ev(e.seq, e.t, e.kind, e.subject, dict(e.data)))
        else:
            out.append(
                Ev(
                    int(e["seq"]),
                    float(e["t"]),
                    str(e["kind"]),
                    str(e.get("subject", "")),
                    dict(e.get("data", {})),
                )
            )
    out.sort(key=lambda ev: ev.seq)
    return out


@dataclass
class Span:
    """One named interval on one subject's track."""

    name: str
    subject: str
    start: float
    end: float
    round_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "subject": self.subject,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "round": self.round_id,
            "attrs": dict(sorted(self.attrs.items())),
        }


@dataclass
class HAUCheckpoint:
    """One HAU's individual checkpoint within one round, as timestamps.

    Unset timestamps are ``None`` (not 0.0): a checkpoint cut short by a
    failure is visibly truncated rather than showing zero-length phases
    — the same distinction :meth:`CheckpointBreakdown.spans` draws.
    """

    hau_id: str
    round_id: int
    command_at: float | None = None
    command_via: str = ""
    tokens_done_at: float | None = None
    start_at: float | None = None
    write_start_at: float | None = None
    commit_at: float | None = None
    mode: str = ""
    state_bytes: int = 0

    @property
    def complete(self) -> bool:
        return self.commit_at is not None

    @property
    def total(self) -> float | None:
        if self.command_at is None or self.commit_at is None:
            return None
        return self.commit_at - self.command_at

    def phase_spans(self) -> list[Span]:
        """The HAU's phases as spans, in causal order; phases never
        reached are simply absent."""
        points = [
            ("token-wait", self.command_at, self.tokens_done_at),
            ("safepoint-wait", self.tokens_done_at, self.start_at),
            ("snapshot", self.start_at, self.write_start_at),
            ("disk-io", self.write_start_at, self.commit_at),
        ]
        spans = []
        for name, a, b in points:
            if a is not None and b is not None:
                spans.append(
                    Span(name, self.hau_id, a, b, round_id=self.round_id)
                )
        return spans

    def as_dict(self) -> dict[str, Any]:
        return {
            "hau": self.hau_id,
            "round": self.round_id,
            "command_at": self.command_at,
            "command_via": self.command_via,
            "tokens_done_at": self.tokens_done_at,
            "start_at": self.start_at,
            "write_start_at": self.write_start_at,
            "commit_at": self.commit_at,
            "mode": self.mode,
            "bytes": self.state_bytes,
            "complete": self.complete,
            "phases": {s.name: s.duration for s in self.phase_spans()},
        }


@dataclass
class RoundWave:
    """One application checkpoint round across every HAU."""

    round_id: int
    scheme: str
    started_at: float
    completed_at: float | None = None
    haus: dict[str, HAUCheckpoint] = field(default_factory=dict)

    def hau(self, hau_id: str) -> HAUCheckpoint:
        hc = self.haus.get(hau_id)
        if hc is None:
            hc = HAUCheckpoint(hau_id=hau_id, round_id=self.round_id)
            self.haus[hau_id] = hc
        return hc

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def duration(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def incomplete_haus(self) -> list[str]:
        return sorted(h for h, hc in self.haus.items() if not hc.complete)

    def as_dict(self) -> dict[str, Any]:
        return {
            "round": self.round_id,
            "scheme": self.scheme,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "duration": self.duration,
            "complete": self.complete,
            "incomplete_haus": self.incomplete_haus(),
            "haus": {h: self.haus[h].as_dict() for h in sorted(self.haus)},
        }


@dataclass
class RecoveryHAU:
    """One HAU's reload/read/deserialise phases of one recovery."""

    hau_id: str
    node: str = ""
    start_at: float | None = None
    end_at: float | None = None
    reload_seconds: float = 0.0
    disk_io_seconds: float = 0.0
    deserialize_seconds: float = 0.0
    bytes_read: int = 0

    def phase_spans(self) -> list[Span]:
        if self.start_at is None or self.end_at is None:
            return []
        t0 = self.start_at
        spans = []
        for name, dur in (
            ("reload", self.reload_seconds),
            ("disk-io", self.disk_io_seconds),
            ("deserialize", self.deserialize_seconds),
        ):
            spans.append(Span(name, self.hau_id, t0, t0 + dur))
            t0 += dur
        return spans

    def as_dict(self) -> dict[str, Any]:
        return {
            "hau": self.hau_id,
            "node": self.node,
            "start_at": self.start_at,
            "end_at": self.end_at,
            "reload": self.reload_seconds,
            "disk_io": self.disk_io_seconds,
            "deserialize": self.deserialize_seconds,
            "bytes": self.bytes_read,
        }


@dataclass
class RecoveryTimeline:
    """One global rollback, failure injection through reconnection."""

    scheme: str = ""
    injected_at: list[float] = field(default_factory=list)
    injected_subjects: list[str] = field(default_factory=list)
    detected_at: float | None = None
    started_at: float | None = None
    reconnect_at: float | None = None
    reconnect_seconds: float = 0.0
    done_at: float | None = None
    dead: str = ""
    cut_round: int = 0
    haus: dict[str, RecoveryHAU] = field(default_factory=dict)

    def hau(self, hau_id: str) -> RecoveryHAU:
        rh = self.haus.get(hau_id)
        if rh is None:
            rh = RecoveryHAU(hau_id=hau_id)
            self.haus[hau_id] = rh
        return rh

    @property
    def complete(self) -> bool:
        return self.done_at is not None

    @property
    def total(self) -> float | None:
        if self.started_at is None or self.reconnect_at is None:
            return None
        return self.reconnect_at - self.started_at

    @property
    def detection_lag(self) -> float | None:
        if not self.injected_at or self.detected_at is None:
            return None
        return self.detected_at - self.injected_at[0]

    def as_dict(self) -> dict[str, Any]:
        return {
            "scheme": self.scheme,
            "injected_at": list(self.injected_at),
            "injected_subjects": list(self.injected_subjects),
            "detected_at": self.detected_at,
            "started_at": self.started_at,
            "reconnect_at": self.reconnect_at,
            "reconnect_seconds": self.reconnect_seconds,
            "done_at": self.done_at,
            "dead": self.dead,
            "cut_round": self.cut_round,
            "total": self.total,
            "detection_lag": self.detection_lag,
            "haus": {h: self.haus[h].as_dict() for h in sorted(self.haus)},
        }


@dataclass
class Timeline:
    """Everything the profiler reconstructed from one trace."""

    rounds: list[RoundWave] = field(default_factory=list)
    recoveries: list[RecoveryTimeline] = field(default_factory=list)
    events: list[Ev] = field(default_factory=list)
    scheme: str = ""

    def round(self, round_id: int) -> RoundWave | None:
        for w in self.rounds:
            if w.round_id == round_id:
                return w
        return None

    def hau_ids(self) -> list[str]:
        ids: set[str] = set()
        for w in self.rounds:
            ids.update(w.haus)
        for r in self.recoveries:
            ids.update(r.haus)
        for e in self.events:
            if e.kind in ("hau.start", "token.send", "token.recv") and e.subject:
                ids.add(e.subject)
        return sorted(ids)

    def as_dict(self) -> dict[str, Any]:
        return {
            "scheme": self.scheme,
            "rounds": [w.as_dict() for w in self.rounds],
            "recoveries": [r.as_dict() for r in self.recoveries],
            "haus": self.hau_ids(),
            "events": len(self.events),
        }


def build_timeline(source: Any) -> Timeline:
    """Fold a trace (tracer, events, or JSONL dicts) into a Timeline."""
    events = normalize_events(source)
    tl = Timeline(events=events)
    waves: dict[int, RoundWave] = {}
    current_rec: RecoveryTimeline | None = None
    pending_injects: list[Ev] = []

    def wave_for(round_id: int, e: Ev) -> RoundWave:
        w = waves.get(round_id)
        if w is None:
            # A round whose start event predates the trace window (or a
            # scheme without round.start) still gets a wave, anchored at
            # the first event seen for it.
            w = RoundWave(
                round_id=round_id, scheme=str(e.get("scheme", "")), started_at=e.t
            )
            waves[round_id] = w
            tl.rounds.append(w)
        return w

    for e in events:
        k = e.kind
        if k == "checkpoint.round.start":
            r = int(e.get("round", 0))
            if r not in waves:
                w = RoundWave(round_id=r, scheme=e.subject, started_at=e.t)
                waves[r] = w
                tl.rounds.append(w)
            tl.scheme = tl.scheme or e.subject
        elif k == "checkpoint.command":
            hc = wave_for(int(e.get("round", 0)), e).hau(e.subject)
            if hc.command_at is None:
                hc.command_at = e.t
                hc.command_via = str(e.get("via", ""))
        elif k == "checkpoint.tokens.done":
            hc = wave_for(int(e.get("round", 0)), e).hau(e.subject)
            if hc.tokens_done_at is None:
                hc.tokens_done_at = e.t
        elif k == "checkpoint.start":
            hc = wave_for(int(e.get("round", 0)), e).hau(e.subject)
            hc.start_at = e.t
            hc.mode = str(e.get("mode", ""))
        elif k == "checkpoint.write.start":
            hc = wave_for(int(e.get("round", 0)), e).hau(e.subject)
            hc.write_start_at = e.t
            hc.state_bytes = int(e.get("bytes", 0))
        elif k == "checkpoint.commit":
            hc = wave_for(int(e.get("round", 0)), e).hau(e.subject)
            hc.commit_at = e.t
            hc.state_bytes = int(e.get("bytes", hc.state_bytes))
        elif k == "checkpoint.round.complete":
            wave_for(int(e.get("round", 0)), e).completed_at = e.t
        elif k == "failure.inject":
            pending_injects.append(e)
        elif k == "failure.detected":
            current_rec = RecoveryTimeline(scheme=e.subject, detected_at=e.t)
            current_rec.injected_at = [i.t for i in pending_injects]
            current_rec.injected_subjects = [i.subject for i in pending_injects]
            pending_injects = []
            tl.recoveries.append(current_rec)
        elif k == "recovery.start":
            if current_rec is None or current_rec.started_at is not None:
                current_rec = RecoveryTimeline(scheme=e.subject)
                tl.recoveries.append(current_rec)
            current_rec.started_at = e.t
            current_rec.dead = str(e.get("dead", ""))
            current_rec.cut_round = int(e.get("cut_round", 0))
        elif k == "recovery.hau.start":
            if current_rec is not None:
                rh = current_rec.hau(e.subject)
                rh.start_at = e.t
                rh.node = str(e.get("node", ""))
        elif k == "recovery.hau":
            if current_rec is not None:
                rh = current_rec.hau(e.subject)
                rh.end_at = e.t
                rh.node = str(e.get("node", rh.node))
                rh.reload_seconds = float(e.get("reload", 0.0))
                rh.disk_io_seconds = float(e.get("disk_io", 0.0))
                rh.deserialize_seconds = float(e.get("deserialize", 0.0))
                rh.bytes_read = int(e.get("bytes", 0))
        elif k == "recovery.reconnect":
            if current_rec is not None:
                current_rec.reconnect_at = e.t
                current_rec.reconnect_seconds = float(e.get("seconds", 0.0))
        elif k == "recovery.done":
            if current_rec is not None:
                current_rec.done_at = e.t
                current_rec = None

    tl.rounds.sort(key=lambda w: (w.started_at, w.round_id))
    return tl
