"""Causal timeline profiler: spans, critical paths, Perfetto export.

Consumes a run's deterministic trace stream (live tracer, event list or
JSONL dicts) and reconstructs causal structure:

* :func:`build_timeline` — checkpoint waves, recovery timelines and
  per-HAU phase attribution (:mod:`repro.profiling.spans`)
* :func:`compute_critical_path` / :func:`critical_paths` — the longest
  causal chain gating each round, plus :func:`straggler_report`
  (:mod:`repro.profiling.critical_path`)
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — deterministic
  Chrome trace-event JSON for Perfetto / ``chrome://tracing``
  (:mod:`repro.profiling.chrome_trace`)
* ``python -m repro.profiling`` — CLI over all of the above
  (:mod:`repro.profiling.cli`)
"""

from repro.profiling.chrome_trace import (
    dumps_chrome_trace,
    merge_chrome_traces,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.profiling.critical_path import (
    CriticalPath,
    Hop,
    Straggler,
    compute_critical_path,
    critical_paths,
    straggler_report,
)
from repro.profiling.spans import (
    PHASES,
    SPAN_KINDS,
    HAUCheckpoint,
    RecoveryTimeline,
    RoundWave,
    Span,
    Timeline,
    build_timeline,
    normalize_events,
)

__all__ = [
    "PHASES",
    "SPAN_KINDS",
    "CriticalPath",
    "HAUCheckpoint",
    "Hop",
    "RecoveryTimeline",
    "RoundWave",
    "Span",
    "Straggler",
    "Timeline",
    "build_timeline",
    "compute_critical_path",
    "critical_paths",
    "dumps_chrome_trace",
    "merge_chrome_traces",
    "normalize_events",
    "straggler_report",
    "to_chrome_trace",
    "write_chrome_trace",
]
