"""Token-propagation critical paths and straggler attribution.

For each complete checkpoint round, the critical path is the longest
causal chain that gated ``checkpoint.round.complete``: starting from the
last HAU to commit, walk backwards through its disk write, its snapshot,
the token that released it, the network hop that carried the token, and
the sender's own chain — until the walk reaches the controller's
``control.send`` and the ``checkpoint.round.start`` instant.

The hops are contiguous by construction (each spans exactly the interval
between two consecutive events on the chain), so the hop durations tile
``[round.start, round.complete]`` and their sum equals the round's
wall-clock duration — the invariant the acceptance test checks.

Determinism: every choice point (which commit gated the round, which
token arrived last, which send matched a receive) breaks ties by the
smallest HAU id, so the same trace always yields the same path.

Hop kinds
---------
``round-start``    controller issued the round (zero-width anchor)
``control-hop``    control channel: ``control.send`` → command receipt
``command-wait``   command receipt → token collection done (sources)
``token-insert``   command receipt → 1-hop token enqueued (MS-src+ap)
``token-forward``  own commit → cascade token sent (MS-src)
``token-hop``      ``token.send`` → ``token.recv`` across one edge
``token-wait``     last token arrival → token collection done
``safepoint-wait`` tokens done → individual checkpoint start
``snapshot``       checkpoint start → write start (fork + serialise)
``disk-io``        write start → commit
``round-complete`` gating commit → ``checkpoint.round.complete``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any

from repro.profiling.spans import Ev, Timeline, build_timeline, normalize_events


@dataclass(frozen=True)
class Hop:
    """One contiguous segment of a round's critical path."""

    kind: str
    subject: str  # HAU id, "src->dst" for token-hop, scheme for anchors
    start: float
    end: float

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }


@dataclass
class CriticalPath:
    """The longest causal chain gating one round's completion."""

    round_id: int
    scheme: str
    started_at: float
    completed_at: float
    gating_hau: str
    hops: list[Hop] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.completed_at - self.started_at

    def hop_sum(self) -> float:
        return sum(h.duration for h in self.hops)

    def hop_names(self) -> list[str]:
        return [f"{h.kind}:{h.subject}" for h in self.hops]

    def as_dict(self) -> dict[str, Any]:
        return {
            "round": self.round_id,
            "scheme": self.scheme,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "seconds": self.seconds,
            "gating_hau": self.gating_hau,
            "hops": [h.as_dict() for h in self.hops],
        }


class _Index:
    """Per-round lookup tables over the normalised event stream."""

    def __init__(self, events: list[Ev]):
        self.round_start: dict[int, Ev] = {}
        self.round_complete: dict[int, Ev] = {}
        self.commits: dict[tuple[str, int], Ev] = {}
        self.write_starts: dict[tuple[str, int], Ev] = {}
        self.ckpt_starts: dict[tuple[str, int], Ev] = {}
        self.tokens_done: dict[tuple[str, int], Ev] = {}
        self.commands: dict[tuple[str, int], Ev] = {}
        self.recvs: dict[tuple[str, int], list[Ev]] = {}
        self.sends: dict[tuple[str, int], list[Ev]] = {}
        self.controls: dict[str, list[Ev]] = {}
        for e in events:
            r = e.get("round")
            key = (e.subject, int(r)) if r is not None else None
            if e.kind == "checkpoint.round.start":
                self.round_start.setdefault(int(r), e)
            elif e.kind == "checkpoint.round.complete":
                self.round_complete.setdefault(int(r), e)
            elif e.kind == "checkpoint.commit" and key:
                self.commits.setdefault(key, e)
            elif e.kind == "checkpoint.write.start" and key:
                self.write_starts.setdefault(key, e)
            elif e.kind == "checkpoint.start" and key:
                self.ckpt_starts.setdefault(key, e)
            elif e.kind == "checkpoint.tokens.done" and key:
                self.tokens_done.setdefault(key, e)
            elif e.kind == "checkpoint.command" and key:
                self.commands.setdefault(key, e)
            elif e.kind == "token.recv" and key:
                self.recvs.setdefault(key, []).append(e)
            elif e.kind == "token.send" and key:
                self.sends.setdefault(key, []).append(e)
            elif e.kind == "control.send":
                self.controls.setdefault(e.subject, []).append(e)

    def matching_send(self, recv: Ev, round_id: int) -> Ev | None:
        """The ``token.send`` that produced ``recv``: same origin, same
        round, an edge whose destination is the receiver, latest at or
        before the arrival."""
        origin = str(recv.get("origin", ""))
        dst = recv.subject
        best: Ev | None = None
        for s in self.sends.get((origin, round_id), ()):
            edge = str(s.get("edge", ""))
            # edge ids look like "src[0]->dst[1]" (dsps.graph.EdgeSpec)
            if f"->{dst}[" not in edge:
                continue
            if s.t <= recv.t and s.seq < recv.seq and (best is None or s.seq > best.seq):
                best = s
        return best

    def last_control(self, hau_id: str, before: Ev) -> Ev | None:
        best: Ev | None = None
        for c in self.controls.get(hau_id, ()):
            if c.seq <= before.seq and (best is None or c.seq > best.seq):
                best = c
        return best


def compute_critical_path(source: Any, round_id: int) -> CriticalPath | None:
    """Reconstruct round ``round_id``'s critical path from a trace.

    Returns ``None`` for rounds that never completed (or are absent).
    """
    events = normalize_events(source)
    idx = _Index(events)
    start = idx.round_start.get(round_id)
    complete = idx.round_complete.get(round_id)
    if start is None or complete is None:
        return None
    scheme = start.subject

    # The gating commit: the latest one; ties go to the smallest HAU id.
    commits = [e for (h, r), e in idx.commits.items() if r == round_id]
    if not commits:
        return None
    latest_t = max(e.t for e in commits)
    gate = min(
        (e for e in commits if e.t == latest_t), key=lambda e: e.subject
    )

    hops: list[Hop] = [Hop("round-complete", scheme, gate.t, complete.t)]
    cur_hau = gate.subject
    cur_commit = gate
    visited: set[str] = set()

    while True:
        if cur_hau in visited:  # defensive: traces are acyclic by design
            break
        visited.add(cur_hau)
        key = (cur_hau, round_id)
        ws = idx.write_starts.get(key)
        cs = idx.ckpt_starts.get(key)
        if ws is None or cs is None:
            break
        hops.append(Hop("disk-io", cur_hau, ws.t, cur_commit.t))
        hops.append(Hop("snapshot", cur_hau, cs.t, ws.t))
        td = idx.tokens_done.get(key)
        anchor = td if td is not None else cs
        if td is not None:
            hops.append(Hop("safepoint-wait", cur_hau, td.t, cs.t))
        recvs = [
            rv for rv in idx.recvs.get(key, ()) if rv.seq <= anchor.seq
        ]
        if recvs:
            last = max(
                recvs,
                key=lambda e: (e.t, e.seq),
            )
            # Among arrivals at the same instant the chain is gated by
            # all of them; pick the smallest origin id for determinism.
            same_t = [rv for rv in recvs if rv.t == last.t]
            last = min(same_t, key=lambda e: str(e.get("origin", "")))
            hops.append(Hop("token-wait", cur_hau, last.t, anchor.t))
            send = idx.matching_send(last, round_id)
            origin = str(last.get("origin", ""))
            if send is None:
                break
            hops.append(Hop("token-hop", f"{origin}->{cur_hau}", send.t, last.t))
            if bool(send.get("front", False)):
                # 1-hop token (MS-src+ap family): inserted at command
                # receipt; the chain roots through the control plane.
                cmd = idx.commands.get((origin, round_id))
                if cmd is not None:
                    hops.append(Hop("token-insert", origin, cmd.t, send.t))
                    anchor_root = cmd
                else:
                    anchor_root = send
                ctrl = idx.last_control(origin, anchor_root)
                if ctrl is not None:
                    hops.append(Hop("control-hop", origin, ctrl.t, anchor_root.t))
                    hops.append(Hop("round-start", scheme, start.t, ctrl.t))
                break
            # Cascade token (MS-src): forwarded after the sender's own
            # synchronous checkpoint — recurse through the sender.
            sender_commit = idx.commits.get((origin, round_id))
            if sender_commit is None:
                break
            hops.append(Hop("token-forward", origin, sender_commit.t, send.t))
            cur_hau = origin
            cur_commit = sender_commit
            continue
        # No token arrivals: a source; root through command + control.
        cmd = idx.commands.get(key)
        if cmd is not None:
            hops.append(Hop("command-wait", cur_hau, cmd.t, anchor.t))
            ctrl = idx.last_control(cur_hau, cmd)
            if ctrl is not None:
                hops.append(Hop("control-hop", cur_hau, ctrl.t, cmd.t))
                hops.append(Hop("round-start", scheme, start.t, ctrl.t))
        break

    hops.reverse()
    return CriticalPath(
        round_id=round_id,
        scheme=scheme,
        started_at=start.t,
        completed_at=complete.t,
        gating_hau=gate.subject,
        hops=hops,
    )


def critical_paths(source: Any) -> list[CriticalPath]:
    """Critical paths for every *complete* round, in round order."""
    events = normalize_events(source)
    idx = _Index(events)
    out = []
    for r in sorted(idx.round_complete):
        if r in idx.round_start:
            path = compute_critical_path(events, r)
            if path is not None:
                out.append(path)
    return out


@dataclass(frozen=True)
class Straggler:
    """An HAU whose checkpoint ran >= k x the round median."""

    round_id: int
    hau_id: str
    seconds: float
    median_seconds: float

    @property
    def ratio(self) -> float:
        if self.median_seconds <= 0.0:
            return 0.0
        return self.seconds / self.median_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "round": self.round_id,
            "hau": self.hau_id,
            "seconds": self.seconds,
            "median_seconds": self.median_seconds,
            "ratio": self.ratio,
        }


def straggler_report(timeline: Timeline | Any, k: float = 2.0) -> list[Straggler]:
    """HAUs whose per-round checkpoint time exceeds ``k`` x the round's
    median (command receipt to commit), sorted by round then HAU id."""
    tl = timeline if isinstance(timeline, Timeline) else build_timeline(timeline)
    out: list[Straggler] = []
    for wave in tl.rounds:
        totals = {
            h: hc.total
            for h, hc in wave.haus.items()
            if hc.total is not None
        }
        if len(totals) < 2:
            continue
        med = median(sorted(totals.values()))
        for h in sorted(totals):
            if med > 0.0 and totals[h] > k * med:
                out.append(
                    Straggler(
                        round_id=wave.round_id,
                        hau_id=h,
                        seconds=totals[h],
                        median_seconds=med,
                    )
                )
    return out
