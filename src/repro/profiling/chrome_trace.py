"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

Renders a reconstructed :class:`~repro.profiling.spans.Timeline` in the
`trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_:

* ``pid 0`` is the global/scheme track: one thread per checkpoint round
  holding the round span and its critical-path hops, plus a thread for
  failures and recoveries.
* Each HAU gets its own ``pid`` (sorted HAU id order, starting at 1),
  with one thread per round carrying the per-phase checkpoint spans and
  a lifecycle thread for restarts and recovery phases.
* Timestamps are simulated seconds converted to integer microseconds
  (``ts``/``dur``), ``ph: "X"`` for spans, ``"i"`` for instants and
  ``"M"`` for process/thread metadata.

Output is deterministic: events are sorted by a total key and
serialised with sorted keys and compact separators, so two same-seed
runs export byte-identical files (asserted in tests).
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.profiling.critical_path import critical_paths
from repro.profiling.spans import Timeline, build_timeline

_JSON_KW = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)

# tid layout inside each pid: rounds use their own round id as tid
# (shifted to keep 0/1 free), so overlapping rounds never share a track.
_TID_LIFECYCLE = 0
_ROUND_TID_BASE = 8


def _us(t: float) -> int:
    """Simulated seconds -> integer microseconds (trace-event ``ts``)."""
    return int(round(t * 1e6))


def _dur(start: float, end: float) -> int:
    return max(0, _us(end) - _us(start))


def _meta(pid: int, tid: int, name: str, value: str) -> dict[str, Any]:
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "name": name,
        "args": {"name": value},
    }


def _span(
    pid: int, tid: int, name: str, cat: str, start: float, end: float,
    args: dict[str, Any] | None = None,
) -> dict[str, Any]:
    ev: dict[str, Any] = {
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "name": name,
        "cat": cat,
        "ts": _us(start),
        "dur": _dur(start, end),
    }
    if args:
        ev["args"] = dict(sorted(args.items()))
    return ev


def _instant(
    pid: int, tid: int, name: str, cat: str, t: float,
    args: dict[str, Any] | None = None,
) -> dict[str, Any]:
    ev: dict[str, Any] = {
        "ph": "i",
        "pid": pid,
        "tid": tid,
        "name": name,
        "cat": cat,
        "ts": _us(t),
        "s": "g",  # global scope: renders as a full-height marker
    }
    if args:
        ev["args"] = dict(sorted(args.items()))
    return ev


def to_chrome_trace(
    source: Any,
    include_critical_path: bool = True,
    pid_base: int = 0,
    label_prefix: str = "",
) -> dict[str, Any]:
    """Build the trace-event JSON object for one run's trace.

    ``pid_base``/``label_prefix`` let a caller merge several runs (e.g.
    one per scheme) into a single file without pid collisions.
    """
    tl = source if isinstance(source, Timeline) else build_timeline(source)
    hau_ids = tl.hau_ids()
    scheme_pid = pid_base
    pid_of = {h: pid_base + i + 1 for i, h in enumerate(hau_ids)}
    scheme_label = tl.scheme or "scheme"

    out: list[dict[str, Any]] = []
    used_tids: dict[int, set[int]] = {}

    def touch(pid: int, tid: int) -> None:
        used_tids.setdefault(pid, set()).add(tid)

    # -- global/scheme track ----------------------------------------------
    for wave in tl.rounds:
        tid = _ROUND_TID_BASE + wave.round_id
        touch(scheme_pid, tid)
        if wave.completed_at is not None:
            out.append(
                _span(
                    scheme_pid, tid, f"round {wave.round_id}", "round",
                    wave.started_at, wave.completed_at,
                    {"haus": len(wave.haus), "round": wave.round_id},
                )
            )
        else:
            out.append(
                _instant(
                    scheme_pid, tid, f"round {wave.round_id} (incomplete)",
                    "round", wave.started_at,
                    {"incomplete_haus": ",".join(wave.incomplete_haus())},
                )
            )

    if include_critical_path:
        for path in critical_paths(tl.events):
            tid = _ROUND_TID_BASE + path.round_id
            touch(scheme_pid, tid)
            for hop in path.hops:
                out.append(
                    _span(
                        scheme_pid, tid, hop.kind, "critical-path",
                        hop.start, hop.end, {"subject": hop.subject},
                    )
                )

    touch(scheme_pid, _TID_LIFECYCLE)
    for e in tl.events:
        if e.kind == "failure.inject":
            out.append(
                _instant(
                    scheme_pid, _TID_LIFECYCLE, f"failure {e.subject}",
                    "failure", e.t, {"kind": str(e.get("kind", ""))},
                )
            )
        elif e.kind == "failure.detected":
            out.append(
                _instant(
                    scheme_pid, _TID_LIFECYCLE, "failure detected",
                    "failure", e.t, {"dead": str(e.get("dead", ""))},
                )
            )
    for rec in tl.recoveries:
        if rec.started_at is not None and rec.done_at is not None:
            out.append(
                _span(
                    scheme_pid, _TID_LIFECYCLE, "recovery", "recovery",
                    rec.started_at, rec.done_at,
                    {"dead": rec.dead, "cut_round": rec.cut_round},
                )
            )
        if rec.reconnect_at is not None and rec.reconnect_seconds > 0.0:
            out.append(
                _span(
                    scheme_pid, _TID_LIFECYCLE, "reconnect", "recovery",
                    rec.reconnect_at - rec.reconnect_seconds, rec.reconnect_at,
                )
            )

    # -- per-HAU tracks ----------------------------------------------------
    for wave in tl.rounds:
        tid = _ROUND_TID_BASE + wave.round_id
        for hau_id in sorted(wave.haus):
            pid = pid_of[hau_id]
            touch(pid, tid)
            for span in wave.haus[hau_id].phase_spans():
                out.append(
                    _span(
                        pid, tid, span.name, "checkpoint",
                        span.start, span.end, {"round": wave.round_id},
                    )
                )

    for e in tl.events:
        if e.kind == "hau.start" and e.subject in pid_of:
            pid = pid_of[e.subject]
            touch(pid, _TID_LIFECYCLE)
            out.append(
                _instant(
                    pid, _TID_LIFECYCLE, "hau start", "lifecycle", e.t,
                    {"node": str(e.get("node", ""))},
                )
            )
    for rec in tl.recoveries:
        for hau_id in sorted(rec.haus):
            pid = pid_of.get(hau_id)
            if pid is None:
                continue
            touch(pid, _TID_LIFECYCLE)
            for span in rec.haus[hau_id].phase_spans():
                out.append(
                    _span(pid, _TID_LIFECYCLE, span.name, "recovery",
                          span.start, span.end)
                )

    # -- metadata ----------------------------------------------------------
    meta: list[dict[str, Any]] = []
    meta.append(
        _meta(scheme_pid, 0, "process_name", f"{label_prefix}{scheme_label}")
    )
    meta.append(
        {
            "ph": "M",
            "pid": scheme_pid,
            "tid": 0,
            "name": "process_sort_index",
            "args": {"sort_index": pid_base},
        }
    )
    for hau_id in hau_ids:
        pid = pid_of[hau_id]
        meta.append(_meta(pid, 0, "process_name", f"{label_prefix}{hau_id}"))
        meta.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": pid},
            }
        )
    for pid in sorted(used_tids):
        for tid in sorted(used_tids[pid]):
            if tid == _TID_LIFECYCLE:
                label = "lifecycle" if pid != scheme_pid else "events"
            else:
                label = f"round {tid - _ROUND_TID_BASE}"
            meta.append(_meta(pid, tid, "thread_name", label))

    def sort_key(ev: dict[str, Any]) -> tuple:
        return (
            ev["pid"],
            ev["tid"],
            ev.get("ts", -1),
            -ev.get("dur", 0),
            ev["ph"],
            ev["name"],
        )

    events = meta + sorted(out, key=sort_key)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def dumps_chrome_trace(trace: dict[str, Any]) -> str:
    """Canonical single-line JSON text (trailing newline included)."""
    return json.dumps(trace, **_JSON_KW) + "\n"


def write_chrome_trace(source: Any, path_or_file: str | IO[str]) -> int:
    """Export a trace to ``path``; returns the trace-event count."""
    trace = (
        source
        if isinstance(source, dict) and "traceEvents" in source
        else to_chrome_trace(source)
    )
    text = dumps_chrome_trace(trace)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(text)
    return len(trace["traceEvents"])


def merge_chrome_traces(traces: list[dict[str, Any]]) -> dict[str, Any]:
    """Concatenate several per-run trace objects (already pid-spaced via
    ``pid_base``) into one loadable file."""
    events: list[dict[str, Any]] = []
    for tr in traces:
        events.extend(tr["traceEvents"])
    return {"displayTimeUnit": "ms", "traceEvents": events}
