"""Deterministic JSONL export of a trace.

One event per line, canonical form: keys sorted, compact separators,
no NaN/Infinity, floats rendered by ``repr`` (shortest round-trip).
Every field is simulation-derived, so two runs with the same seed
produce *byte-identical* output — the property CI and the regression
tests rely on.
"""

from __future__ import annotations

from collections.abc import Iterable
import json
from typing import IO

from repro.observability.tracer import TraceEvent, Tracer, events_of

_JSON_KW = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)


def event_to_json(event: TraceEvent) -> str:
    """Canonical single-line JSON for one event."""
    return json.dumps(event.as_dict(), **_JSON_KW)


def dumps_jsonl(source: Tracer | Iterable[TraceEvent]) -> str:
    """The whole trace as JSONL text (trailing newline included)."""
    lines = [event_to_json(e) for e in events_of(source)]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(source: Tracer | Iterable[TraceEvent], path: str) -> int:
    """Write the trace to ``path``; returns the number of events."""
    events = events_of(source)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for e in events:
            fh.write(event_to_json(e))
            fh.write("\n")
    return len(events)


class JsonlStreamWriter:
    """A tracer subscriber that appends each event to an open file as it
    is emitted — for long runs where buffering the trace is undesirable.

    Usage::

        tracer = env.enable_tracing()
        with open(path, "w", encoding="utf-8", newline="\\n") as fh:
            tracer.subscribe(JsonlStreamWriter(fh))
            ...run...
    """

    def __init__(self, fh: IO[str]):
        self._fh = fh
        self.written = 0

    def __call__(self, event: TraceEvent) -> None:
        self._fh.write(event_to_json(event))
        self._fh.write("\n")
        self.written += 1


def read_jsonl(path: str) -> list[dict]:
    """Parse a trace file back into plain dicts (for tooling/tests)."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
