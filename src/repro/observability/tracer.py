"""The trace event bus: typed, sim-time-keyed structured events.

A :class:`Tracer` rides on the simulation
:class:`~repro.simulation.core.Environment` (``env.trace``).  Every
instrumented layer — token propagation, per-HAU checkpoints, alert-mode
transitions, failure injection, recovery phases — emits
:class:`TraceEvent` records through it.  The default is
:data:`NULL_TRACER`, whose ``enabled`` flag is False: emission sites
guard with a single attribute check, so an untraced run pays (almost)
nothing.

Determinism contract: an event carries *only* simulation-derived data
(sim time, ids, sizes, counts) — never wall clock, memory addresses or
unsorted collections — so two runs with the same seed produce identical
event streams (see :mod:`repro.observability.export` for the byte-exact
JSONL form).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from typing import Any

# Dotted event kinds emitted by the instrumented layers.  Kept in one
# place so the schema is discoverable; emission sites may add new kinds
# but should document them in DESIGN.md.
KINDS = (
    "hau.start",  # an HAU's processes came up (fresh start or restart)
    "control.send",  # controller -> HAU control-plane message
    "token.send",  # a checkpoint token left an HAU along one edge
    "token.recv",  # a checkpoint token landed in an HAU's inbox
    "checkpoint.round.start",  # a scheme initiated an application checkpoint
    "checkpoint.command",  # an HAU learned of the round (control msg or first token)
    "checkpoint.tokens.done",  # an HAU has seen tokens on all of its input edges
    "checkpoint.start",  # one HAU began its individual checkpoint
    "checkpoint.write.start",  # the state write to shared storage began
    "checkpoint.commit",  # the state write completed (version assigned)
    "checkpoint.round.complete",  # every HAU of the round committed
    "replay.out",  # post-recovery re-send of saved in-flight outputs
    "replay.backlog",  # post-recovery re-processing of pre-token backlog
    "replay.source",  # post-recovery full-speed source replay
    "failure.inject",  # the injector (or harness) hit a node/rack/link
    "failure.restore",  # a timed degradation (partition/straggler) healed
    "failure.detected",  # the controller's watcher observed dead HAUs
    "recovery.start",  # global rollback began
    "recovery.hau.start",  # one HAU began its reload/read/deserialise phases
    "recovery.hau",  # one HAU finished its reload/read/deserialise phases
    "recovery.reconnect",  # phase 4: controller re-wired the application
    "recovery.replay",  # preserved source tuples queued for replay
    "recovery.done",  # global rollback complete
    "baseline.recover.start",  # 1-safe single-HAU restart began
    "baseline.recover.done",  # 1-safe single-HAU restart complete
    "baseline.unrecoverable",  # correlated failure lost a retained buffer
    "aa.profile",  # MS-aa profiling finished (dynamic HAUs, smax)
    "aa.turning_point",  # controller processed a turning-point report
    "aa.alert.enter",  # total dynamic state dropped below smax
    "aa.decision",  # MS-aa chose a checkpoint instant (icr | deadline)
    "alert.fire",  # an SLO's burn rate crossed threshold in both windows
    "alert.resolve",  # a firing SLO's fast-window burn rate dropped back
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``data`` is stored as a tuple of sorted ``(key, value)`` pairs so the
    record is hashable and its serialised form is canonical.
    """

    seq: int  # emission order: a total order within one run
    t: float  # simulated seconds
    kind: str  # dotted event type, e.g. "checkpoint.commit"
    subject: str  # primary entity: HAU id, node id, scheme name, ""
    data: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.data:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "subject": self.subject,
            "data": dict(self.data),
        }


class NullTracer:
    """The default no-op tracer: emission sites see ``enabled == False``
    and skip event construction entirely, so the hot path pays a single
    attribute check when tracing is off."""

    __slots__ = ()

    enabled = False
    events: tuple[TraceEvent, ...] = ()

    def emit(self, kind: str, /, t: float, subject: str = "", **data: Any) -> None:
        return None

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        raise RuntimeError("cannot subscribe to the null tracer; enable tracing first")


NULL_TRACER = NullTracer()


class Tracer:
    """Collects :class:`TraceEvent` records and fans them out to
    subscribers (e.g. a streaming exporter)."""

    enabled = True

    def __init__(self, run_id: str = ""):
        self.run_id = run_id
        self.events: list[TraceEvent] = []
        self._seq = 0
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    # ``kind`` is positional-only so a data field may also be named "kind"
    # (e.g. failure.inject carries kind="node"|"rack").
    def emit(self, kind: str, /, t: float, subject: str = "", **data: Any) -> TraceEvent:
        self._seq += 1
        ev = TraceEvent(
            seq=self._seq,
            t=t,
            kind=kind,
            subject=subject,
            data=tuple(sorted(data.items())),
        )
        self.events.append(ev)
        for fn in self._subscribers:
            fn(ev)
        return ev

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(fn)

    # -- queries -----------------------------------------------------------
    def select(
        self,
        kind: str | None = None,
        prefix: str | None = None,
        subject: str | None = None,
    ) -> list[TraceEvent]:
        """Events filtered by exact kind, kind prefix and/or subject."""
        out: Iterator[TraceEvent] = iter(self.events)
        if kind is not None:
            out = (e for e in out if e.kind == kind)
        if prefix is not None:
            out = (e for e in out if e.kind.startswith(prefix))
        if subject is not None:
            out = (e for e in out if e.subject == subject)
        return list(out)

    def counts(self) -> dict[str, int]:
        """Event count per kind (sorted by kind for stable reporting)."""
        acc: dict[str, int] = {}
        for e in self.events:
            acc[e.kind] = acc.get(e.kind, 0) + 1
        return dict(sorted(acc.items()))

    def clear(self) -> None:
        self.events.clear()
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer {len(self.events)} events>"


TracerLike = Any  # Tracer | NullTracer — both satisfy the emit/enabled surface


def ensure_tracer(tracer: TracerLike | None) -> TracerLike:
    """Coerce ``None`` to the shared no-op tracer."""
    return NULL_TRACER if tracer is None else tracer


def events_of(source: "Tracer | Iterable[TraceEvent]") -> list[TraceEvent]:
    """Accept a tracer or a plain event iterable; return the event list."""
    if isinstance(source, (Tracer, NullTracer)):
        return list(source.events)
    return list(source)
