"""Trace summaries: per-run checkpoint timelines and recovery breakdowns.

Consumes a :class:`~repro.observability.tracer.Tracer` (or a plain event
list) and folds it into the structures the paper's debugging workflow
needs: per-round checkpoint timelines (command → tokens → write →
commit, per HAU), token-hop counts, failure/recovery timelines with the
four recovery phases, alert-mode decisions, and replay volumes.  The
result is a plain dict (JSON-ready) plus a text renderer for humans.
"""

from __future__ import annotations

from collections.abc import Iterable
import json
from typing import Any

from repro.observability.tracer import TraceEvent, Tracer, events_of


def summarize(source: Tracer | Iterable[TraceEvent]) -> dict[str, Any]:
    """Fold a trace into a JSON-ready summary dict."""
    events = events_of(source)
    summary: dict[str, Any] = {
        "n_events": len(events),
        "span": [events[0].t, events[-1].t] if events else [0.0, 0.0],
        "counts": {},
        "rounds": [],
        "failures": [],
        "recoveries": [],
        "baseline_recoveries": [],
        "alerts": [],
        "replays": {"out": 0, "backlog": 0, "source": 0},
    }
    counts: dict[str, int] = {}
    rounds: dict[int, dict[str, Any]] = {}
    open_recovery: dict[str, Any] = {}

    def round_entry(round_id: int) -> dict[str, Any]:
        entry = rounds.get(round_id)
        if entry is None:
            entry = {
                "round_id": round_id,
                "scheme": "",
                "started_at": None,
                "completed_at": None,
                "token_sends": 0,
                "token_recvs": 0,
                "haus": {},
            }
            rounds[round_id] = entry
        return entry

    def hau_entry(round_id: int, hau_id: str) -> dict[str, Any]:
        haus = round_entry(round_id)["haus"]
        ent = haus.get(hau_id)
        if ent is None:
            ent = {
                "start_at": None,
                "mode": "",
                "write_start_at": None,
                "commit_at": None,
                "bytes": 0,
            }
            haus[hau_id] = ent
        return ent

    for e in events:
        counts[e.kind] = counts.get(e.kind, 0) + 1
        kind = e.kind
        if kind == "checkpoint.round.start":
            entry = round_entry(e.get("round"))
            entry["started_at"] = e.t
            entry["scheme"] = e.subject
        elif kind == "token.send":
            round_entry(e.get("round"))["token_sends"] += 1
        elif kind == "token.recv":
            round_entry(e.get("round"))["token_recvs"] += 1
        elif kind == "checkpoint.start":
            ent = hau_entry(e.get("round"), e.subject)
            ent["start_at"] = e.t
            ent["mode"] = e.get("mode", "")
        elif kind == "checkpoint.write.start":
            hau_entry(e.get("round"), e.subject)["write_start_at"] = e.t
        elif kind == "checkpoint.commit":
            ent = hau_entry(e.get("round"), e.subject)
            ent["commit_at"] = e.t
            ent["bytes"] = e.get("bytes", 0)
        elif kind == "checkpoint.round.complete":
            round_entry(e.get("round"))["completed_at"] = e.t
        elif kind in ("failure.inject", "failure.detected"):
            summary["failures"].append(
                {
                    "t": e.t,
                    "kind": kind,
                    "target": e.subject,
                    "detail": dict(e.data),
                }
            )
        elif kind == "recovery.start":
            open_recovery = {
                "started_at": e.t,
                "dead": e.get("dead", ""),
                "haus": {},
                "phases": {},
                "completed_at": None,
                "total": None,
            }
            summary["recoveries"].append(open_recovery)
        elif kind == "recovery.hau" and open_recovery:
            open_recovery["haus"][e.subject] = dict(e.data)
        elif kind == "recovery.reconnect" and open_recovery:
            open_recovery["phases"]["reconnect"] = e.get("seconds", 0.0)
        elif kind == "recovery.done" and open_recovery:
            open_recovery["completed_at"] = e.t
            open_recovery["total"] = e.get("total", 0.0)
            open_recovery["phases"].update(
                {
                    "reload": e.get("reload", 0.0),
                    "disk_io": e.get("disk_io", 0.0),
                    "deserialize": e.get("deserialize", 0.0),
                    "reconnect": e.get("reconnect", 0.0),
                }
            )
        elif kind.startswith("baseline.recover") or kind == "baseline.unrecoverable":
            summary["baseline_recoveries"].append(
                {"t": e.t, "kind": kind, "hau": e.subject}
            )
        elif kind in ("aa.alert.enter", "aa.decision", "aa.profile"):
            summary["alerts"].append(
                {"t": e.t, "kind": kind, "detail": dict(e.data)}
            )
        elif kind == "replay.out":
            summary["replays"]["out"] += e.get("count", 0)
        elif kind == "replay.backlog":
            summary["replays"]["backlog"] += e.get("count", 0)
        elif kind == "replay.source":
            summary["replays"]["source"] += e.get("count", 0)

    summary["counts"] = dict(sorted(counts.items()))
    for rid in sorted(rounds):
        entry = rounds[rid]
        entry["haus"] = {h: entry["haus"][h] for h in sorted(entry["haus"])}
        commits = [
            ent["commit_at"]
            for ent in entry["haus"].values()
            if ent["commit_at"] is not None
        ]
        if entry["started_at"] is not None and commits:
            entry["wall_clock"] = max(commits) - entry["started_at"]
        summary["rounds"].append(entry)
    return summary


def render_summary(summary: dict[str, Any]) -> str:
    """Human-readable report of a trace summary."""
    lines: list[str] = []
    t0, t1 = summary["span"]
    lines.append(
        f"trace: {summary['n_events']} events over sim [{t0:.3f}s, {t1:.3f}s]"
    )
    lines.append("event counts:")
    for kind, n in summary["counts"].items():
        lines.append(f"  {kind:<28} {n}")
    if summary["rounds"]:
        lines.append("checkpoint rounds:")
        for entry in summary["rounds"]:
            rid = entry["round_id"]
            status = "complete" if entry["completed_at"] is not None else "incomplete"
            wall = entry.get("wall_clock")
            wall_s = f" wall={wall:.3f}s" if wall is not None else ""
            lines.append(
                f"  round {rid} [{entry['scheme']}] {status}: "
                f"{len(entry['haus'])} HAUs, "
                f"{entry['token_sends']} token sends, "
                f"{entry['token_recvs']} token recvs{wall_s}"
            )
            for hau_id, ent in entry["haus"].items():
                if ent["commit_at"] is None:
                    lines.append(f"    {hau_id:<12} (no commit)")
                    continue
                start = ent["start_at"] if ent["start_at"] is not None else ent["commit_at"]
                lines.append(
                    f"    {hau_id:<12} {ent['mode'] or '-':<5} "
                    f"start={start:.3f}s commit={ent['commit_at']:.3f}s "
                    f"bytes={ent['bytes']}"
                )
    if summary["failures"]:
        lines.append("failures:")
        for f in summary["failures"]:
            lines.append(f"  t={f['t']:.3f}s {f['kind']} target={f['target']}")
    if summary["recoveries"]:
        lines.append("recoveries (global rollback):")
        for r in summary["recoveries"]:
            total = r["total"]
            total_s = f"{total:.3f}s" if total is not None else "in flight"
            lines.append(
                f"  started t={r['started_at']:.3f}s dead=[{r['dead']}] total={total_s}"
            )
            if r["phases"]:
                phases = ", ".join(
                    f"{k}={v:.3f}s" for k, v in sorted(r["phases"].items())
                )
                lines.append(f"    phases: {phases}")
    if summary["baseline_recoveries"]:
        lines.append("baseline (1-safe) recoveries:")
        for r in summary["baseline_recoveries"]:
            lines.append(f"  t={r['t']:.3f}s {r['kind']} hau={r['hau']}")
    if summary["alerts"]:
        lines.append("application-aware decisions:")
        for a in summary["alerts"]:
            lines.append(f"  t={a['t']:.3f}s {a['kind']} {a['detail']}")
    replays = summary["replays"]
    if any(replays.values()):
        lines.append(
            "replays: "
            f"out={replays['out']} backlog={replays['backlog']} "
            f"source={replays['source']}"
        )
    return "\n".join(lines)


def write_summary(summary: dict[str, Any], path: str) -> None:
    """Write a summary dict as deterministic JSON."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(summary, fh, sort_keys=True, indent=2, allow_nan=False)
        fh.write("\n")
