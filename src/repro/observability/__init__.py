"""Structured tracing for checkpoint/recovery timelines.

Zero-dependency observability spine: a :class:`Tracer` event bus carried
on the simulation :class:`~repro.simulation.core.Environment`
(``env.trace``; :data:`NULL_TRACER` by default so untraced runs pay one
attribute check per emission site), a deterministic JSONL exporter keyed
by sim time (same seed ⇒ byte-identical output), and a summary module
that renders checkpoint timelines and recovery breakdowns.

Enable with::

    env = Environment()
    tracer = env.enable_tracing()
    ...run...
    write_jsonl(tracer, "run.trace.jsonl")
    print(render_summary(summarize(tracer)))

or via the harness: ``run_experiment(cfg, trace=True)``.
"""

from repro.observability.export import (
    JsonlStreamWriter,
    dumps_jsonl,
    event_to_json,
    read_jsonl,
    write_jsonl,
)
from repro.observability.summary import render_summary, summarize, write_summary
from repro.observability.tracer import (
    KINDS,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    ensure_tracer,
    events_of,
)

__all__ = [
    "KINDS",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "JsonlStreamWriter",
    "dumps_jsonl",
    "ensure_tracer",
    "event_to_json",
    "events_of",
    "read_jsonl",
    "render_summary",
    "summarize",
    "write_jsonl",
    "write_summary",
]
