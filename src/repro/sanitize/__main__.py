"""``python -m repro.sanitize`` — the iteration-order canary."""

import sys

from repro.sanitize.canary import main

if __name__ == "__main__":
    sys.exit(main())
