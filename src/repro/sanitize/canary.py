"""Iteration-order canary: digests must not depend on PYTHONHASHSEED.

The in-process sanitizers catch reads of hash order only where the
static rules or runtime guards look; the canary closes the loop end to
end: it runs the determinism digest gate (``repro.harness.digest``) in
two subprocesses with different ``PYTHONHASHSEED`` values and requires
bit-identical digests.  Any surviving dependence on str/bytes hash
order — dict insertion driven by hashing, a set iteration that leaks
into an artifact, a salted ``hash()`` routing decision — flips at least
one digest between the two processes.

Subprocesses are unavoidable: ``PYTHONHASHSEED`` is fixed at
interpreter start and cannot be changed in-process.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any

DEFAULT_SEEDS = (0, 42)


def _child_env(hashseed: int) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    # Make `import repro` resolve in the child exactly as it does here,
    # installed or PYTHONPATH-driven alike.
    pkg_root = str(Path(__file__).resolve().parents[1].parent)
    prior = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = pkg_root + (os.pathsep + prior if prior else "")
    return env


def _digest_once(hashseed: int, cases: list[str] | None) -> dict[str, Any]:
    cmd = [sys.executable, "-m", "repro.harness.digest", "--json"]
    if cases:
        cmd += ["--cases", ",".join(cases)]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=_child_env(hashseed)
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"digest run under PYTHONHASHSEED={hashseed} failed "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def run_canary(
    cases: list[str] | None = None,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
) -> int:
    """Run the digest gate under each hash seed; 0 iff all agree."""
    results = {seed: _digest_once(seed, cases) for seed in seeds}
    reference_seed = seeds[0]
    reference = results[reference_seed]["digests"]
    failures = 0
    for seed in seeds[1:]:
        digests = results[seed]["digests"]
        for name in sorted(set(reference) | set(digests)):
            want, got = reference.get(name), digests.get(name)
            if want == got:
                continue
            failures += 1
            print(
                f"MISMATCH: {name} — PYTHONHASHSEED={reference_seed} -> {want} "
                f"but PYTHONHASHSEED={seed} -> {got}"
            )
    if failures:
        print(
            f"FAIL: {failures} digest(s) depend on hash iteration order — "
            "some decision path reads str/bytes hash order"
        )
        return 1
    print(
        f"OK: {len(reference)} digest(s) bit-identical across "
        f"PYTHONHASHSEED={{{', '.join(str(s) for s in seeds)}}}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--cases", default=None, metavar="NAMES",
        help="comma-separated subset of canonical digest cases",
    )
    parser.add_argument(
        "--seeds", default=",".join(str(s) for s in DEFAULT_SEEDS),
        metavar="N,M", help="PYTHONHASHSEED values to compare",
    )
    args = parser.parse_args(argv)
    cases = [c for c in args.cases.split(",") if c] if args.cases else None
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    if len(seeds) < 2:
        print("error: need at least two --seeds to compare", file=sys.stderr)
        return 2
    return run_canary(cases, seeds)
