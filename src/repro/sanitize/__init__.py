"""Opt-in runtime sanitizers for the simulation kernel and DSPS layer.

Set ``REPRO_SAN=1`` and the package hardens the assumptions the static
analysis cannot prove at runtime:

* **free-list poisoning** (:mod:`repro.sanitize.kernel`) — the kernel's
  refcount-2 recycle guard (``simulation/core.py``) assumes no model
  reference survives the pop; while an event sits in a free list its
  class is swapped for a poisoned twin whose every entry point raises
  :class:`SanitizerError`, so a stale reference fails loudly at the use
  site instead of silently reading a recycled object;
* **clock/heap-order assertions** (same module) — every pop checks the
  simulation clock never moves backwards and that the ``(time,
  priority, seq)`` total order the digest contract rests on holds;
* **cross-HAU state isolation** (:mod:`repro.sanitize.state_guard`) —
  writes to an operator's declared ``state_attrs`` must come from the
  HAU that hosts it, tracked through a generator trampoline around the
  runtime's process loops;
* **iteration-order canary** (``python -m repro.sanitize``) — runs the
  digest gate under two ``PYTHONHASHSEED`` values and requires
  bit-identical digests, catching hash-order dependence end to end.

Zero-overhead contract: installation happens once at import time (the
``repro.simulation`` / ``repro.dsps`` package inits call the
``maybe_install_*`` hooks below); when ``REPRO_SAN`` is unset nothing is
patched — no flag checks ride on the per-event hot path.  Under
``REPRO_SAN=1`` pooling behaviour stays bit-identical (same pool
hits/misses, same ``events_popped``), so digests and goldens hold.
"""

from __future__ import annotations

import os


class SanitizerError(AssertionError):
    """A runtime invariant the sanitizers guard was violated."""


def enabled() -> bool:
    """True when ``REPRO_SAN`` requests sanitized runs."""
    return os.environ.get("REPRO_SAN", "") not in ("", "0")


def install_kernel() -> None:
    """Patch the kernel sanitizers in (idempotent)."""
    from repro.sanitize import kernel

    kernel.install()


def install_state_guard() -> None:
    """Patch the DSPS state-isolation guard in (idempotent)."""
    from repro.sanitize import state_guard

    state_guard.install()


def maybe_install_kernel() -> None:
    """Import-time hook for ``repro.simulation``: install iff enabled."""
    if enabled():
        install_kernel()


def maybe_install_state_guard() -> None:
    """Import-time hook for ``repro.dsps``: install iff enabled."""
    if enabled():
        install_state_guard()


def uninstall() -> None:
    """Restore every patched entry point (test support)."""
    import sys

    kernel = sys.modules.get("repro.sanitize.kernel")
    if kernel is not None:
        kernel.uninstall()
    state_guard = sys.modules.get("repro.sanitize.state_guard")
    if state_guard is not None:
        state_guard.uninstall()


__all__ = [
    "SanitizerError",
    "enabled",
    "install_kernel",
    "install_state_guard",
    "maybe_install_kernel",
    "maybe_install_state_guard",
    "uninstall",
]
