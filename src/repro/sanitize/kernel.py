"""Kernel sanitizers: free-list poisoning + clock/heap-order assertions.

The kernel recycles hot-path events through per-environment free lists,
guarded by a refcount-2 check in ``Environment.step`` (only the step
frame and ``getrefcount`` itself hold the object, so reuse is supposed
to be invisible).  That guard is sound for CPython refcounting but
*assumes* no C-level cache, debugger hook, or future refactor keeps an
untracked reference.  Under ``REPRO_SAN=1`` this module replaces the
pool-touching entry points (``step`` / ``event`` / ``timeout`` /
``acquire``, plus ``run``, whose inlined fast loop would otherwise
bypass the audited step, and the Store/PriorityStore fast paths, which
pop recycled events straight off cached pool lists) with copies that
additionally:

* swap a recycled event's ``__class__`` for a generated *poisoned* twin
  (same slot layout, every entry point raises
  :class:`~repro.sanitize.SanitizerError`) while it sits in the pool,
  and swap it back the moment a factory re-issues it — so pooling
  behaviour, pool counters and event identity stay bit-identical while
  any use-after-recycle detonates at the offending line;
* assert the simulation clock never moves backwards and that heap pops
  respect the ``(time, priority, seq)`` total order the determinism
  digests rest on.

The originals are kept for :func:`uninstall` (test support).
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import heappop, heappush
from typing import Any

from sys import getrefcount

from repro.sanitize import SanitizerError

# Bound by install(): importing repro.simulation.core at module top
# would re-enter the partially-initialised package when REPRO_SAN=1
# triggers installation from repro.simulation's own __init__.
_core: Any = None

# -- poisoned twins ------------------------------------------------------------

#: original class -> generated poisoned subclass
_POISONED: dict[type, type] = {}
#: the reverse set, for the heap defence check in the sanitized step
_POISON_CLASSES: set[type] = set()

_BLOCKED_METHODS = ("succeed", "fail", "add_callback", "_recycle")
_BLOCKED_PROPS = ("triggered", "ok", "value")


def poisoned_class(cls: type) -> type:
    """The poisoned twin of a pooled event class (generated once).

    ``__slots__ = ()`` keeps the memory layout identical, so
    ``__class__`` assignment in both directions is legal and free.
    """
    twin = _POISONED.get(cls)
    if twin is not None:
        return twin

    def _raiser(name: str):
        def raise_use_after_recycle(self, *args: Any, **kwargs: Any):
            raise SanitizerError(
                f"use-after-recycle: `{name}` touched on a pooled "
                f"{cls.__name__} — a reference to this event survived its "
                "recycle into the environment free list (the refcount-2 "
                "guard in Environment.step was defeated)"
            )

        raise_use_after_recycle.__name__ = name
        return raise_use_after_recycle

    ns: dict[str, Any] = {"__slots__": ()}
    for name in _BLOCKED_METHODS:
        if hasattr(cls, name):
            ns[name] = _raiser(name)
    for name in _BLOCKED_PROPS:
        if hasattr(cls, name):
            ns[name] = property(_raiser(name))
    ns["__repr__"] = lambda self: f"<poisoned pooled {cls.__name__}>"
    twin = type(f"_Poisoned{cls.__name__}", (cls,), ns)
    _POISONED[cls] = twin
    _POISON_CLASSES.add(twin)
    return twin


# -- heap total-order tracking -------------------------------------------------

# Environment has __slots__ (and no __weakref__), so per-environment
# sanitizer state lives here, keyed by id().  Entries hold the
# environment strongly to rule out id reuse; the cap bounds the leak to
# the most recently stepped environments (an evicted env just loses one
# comparison on its next pop).
_ORDER_CAP = 64
_order_state: "OrderedDict[int, tuple[Any, tuple[float, int, int]]]" = OrderedDict()


def _check_order(env: Any, key: tuple[float, int, int]) -> None:
    k = id(env)
    entry = _order_state.get(k)
    if entry is not None and entry[0] is env and key < entry[1]:
        raise SanitizerError(
            f"heap total order violated: popped {key} after {entry[1]} — "
            "the (time, priority, seq) ordering the determinism digests "
            "rest on no longer holds"
        )
    _order_state[k] = (env, key)
    _order_state.move_to_end(k)
    while len(_order_state) > _ORDER_CAP:
        _order_state.popitem(last=False)


# -- sanitized entry points ----------------------------------------------------
# Each is a line-for-line copy of the original (simulation/core.py) plus
# the poison/assert additions; pool counters, heap entries and sequence
# numbers are touched identically so sanitized runs stay digest-clean.


def _san_step(self) -> None:
    cal = self._cal
    if cal is None:
        heap = self._heap
        if not heap:
            raise _core.SimulationError("step() on empty schedule")
        when, prio, seq, event = heappop(heap)
    else:
        entry = cal.pop()
        if entry is None:
            raise _core.SimulationError("step() on empty schedule")
        when, prio, seq, event = entry
    now = self._now
    if when < now - 1e-12:
        raise SanitizerError(
            f"simulation clock moved backwards: popped t={when!r} at now={now!r}"
        )
    _check_order(self, (when, prio, seq))
    if when > now:
        self._now = when
    self.events_popped += 1
    cls = event.__class__
    if cls is _core._Kick:
        event.fire()
        return
    if cls in _POISON_CLASSES:
        raise SanitizerError(
            f"poisoned event popped from the heap: {event!r} was scheduled "
            "after being recycled into a free list"
        )
    event._flushed = True
    callbacks = event.callbacks
    if callbacks is not None:
        event.callbacks = None
        for cb in callbacks:
            cb(event)
    if getrefcount(event) == 2:
        pool = self._pools.get(cls)
        if pool is not None and len(pool) < _core._POOL_LIMIT:
            event._recycle()
            event.__class__ = poisoned_class(cls)
            pool.append(event)


def _san_event(self, name: str = ""):
    pool = self._pools[_core.Event]
    if pool:
        self.pool_hits += 1
        ev = pool.pop()
        ev.__class__ = _core.Event
        ev.name = name
        return ev
    self.pool_misses += 1
    return _core.Event(self, name=name)


def _san_timeout(self, delay: float, value: Any = None):
    pool = self._pools[_core.Timeout]
    if pool:
        if delay < 0:
            raise _core.SimulationError(f"negative timeout delay {delay!r}")
        self.pool_hits += 1
        t = pool.pop()
        t.__class__ = _core.Timeout
        t.delay = delay
        t._value = value
        t._flushed = False
        self._seq = seq = self._seq + 1
        if self._cal is None:
            heappush(self._heap, (self._now + delay, _core.NORMAL, seq, t))
        else:
            self._cal.push((self._now + delay, _core.NORMAL, seq, t))
        return t
    self.pool_misses += 1
    return _core.Timeout(self, delay, value)


def _san_acquire(self, cls: type):
    pool = self._pools.get(cls)
    if pool:
        self.pool_hits += 1
        ev = pool.pop()
        ev.__class__ = cls
        return ev
    self.pool_misses += 1
    return None


def _san_run(self, until: Any = None) -> Any:
    # The pristine run() inlines the pop/fire loop for speed, which would
    # bypass the audited step; the generic stepwise loop drives the
    # patched step() for every pop, so each one passes the poison and
    # total-order checks.  Semantics (and digests) are identical.
    return _core.Environment._run_stepwise(self, until)


# Store.put / Store.get / PriorityStore.get pop their recycled events
# straight off the cached per-class pool lists (bypassing the patched
# ``acquire``), so the sanitized copies must heal the poisoned
# ``__class__`` at the same spot.  Everything else is line-for-line the
# pristine fast path: counters, succeed order and drain behaviour match.


def _san_store_put(self, item: Any):
    env = self.env
    pool = self._put_pool
    if pool:
        env.pool_hits += 1
        ev = pool.pop()
        ev.__class__ = _res._Put
        ev.store = self
        ev.item = item
    else:
        env.pool_misses += 1
        ev = _res._Put(env, self, item)
    if not self._putters and len(self.items) < self.capacity:
        self.items.append(ev.item)
        ev.succeed()
        if self._getters:
            self._drain()
        return ev
    self._putters.append(ev)
    self._drain()
    return ev


def _san_store_get(self):
    env = self.env
    pool = self._get_pool
    if pool:
        env.pool_hits += 1
        ev = pool.pop()
        ev.__class__ = _res._Get
        ev.store = self
    else:
        env.pool_misses += 1
        ev = _res._Get(env, self)
    if self.items and not self._getters:
        ev.succeed(self.items.popleft())
        if self._putters and len(self.items) < self.capacity:
            put = self._putters.popleft()
            self.items.append(put.item)
            put.succeed()
        return ev
    self._getters.append(ev)
    self._drain()
    return ev


def _san_priority_store_get(self):
    env = self.env
    pool = self._get_pool
    if pool:
        env.pool_hits += 1
        ev = pool.pop()
        ev.__class__ = _res._Get
        ev.store = self
    else:
        env.pool_misses += 1
        ev = _res._Get(env, self)
    if self.items and not self._getters:
        best_idx = min(range(len(self.items)), key=lambda i: self.items[i])
        item, _seq = self.items[best_idx]
        del self.items[best_idx]
        ev.succeed(item)
        if self._putters and len(self.items) < self.capacity:
            put = self._putters.popleft()
            self.items.append(put.item)
            put.succeed()
        return ev
    self._getters.append(ev)
    self._drain()
    return ev


_PATCHES = {
    "step": _san_step,
    "event": _san_event,
    "timeout": _san_timeout,
    "acquire": _san_acquire,
    "run": _san_run,
}
# (class-name, method-name) -> sanitized copy, applied to
# repro.simulation.resources at install time.
_RES_PATCHES = {
    ("Store", "put"): _san_store_put,
    ("Store", "get"): _san_store_get,
    ("PriorityStore", "get"): _san_priority_store_get,
}
_res: Any = None
_originals: dict[str, Any] = {}
_res_originals: dict[tuple[str, str], Any] = {}


def installed() -> bool:
    return bool(_originals)


def install() -> None:
    """Swap the kernel entry points for the sanitized copies (idempotent)."""
    global _core, _res
    if _originals:
        return
    from repro.simulation import core, resources

    _core = core
    _res = resources
    for name, fn in _PATCHES.items():
        _originals[name] = getattr(_core.Environment, name)
        setattr(_core.Environment, name, fn)
    for (cls_name, meth), fn in _RES_PATCHES.items():
        cls = getattr(_res, cls_name)
        _res_originals[(cls_name, meth)] = cls.__dict__[meth]
        setattr(cls, meth, fn)


def uninstall() -> None:
    """Restore the original kernel entry points (test support).

    Events still poisoned inside live pools are healed by clearing the
    pools would be wrong (counters); instead they heal lazily — the
    original factories never see them because pools drain through the
    same ``pool.pop()`` path, so tests should discard sanitized
    environments after uninstalling.
    """
    for name, fn in _originals.items():
        setattr(_core.Environment, name, fn)
    for (cls_name, meth), fn in _res_originals.items():
        setattr(getattr(_res, cls_name), meth, fn)
    _originals.clear()
    _res_originals.clear()
    _order_state.clear()
