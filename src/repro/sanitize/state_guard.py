"""Cross-HAU state-isolation guard.

The determinism contract (operator snapshots replayable from simulation
state) silently assumes each operator's state is mutated only by the HAU
that hosts it.  Nothing enforces that: a scheme, a test harness, or a
mis-wired graph can share an operator instance between HAUs and the runs
still "work" — until recovery restores one HAU's snapshot over another's
live state.

Under ``REPRO_SAN=1`` this module:

* wraps the HAU runtime's process-loop generator methods
  (``_main_loop`` / ``_source_loop`` / ``_receiver``) in a trampoline
  that pushes the host's ``hau_id`` around **each resumption** of the
  generator (a plain push/pop around creation would be wrong — the
  kernel interleaves generators, they do not finish LIFO);
* installs an ``Operator.__setattr__`` guard: a write to a declared
  ``state_attrs`` attribute while some *other* HAU's loop is running
  raises :class:`~repro.sanitize.SanitizerError` at the write site.

Writes outside any tracked loop (setup, recovery drivers, tests
constructing operators) are unconstrained — the guard only fires on a
provable cross-host mutation.
"""

from __future__ import annotations

import functools
from typing import Any

from repro.sanitize import SanitizerError

# The innermost tracked HAU at the current instant.  A list, not a
# single slot: a wrapped generator can (transitively) construct and
# drive another wrapped generator within one resumption.
_hau_stack: list[str] = []

_WRAPPED_LOOPS = ("_main_loop", "_source_loop", "_receiver")


def current_hau() -> str | None:
    """The hau_id whose loop is executing right now, or None."""
    return _hau_stack[-1] if _hau_stack else None


class _HauTrampoline:
    """Generator proxy tracking which HAU's code is on the stack.

    The kernel only needs the generator protocol's ``send`` / ``throw``
    / ``close``; each resumption brackets the delegate with a push/pop
    of the owning ``hau_id``, so nested ``yield from`` chains (process
    loop -> scheme hook -> emit) are attributed to their host while
    *other* HAUs' interleaved resumptions are not.
    """

    __slots__ = ("_gen", "_hau_id")

    def __init__(self, gen: Any, hau_id: str):
        self._gen = gen
        self._hau_id = hau_id

    def send(self, value: Any) -> Any:
        _hau_stack.append(self._hau_id)
        try:
            return self._gen.send(value)
        finally:
            _hau_stack.pop()

    def throw(self, exc: BaseException) -> Any:
        _hau_stack.append(self._hau_id)
        try:
            return self._gen.throw(exc)
        finally:
            _hau_stack.pop()

    def close(self) -> None:
        self._gen.close()

    def __iter__(self) -> "_HauTrampoline":
        return self

    def __next__(self) -> Any:
        return self.send(None)


def _wrap_loop(method: Any) -> Any:
    @functools.wraps(method)
    def wrapper(self, *args: Any, **kwargs: Any) -> _HauTrampoline:
        return _HauTrampoline(method(self, *args, **kwargs), self.hau_id)

    wrapper._repro_san_original = method
    return wrapper


def _guarded_setattr(self, name: str, value: Any) -> None:
    if name in type(self).state_attrs and _hau_stack:
        ctx = getattr(self, "ctx", None)
        owner = ctx.hau_id if ctx is not None else None
        running = _hau_stack[-1]
        if owner is not None and running != owner:
            raise SanitizerError(
                f"cross-HAU state write: {type(self).__name__}.{name} belongs "
                f"to HAU {owner!r} but was written while HAU {running!r} was "
                "running — operator state must only be mutated by its host "
                "(shared operator instance, or a scheme reaching across HAUs)"
            )
    object.__setattr__(self, name, value)


_originals: dict[str, Any] = {}
_SETATTR_KEY = "Operator.__setattr__"


def installed() -> bool:
    return bool(_originals)


def install() -> None:
    """Wrap the runtime loops and guard operator state (idempotent)."""
    if _originals:
        return
    from repro.dsps.hau import HAURuntime
    from repro.dsps.operator import Operator

    for name in _WRAPPED_LOOPS:
        _originals[name] = getattr(HAURuntime, name)
        setattr(HAURuntime, name, _wrap_loop(_originals[name]))
    # Operator defines no __setattr__ of its own; remember whether one
    # existed in the class dict so uninstall can delete rather than
    # restore.
    _originals[_SETATTR_KEY] = Operator.__dict__.get("__setattr__")
    Operator.__setattr__ = _guarded_setattr


def uninstall() -> None:
    """Remove the wrappers and the setattr guard (test support)."""
    if not _originals:
        return
    from repro.dsps.hau import HAURuntime
    from repro.dsps.operator import Operator

    for name in _WRAPPED_LOOPS:
        setattr(HAURuntime, name, _originals[name])
    prior = _originals[_SETATTR_KEY]
    if prior is None:
        del Operator.__setattr__
    else:
        Operator.__setattr__ = prior
    _originals.clear()
    _hau_stack.clear()
