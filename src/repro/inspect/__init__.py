"""Run-bundle ledger + differential regression explainer.

``repro.inspect`` is the layer that makes two runs *comparable*.  The
recording stack (tracer, telemetry, profiler) answers "what happened in
this run"; this package answers "what changed between these runs, and
which phase/HAU is responsible":

* :mod:`repro.inspect.bundle` — the **RunBundle**: a content-addressed,
  byte-deterministic artifact directory per experiment / sweep cell
  (config fingerprint, determinism digest, metrics, phase-span totals,
  per-round critical-path hops, timeline summary).
* :mod:`repro.inspect.diff` — the **diff engine**: compares two bundles
  (or two ``BENCH_headline`` / campaign reports) and attributes
  checkpoint-time / latency / critical-path deltas to phase spans and
  individual HAUs, ranked as signed "top movers".
* :mod:`repro.inspect.explain` — renders a diff as the attributed
  explanation ``benchmarks/check_regression.py`` prints on a gate trip.
* ``python -m repro.inspect`` — ``show`` / ``diff`` / ``explain``
  subcommands over bundle directories and report files.
"""

from repro.inspect.bundle import (
    BUNDLE_VERSION,
    PHASE_SPANS,
    build_bundle,
    bundle_id,
    read_bundle,
    write_bundle,
)
from repro.inspect.diff import diff_bundles, diff_reports, top_movers
from repro.inspect.explain import explain_diff, render_diff_table

__all__ = [
    "BUNDLE_VERSION",
    "PHASE_SPANS",
    "build_bundle",
    "bundle_id",
    "diff_bundles",
    "diff_reports",
    "explain_diff",
    "read_bundle",
    "render_diff_table",
    "top_movers",
    "write_bundle",
]
