"""``python -m repro.inspect`` — show / diff / explain run bundles.

Subcommands::

    show <bundle>                 one bundle's metrics + phase totals
    diff <a> <b> [--json]         full attributed diff (tables or JSON)
    explain <a> <b> [--limit N]   the short gate-trip explanation

``<a>`` / ``<b>`` are either bundle *directories* (see
``repro.inspect.bundle``) or report *files* (``BENCH_headline.json`` or
a campaign report) — both sides must be the same flavour.  All output
is byte-deterministic: canonical JSON under ``--json``, fixed-width
tables otherwise, so CI can diff the diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.harness.digest import canonical_json
from repro.harness.report import format_table
from repro.inspect.bundle import BundleError, read_bundle
from repro.inspect.diff import DEFAULT_TOP, diff_bundles, diff_reports
from repro.inspect.explain import explain_diff, render_diff_table


def _load_side(path: str) -> tuple[str, dict[str, Any]]:
    """``("bundle"|"report", loaded)`` for one operand."""
    p = Path(path)
    if p.is_dir():
        return "bundle", read_bundle(p)
    with open(p, encoding="utf-8") as fh:
        return "report", json.load(fh)


def _diff_operands(a_path: str, b_path: str) -> dict[str, Any]:
    a_kind, a = _load_side(a_path)
    b_kind, b = _load_side(b_path)
    if a_kind != b_kind:
        raise ValueError(
            f"cannot diff a {a_kind} ({a_path}) against a {b_kind} ({b_path})"
        )
    if a_kind == "bundle":
        return diff_bundles(a, b)
    return diff_reports(a, b)


def _cmd_show(args: argparse.Namespace) -> int:
    bundle = read_bundle(args.bundle)
    if args.json:
        print(canonical_json(bundle))
        return 0
    manifest = bundle["manifest"]
    meta = manifest.get("meta") or {}
    files = bundle["files"]
    metrics = files["metrics.json"]
    lines = [
        f"bundle {manifest['bundle_id'][:16]} "
        f"({meta.get('app')}/{meta.get('scheme')}@{meta.get('n_checkpoints')} "
        f"seed={meta.get('seed')})",
        f"digest: {manifest.get('digest')}",
    ]
    metric_rows = [
        [name, f"{metrics[name]:.6g}" if isinstance(metrics.get(name), (int, float)) else "-"]
        for name in ("throughput", "latency", "rounds_completed")
    ]
    for pct, value in (metrics.get("latency_percentiles") or {}).items():
        metric_rows.append([f"latency_{pct}", f"{value:.6g}"])
    blocks = ["\n".join(lines), format_table(["metric", "value"], metric_rows)]
    totals = (files["phases.json"] or {}).get("totals") or {}
    if totals:
        blocks.append(
            format_table(
                ["phase", "seconds"],
                [[name, f"{secs:.6g}"] for name, secs in totals.items()],
                title="phase-span totals",
            )
        )
    cp = files["critical_paths.json"] or {}
    rounds = cp.get("rounds") or {}
    if rounds:
        gating = cp.get("gating") or {}
        blocks.append(
            format_table(
                ["round", "critical path (s)", "gating HAU"],
                [
                    [rid, f"{secs:.6g}", str(gating.get(rid, "-"))]
                    for rid, secs in sorted(rounds.items(), key=lambda kv: int(kv[0]))
                ],
                title="checkpoint rounds",
            )
        )
    stragglers = (files["timeline.json"] or {}).get("stragglers") or []
    if stragglers:
        blocks.append(
            "stragglers: "
            + ", ".join(f"{s['round']}:{s['hau']}" for s in stragglers)
        )
    print("\n\n".join(blocks))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = _diff_operands(args.a, args.b)
    if args.json:
        print(canonical_json(diff))
    else:
        print(render_diff_table(diff, limit=args.limit))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    diff = _diff_operands(args.a, args.b)
    for line in explain_diff(diff, limit=args.limit):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.inspect",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="print one bundle's contents")
    show.add_argument("bundle", help="bundle directory")
    show.add_argument("--json", action="store_true", help="canonical JSON output")
    show.set_defaults(func=_cmd_show)

    diff = sub.add_parser("diff", help="attributed diff of two bundles/reports")
    diff.add_argument("a", help="baseline bundle directory or report file")
    diff.add_argument("b", help="candidate bundle directory or report file")
    diff.add_argument("--json", action="store_true", help="canonical JSON output")
    diff.add_argument("--limit", type=int, default=DEFAULT_TOP,
                      help=f"max top movers shown (default {DEFAULT_TOP})")
    diff.set_defaults(func=_cmd_diff)

    explain = sub.add_parser("explain", help="short attributed explanation")
    explain.add_argument("a", help="baseline bundle directory or report file")
    explain.add_argument("b", help="candidate bundle directory or report file")
    explain.add_argument("--limit", type=int, default=5,
                         help="max attribution lines (default 5)")
    explain.set_defaults(func=_cmd_explain)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError, BundleError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
