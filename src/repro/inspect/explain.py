"""Turn a diff into an attributed explanation.

Two renderers over the structures produced by :mod:`repro.inspect.diff`:

* :func:`explain_diff` — the short, gate-trip-sized story: which
  metrics moved, and which phase spans / HAUs / hop kinds the movement
  is attributed to.  ``benchmarks/check_regression.py`` prints these
  lines when a gate trips, so CI logs say *"latency is up because
  hau-3's disk-io grew 0.4s"* instead of bare numbers.
* :func:`render_diff_table` — the full fixed-width table view used by
  ``python -m repro.inspect diff``.

Both are pure functions of the diff dict — byte-deterministic output
for byte-identical inputs, same as everything else in this package.
"""

from __future__ import annotations

from typing import Any

from repro.harness.report import format_table

# Metrics where a positive delta means the candidate got *worse*.
# (throughput is the lone higher-is-better headline quantity.)
HIGHER_IS_WORSE = frozenset(
    {
        "latency",
        "latency_p50",
        "latency_p95",
        "latency_p99",
        "critical_path_max",
        "critical_path_mean",
        "critical_path_seconds",
    }
)


def _g(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def _signed(value: float) -> str:
    return f"{value:+.6g}"


def _pct(delta: float, base: float | None) -> str:
    if not base:
        return ""
    return f", {delta / abs(base):+.1%}"


def _direction(metric: str, delta: float) -> str:
    if metric == "throughput":
        return "worse" if delta < 0 else "better"
    if metric in HIGHER_IS_WORSE:
        return "worse" if delta > 0 else "better"
    return "changed"


def _metric_lines(tables: dict[str, dict[str, Any]]) -> list[str]:
    lines = []
    for metric, entry in tables.items():
        delta = entry.get("delta")
        if not delta:
            continue
        lines.append(
            f"{metric}: {_g(entry['a'])} -> {_g(entry['b'])} "
            f"({_signed(delta)}{_pct(delta, entry['a'])}, {_direction(metric, delta)})"
        )
    return lines


def explain_diff(diff: dict[str, Any], limit: int = 5) -> list[str]:
    """The attributed short story of a diff, as printable lines.

    Accepts any diff produced by this package (``bundle-diff``,
    ``headline-report-diff``, ``campaign-report-diff``).  Empty movement
    yields a single "no difference" line rather than silence, so a gate
    trip always prints *something* attributable.
    """
    kind = diff.get("kind", "")
    lines: list[str] = []
    if kind == "bundle-diff":
        if diff.get("identical"):
            return ["bundles are identical (determinism digests and alert sections match)"]
        if not diff.get("same_workload", True):
            lines.append(
                "note: bundles come from different workloads "
                f"({_workload(diff['a'])} vs {_workload(diff['b'])}) — "
                "deltas compare apples to oranges"
            )
        lines.extend(_metric_lines(diff.get("metrics", {})))
        lines.extend(_metric_lines(diff.get("checkpoint", {})))
        movers = diff.get("top_movers", [])[:limit]
        if movers:
            lines.append("attribution (delta = candidate - baseline):")
            for m in movers:
                lines.append(
                    f"  {m['dimension']} {m['name']}: "
                    f"{_g(m['a'])}s -> {_g(m['b'])}s ({_signed(m['delta'])}s)"
                )
        stragglers = diff.get("stragglers", {})
        for label, key in (("appeared", "appeared"), ("disappeared", "disappeared")):
            flagged = stragglers.get(key, [])
            if flagged:
                lines.append(f"stragglers {label}: {', '.join(flagged)}")
        alert_lines = [
            f"  {name}: {_g(entry['a'])} -> {_g(entry['b'])} ({_signed(entry['delta'])})"
            for name, entry in diff.get("alerts", {}).items()
            if entry.get("delta")
        ]
        if alert_lines:
            lines.append("alert counts (slo:action):")
            lines.extend(alert_lines)
    elif kind.endswith("-report-diff"):
        movers = diff.get("top_movers", [])[:limit]
        for m in movers:
            lines.append(
                f"{m['row']} {m['metric']}: {_g(m['a'])} -> {_g(m['b'])} "
                f"({_signed(m['delta'])}{_pct(m['delta'], m['a'])}, "
                f"{_direction(m['metric'], m['delta'])})"
            )
    else:
        raise ValueError(f"not a diff produced by repro.inspect: kind={kind!r}")
    if not lines:
        lines.append("no measurable difference between the two sides")
    return lines


def _workload(meta: dict[str, Any]) -> str:
    return f"{meta.get('app')}/{meta.get('scheme')}@{meta.get('n_checkpoints')}"


def _entry_row(name: str, entry: dict[str, Any]) -> list[str]:
    delta = entry.get("delta")
    return [
        name,
        _g(entry.get("a")),
        _g(entry.get("b")),
        _signed(delta) if delta is not None else "-",
    ]


def render_diff_table(diff: dict[str, Any], limit: int = 10) -> str:
    """Full fixed-width rendering of a diff (the ``diff`` subcommand)."""
    kind = diff.get("kind", "")
    if kind == "bundle-diff":
        return _render_bundle_diff(diff, limit)
    if kind.endswith("-report-diff"):
        return _render_report_diff(diff, limit)
    raise ValueError(f"not a diff produced by repro.inspect: kind={kind!r}")


def _render_bundle_diff(diff: dict[str, Any], limit: int) -> str:
    a, b = diff["a"], diff["b"]
    blocks = [
        "\n".join(
            [
                f"bundle diff: a={str(a.get('bundle_id'))[:16]} "
                f"({_workload(a)} seed={a.get('seed')})",
                f"             b={str(b.get('bundle_id'))[:16]} "
                f"({_workload(b)} seed={b.get('seed')})",
                f"identical: {'yes' if diff.get('identical') else 'no'}"
                + ("" if diff.get("same_workload") else "  [different workloads]"),
            ]
        )
    ]
    metric_rows = [
        _entry_row(name, entry)
        for name, entry in {**diff.get("metrics", {}), **diff.get("checkpoint", {})}.items()
    ]
    blocks.append(
        format_table(["metric", "a", "b", "delta"], metric_rows, title="metrics")
    )
    phase_rows = [
        _entry_row(name, entry) for name, entry in diff.get("phases", {}).items()
    ]
    if phase_rows:
        blocks.append(
            format_table(
                ["phase", "a (s)", "b (s)", "delta (s)"],
                phase_rows,
                title="phase-span totals",
            )
        )
    movers = diff.get("top_movers", [])[:limit]
    if movers:
        blocks.append(
            format_table(
                ["dimension", "name", "a (s)", "b (s)", "delta (s)"],
                [
                    [m["dimension"], m["name"], _g(m["a"]), _g(m["b"]), _signed(m["delta"])]
                    for m in movers
                ],
                title="top movers",
            )
        )
    alert_rows = [
        _entry_row(name, entry)
        for name, entry in diff.get("alerts", {}).items()
        if entry.get("delta")
    ]
    if alert_rows:
        blocks.append(
            format_table(
                ["slo:action", "a", "b", "delta"],
                alert_rows,
                title="alert counts",
            )
        )
    stragglers = diff.get("stragglers", {})
    straggler_lines = [
        f"stragglers {label}: {', '.join(stragglers[label])}"
        for label in ("appeared", "disappeared")
        if stragglers.get(label)
    ]
    if straggler_lines:
        blocks.append("\n".join(straggler_lines))
    return "\n\n".join(blocks)


def _render_report_diff(diff: dict[str, Any], limit: int) -> str:
    blocks = [f"{diff['kind']}: {len(diff.get('rows', {}))} row(s) compared"]
    changed_rows = []
    for key, row in diff.get("rows", {}).items():
        if not row["in_a"] or not row["in_b"]:
            side = "a" if row["in_a"] else "b"
            changed_rows.append([key, f"only in {side}", "-", "-", "-"])
            continue
        for metric, entry in row["metrics"].items():
            if entry.get("delta"):
                changed_rows.append([key, *_entry_row(metric, entry)])
    if changed_rows:
        blocks.append(
            format_table(
                ["row", "metric", "a", "b", "delta"],
                changed_rows,
                title="changed cells",
            )
        )
    else:
        blocks.append("no per-row differences")
    movers = diff.get("top_movers", [])[:limit]
    if movers:
        blocks.append(
            format_table(
                ["row", "metric", "a", "b", "delta", "|rel|"],
                [
                    [
                        m["row"],
                        m["metric"],
                        _g(m["a"]),
                        _g(m["b"]),
                        _signed(m["delta"]),
                        f"{m['magnitude']:.3f}",
                    ]
                    for m in movers
                ],
                title="top movers",
            )
        )
    return "\n\n".join(blocks)
