"""The RunBundle: one run's comparable telemetry as an artifact directory.

A bundle is the deterministic, content-addressed distillation of one
experiment (or sweep cell): everything the diff engine needs to explain
*why* run B differs from run A, and nothing machine-dependent.  Two runs
of the same seed on the same build produce **byte-identical** bundles
(asserted in ``tests/test_inspect.py``), so a bundle can be committed as
a baseline, uploaded as a CI artifact, or diffed across branches.

Layout (one directory per bundle)::

    <dir>/
      MANIFEST.json        bundle_version, bundle_id, meta, digest,
                           {file: sha256} table
      config.json          ExperimentConfig fingerprint
      metrics.json         throughput / latency / percentiles / rounds
      phases.json          phase-span totals + per-HAU breakdown
      critical_paths.json  per-round seconds, gating HAU, hop chain
      timeline.json        checkpoint summary, recovery, stragglers
      alerts.json          SLO alert log + health timeline (repro.monitor)
      telemetry.json       metric snapshot (experiment bundles only)

Every file is canonical JSON (sorted keys, no whitespace drift) with a
trailing newline.  ``bundle_id`` is the SHA-256 over the sorted
``{file: sha256}`` table — identical content, wherever it was produced,
yields an identical id, which is what makes the diff engine's
"identical bundles" short-circuit trustworthy.

The phase vocabulary (:data:`PHASE_SPANS`) mirrors
``repro.profiling.spans.PHASES`` — the INS001 lint rule keeps the two
(and the DESIGN.md bundle-schema table) in sync.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.harness.digest import canonical_json

# v2: bundles carry alerts.json (SLO alert log + health timeline —
# empty for unmonitored runs).  read_bundle still accepts v1 bundles,
# defaulting the section.
BUNDLE_VERSION = 2
_READABLE_VERSIONS = frozenset({1, 2})

# Per-HAU checkpoint phase spans a bundle attributes time to.  MUST
# match repro.profiling.spans.PHASES and the DESIGN.md "Run bundles &
# diffing" table — INS001 fails --strict on drift in any direction.
PHASE_SPANS = ("token-wait", "safepoint-wait", "snapshot", "disk-io")

MANIFEST_NAME = "MANIFEST.json"

# The payload sections each bundle file is cut from, in a fixed order so
# MANIFEST's file table (and therefore the bundle id) never reorders.
_SECTION_FILES = (
    "config.json",
    "metrics.json",
    "phases.json",
    "critical_paths.json",
    "timeline.json",
    "alerts.json",
    "telemetry.json",
)

# What alerts.json holds when the run was unmonitored (and what a v1
# bundle reads back as).
EMPTY_ALERTS = {"alerts": {}, "health_timeline": []}


class BundleError(ValueError):
    """A directory is not a readable, self-consistent bundle."""


def _file_bytes(obj: Any) -> bytes:
    return (canonical_json(obj) + "\n").encode("utf-8")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def build_bundle(
    payload: dict[str, Any],
    telemetry: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Cut a sweep-cell payload (see ``harness.sweep.reduce_result``)
    into the in-memory bundle: ``{"manifest": ..., "files": ...}``.

    ``telemetry`` optionally attaches a metric snapshot (experiment-level
    bundles; sweep cells run traced but not telemetered).
    """
    cfg = payload.get("config") or {}
    files: dict[str, Any] = {
        "config.json": cfg,
        "metrics.json": {
            "throughput": payload.get("throughput"),
            "latency": payload.get("latency"),
            "latency_percentiles": payload.get("latency_percentiles") or {},
            "rounds_completed": payload.get("rounds_completed"),
        },
        "phases.json": payload.get("phase_spans")
        or {"totals": {}, "per_hau": {}},
        "critical_paths.json": payload.get("critical_path")
        or {"rounds": {}, "gating": {}, "hops": {}},
        "timeline.json": {
            "checkpoint": payload.get("checkpoint"),
            "recovery": payload.get("recovery"),
            "stragglers": payload.get("stragglers") or [],
        },
        "alerts.json": {
            "alerts": payload.get("alerts") or {},
            "health_timeline": payload.get("health_timeline") or [],
        },
        "telemetry.json": telemetry,
    }
    hashes = {name: _sha256(_file_bytes(files[name])) for name in _SECTION_FILES}
    manifest = {
        "bundle_version": BUNDLE_VERSION,
        "bundle_id": bundle_id(hashes),
        "meta": {
            "app": cfg.get("app"),
            "scheme": cfg.get("scheme"),
            "seed": cfg.get("seed"),
            "n_checkpoints": cfg.get("n_checkpoints"),
            "window": cfg.get("window"),
            "warmup": cfg.get("warmup"),
        },
        "digest": payload.get("digest"),
        "files": hashes,
    }
    return {"manifest": manifest, "files": files}


def bundle_id(hashes: dict[str, str]) -> str:
    """Content address: SHA-256 over the sorted ``{file: sha256}`` table."""
    return _sha256(canonical_json(dict(sorted(hashes.items()))).encode("utf-8"))


def write_bundle(
    bundle: dict[str, Any], root: Path | str, name: str | None = None
) -> Path:
    """Write a bundle directory under ``root``; returns the directory.

    Without ``name`` the directory is the first 16 hex chars of the
    bundle id (content-addressed: re-writing identical content is a
    no-op landing on the same path).  ``name`` pins a stable path for
    committed baselines (e.g. ``benchmarks/BUNDLE_baseline``).  Files
    are written atomically so concurrent sweeps never read a torn
    bundle.
    """
    manifest = bundle["manifest"]
    root = Path(root)
    directory = root / (name if name is not None else manifest["bundle_id"][:16])
    directory.mkdir(parents=True, exist_ok=True)
    for filename in _SECTION_FILES:
        data = _file_bytes(bundle["files"][filename])
        path = directory / filename
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)
    data = _file_bytes(manifest)
    path = directory / MANIFEST_NAME
    tmp = path.with_suffix(".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)
    return directory


def read_bundle(path: Path | str, verify: bool = True) -> dict[str, Any]:
    """Load a bundle directory back into its in-memory form.

    ``verify=True`` (default) re-hashes every section file against the
    manifest table and recomputes the bundle id — a truncated upload or
    a hand-edited file fails loudly instead of producing a bogus diff.
    """
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BundleError(f"{directory}: not a bundle directory ({exc})") from exc
    except ValueError as exc:
        raise BundleError(f"{manifest_path}: invalid JSON ({exc})") from exc
    version = manifest.get("bundle_version")
    if version not in _READABLE_VERSIONS:
        raise BundleError(
            f"{directory}: bundle_version {version!r} "
            f"(this build reads versions {sorted(_READABLE_VERSIONS)})"
        )
    files: dict[str, Any] = {}
    for filename in _SECTION_FILES:
        file_path = directory / filename
        try:
            raw = file_path.read_bytes()
        except OSError as exc:
            if filename == "alerts.json" and version == 1:
                files[filename] = {"alerts": {}, "health_timeline": []}
                continue
            raise BundleError(f"{directory}: missing section {filename}") from exc
        if verify:
            want = manifest.get("files", {}).get(filename)
            got = _sha256(raw)
            if got != want:
                raise BundleError(
                    f"{file_path}: content hash {got[:12]}… does not match "
                    f"the manifest ({str(want)[:12]}…) — the bundle is corrupt"
                )
        files[filename] = json.loads(raw.decode("utf-8"))
    if verify and bundle_id(manifest.get("files", {})) != manifest.get("bundle_id"):
        raise BundleError(f"{directory}: bundle_id does not match the file table")
    return {"manifest": manifest, "files": files}
