"""The diff engine: attribute run-to-run deltas to phases and HAUs.

``diff_bundles(a, b)`` compares two RunBundles and explains *where* the
difference lives: every checkpoint-time / latency / critical-path delta
is broken down by phase span (token-wait, safepoint-wait, snapshot,
disk-io), by individual HAU, and by critical-path hop kind, then ranked
as signed **top movers**.  ``diff_reports(a, b)`` does the cell-level
equivalent for two ``BENCH_headline`` or campaign reports.

Conventions (the antisymmetry contract, tested in
``tests/test_inspect.py``):

* ``a`` is the baseline, ``b`` the candidate; every ``delta`` is
  ``b - a`` (positive = the candidate is bigger/slower).
* ``diff(b, a)`` is the exact mirror of ``diff(a, b)``: ``a``/``b``
  blocks swap, every ``delta`` negates, rankings keep the same order
  (ties and magnitudes are sign-insensitive).

Everything here is a pure function of its inputs — same bundles in,
byte-identical diff out — which is what lets CI print an attributed
perf delta on every PR without a flake budget.
"""

from __future__ import annotations

from typing import Any

from repro.inspect.bundle import PHASE_SPANS

# Ranked movers are capped (per dimension union) so a 10k-HAU diff stays
# readable; the full per-dimension tables remain in the diff body.
DEFAULT_TOP = 10


def _entry(va: float | None, vb: float | None) -> dict[str, Any]:
    """One compared quantity; ``delta`` is None when either side lacks it."""
    delta = None
    if va is not None and vb is not None:
        delta = vb - va
    return {"a": va, "b": vb, "delta": delta}


def _num(mapping: dict[str, Any] | None, key: str) -> float | None:
    if not mapping:
        return None
    value = mapping.get(key)
    return float(value) if isinstance(value, (int, float)) else None


def _dim_entries(
    a_vals: dict[str, float], b_vals: dict[str, float]
) -> dict[str, dict[str, Any]]:
    """Union-keyed delta entries; absent side reads 0.0 (a phase that
    never happened contributed zero seconds, not "unknown")."""
    out: dict[str, dict[str, Any]] = {}
    for key in sorted(set(a_vals) | set(b_vals)):
        out[key] = _entry(a_vals.get(key, 0.0), b_vals.get(key, 0.0))
    return out


def _hop_totals(cp: dict[str, Any] | None) -> tuple[dict[str, float], dict[str, float]]:
    """Critical-path seconds aggregated by hop kind and by hop subject."""
    kinds: dict[str, float] = {}
    subjects: dict[str, float] = {}
    for hops in (cp or {}).get("hops", {}).values():
        for hop in hops:
            kinds[hop["kind"]] = kinds.get(hop["kind"], 0.0) + hop["seconds"]
            subjects[hop["subject"]] = subjects.get(hop["subject"], 0.0) + hop["seconds"]
    return kinds, subjects


def _hau_totals(phases: dict[str, Any] | None) -> dict[str, float]:
    """Per-HAU total phase-span seconds (all phases summed)."""
    out: dict[str, float] = {}
    for hau, buckets in ((phases or {}).get("per_hau") or {}).items():
        out[hau] = sum(buckets.get(p, 0.0) for p in PHASE_SPANS)
    return out


def _alert_totals(section: dict[str, Any] | None) -> dict[str, float]:
    """Alert counts keyed ``slo:action`` from a bundle's alerts.json."""
    summary = ((section or {}).get("alerts") or {}).get("summary") or {}
    out: dict[str, float] = {}
    for slo, bucket in (summary.get("by_slo") or {}).items():
        for action in ("fired", "resolved"):
            count = bucket.get(action, 0)
            if count:
                out[f"{slo}:{action}"] = float(count)
    return out


def _alert_summary(section: dict[str, Any] | None) -> dict[str, float | None]:
    alerts = (section or {}).get("alerts") or {}
    summary = alerts.get("summary") or {}
    return {
        "fired": _num(summary, "fired"),
        "resolved": _num(summary, "resolved"),
        "active": _num(summary, "active"),
        "health_transitions": float(len((section or {}).get("health_timeline") or [])),
    }


def _straggler_keys(timeline: dict[str, Any] | None) -> list[str]:
    return sorted(
        f"{s['round']}:{s['hau']}" for s in (timeline or {}).get("stragglers", [])
    )


def top_movers(
    diff: dict[str, Any], limit: int = DEFAULT_TOP
) -> list[dict[str, Any]]:
    """Rank the attribution dimensions of a bundle diff by |delta|.

    Returns ``[{dimension, name, a, b, delta}]`` sorted by descending
    magnitude (ties: dimension, then name — fully deterministic).  Zero
    and incomparable deltas never appear: a mover always *moved*.
    """
    rows: list[dict[str, Any]] = []
    for dimension, table in (
        ("phase", diff.get("phases", {})),
        ("hau", diff.get("haus", {})),
        ("hop", diff.get("hops", {})),
        ("hop-subject", diff.get("hop_subjects", {})),
        ("alert", diff.get("alerts", {})),
    ):
        for name, entry in table.items():
            delta = entry.get("delta")
            if delta:
                rows.append(
                    {
                        "dimension": dimension,
                        "name": name,
                        "a": entry["a"],
                        "b": entry["b"],
                        "delta": delta,
                    }
                )
    rows.sort(key=lambda r: (-abs(r["delta"]), r["dimension"], r["name"]))
    return rows[:limit]


def _meta(bundle: dict[str, Any]) -> dict[str, Any]:
    manifest = bundle["manifest"]
    return {
        "bundle_id": manifest.get("bundle_id"),
        "digest": manifest.get("digest"),
        **(manifest.get("meta") or {}),
    }


def diff_bundles(
    a: dict[str, Any], b: dict[str, Any], limit: int = DEFAULT_TOP
) -> dict[str, Any]:
    """Compare two in-memory bundles (see :func:`~repro.inspect.bundle.read_bundle`)."""
    af, bf = a["files"], b["files"]
    a_meta, b_meta = _meta(a), _meta(b)
    am, bm = af["metrics.json"], bf["metrics.json"]
    a_pct = am.get("latency_percentiles") or {}
    b_pct = bm.get("latency_percentiles") or {}
    acp, bcp = af["critical_paths.json"], bf["critical_paths.json"]
    a_kinds, a_subjects = _hop_totals(acp)
    b_kinds, b_subjects = _hop_totals(bcp)
    a_phases = (af["phases.json"] or {}).get("totals") or {}
    b_phases = (bf["phases.json"] or {}).get("totals") or {}
    a_strag = _straggler_keys(af["timeline.json"])
    b_strag = _straggler_keys(bf["timeline.json"])
    a_alerts = af.get("alerts.json")
    b_alerts = bf.get("alerts.json")
    a_asum, b_asum = _alert_summary(a_alerts), _alert_summary(b_alerts)

    diff: dict[str, Any] = {
        "kind": "bundle-diff",
        "a": a_meta,
        "b": b_meta,
        # The determinism digest covers the workload's physics only; the
        # monitoring plane rides outside it (that's what makes it a pure
        # observer), so "identical" must also compare the alert sections
        # or a monitor-only change would short-circuit the explainer.
        "identical": bool(
            a_meta.get("digest") is not None
            and a_meta.get("digest") == b_meta.get("digest")
            and a_alerts == b_alerts
        ),
        "same_workload": all(
            a_meta.get(k) == b_meta.get(k) for k in ("app", "scheme", "n_checkpoints")
        ),
        "metrics": {
            "throughput": _entry(_num(am, "throughput"), _num(bm, "throughput")),
            "latency": _entry(_num(am, "latency"), _num(bm, "latency")),
            "latency_p50": _entry(_num(a_pct, "p50"), _num(b_pct, "p50")),
            "latency_p95": _entry(_num(a_pct, "p95"), _num(b_pct, "p95")),
            "latency_p99": _entry(_num(a_pct, "p99"), _num(b_pct, "p99")),
            "rounds_completed": _entry(
                _num(am, "rounds_completed"), _num(bm, "rounds_completed")
            ),
        },
        "checkpoint": {
            "critical_path_max": _entry(_num(acp, "max_seconds"), _num(bcp, "max_seconds")),
            "critical_path_mean": _entry(
                _num(acp, "mean_seconds"), _num(bcp, "mean_seconds")
            ),
        },
        "alert_summary": {
            key: _entry(a_asum[key], b_asum[key]) for key in sorted(a_asum)
        },
        "alerts": _dim_entries(_alert_totals(a_alerts), _alert_totals(b_alerts)),
        "phases": _dim_entries(a_phases, b_phases),
        "haus": _dim_entries(_hau_totals(af["phases.json"]), _hau_totals(bf["phases.json"])),
        "hops": _dim_entries(a_kinds, b_kinds),
        "hop_subjects": _dim_entries(a_subjects, b_subjects),
        "stragglers": {
            "a": a_strag,
            "b": b_strag,
            "appeared": sorted(set(b_strag) - set(a_strag)),
            "disappeared": sorted(set(a_strag) - set(b_strag)),
        },
    }
    diff["top_movers"] = top_movers(diff, limit=limit)
    return diff


# -- report-level diffs (BENCH_headline / campaign) ---------------------------

# Per-cell quantities a headline-report diff compares (higher = slower
# for all but throughput; the explainer knows the sign convention).
CELL_METRICS = (
    "throughput",
    "latency",
    "latency_p99",
    "critical_path_seconds",
    "rounds_completed",
)

SCENARIO_METRICS = ("throughput", "latency", "critical_path_max", "rounds_completed")


def _report_rows(report: dict[str, Any]) -> tuple[str, dict[str, dict[str, Any]]]:
    """``(kind, {row_key: row})`` for either supported report shape."""
    if "cells" in report:
        rows = {
            f"{c['app']}/{c['scheme']}@{c['n_checkpoints']}": c
            for c in report["cells"]
        }
        return "headline", rows
    if "scenarios" in report:
        return "campaign", {r["id"]: r for r in report["scenarios"]}
    raise ValueError("not a BENCH_headline or campaign report (no 'cells'/'scenarios')")


def diff_reports(
    a: dict[str, Any], b: dict[str, Any], limit: int = DEFAULT_TOP
) -> dict[str, Any]:
    """Cell-by-cell (or scenario-by-scenario) report diff with ranked movers.

    Mirrors the bundle-diff conventions: ``delta = b - a`` everywhere,
    and ``diff_reports(b, a)`` is the sign-flipped mirror.
    """
    a_kind, a_rows = _report_rows(a)
    b_kind, b_rows = _report_rows(b)
    if a_kind != b_kind:
        raise ValueError(f"cannot diff a {a_kind} report against a {b_kind} report")
    metrics = CELL_METRICS if a_kind == "headline" else SCENARIO_METRICS
    rows: dict[str, dict[str, Any]] = {}
    for key in sorted(set(a_rows) | set(b_rows)):
        ra, rb = a_rows.get(key), b_rows.get(key)
        rows[key] = {
            "in_a": ra is not None,
            "in_b": rb is not None,
            "metrics": {m: _entry(_num(ra, m), _num(rb, m)) for m in metrics},
        }
    movers: list[dict[str, Any]] = []
    for key, row in rows.items():
        for metric, entry in row["metrics"].items():
            delta = entry.get("delta")
            if not delta:
                continue
            # |relative| change against the larger side: comparable
            # across metrics with very different scales, and symmetric
            # in a/b (so the mirror contract extends to rankings).
            base = max(abs(entry["a"]), abs(entry["b"]))
            movers.append(
                {
                    "row": key,
                    "metric": metric,
                    "a": entry["a"],
                    "b": entry["b"],
                    "delta": delta,
                    "magnitude": abs(delta) / base if base else abs(delta),
                }
            )
    movers.sort(key=lambda r: (-r["magnitude"], r["row"], r["metric"]))
    return {
        "kind": f"{a_kind}-report-diff",
        "rows": rows,
        "top_movers": movers[:limit],
    }
