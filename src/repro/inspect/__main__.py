"""Entry point for ``python -m repro.inspect``."""

import sys

from repro.inspect.cli import main

if __name__ == "__main__":
    sys.exit(main())
