"""Storage substrate: shared checkpoint store and local-disk helpers.

The paper assumes "a shared storage system in the data center where
computing nodes can share data" (GFS-like), reachable over the network,
reliable except for the network path to it.  :class:`SharedStorage`
models exactly that: a service on the storage node whose disk is the
contended resource, with request/response transfers billed to the
clients' NICs.
"""

from repro.storage.shared import SharedStorage, StorageClient, StorageError
from repro.storage.local import LocalStore

__all__ = ["SharedStorage", "StorageClient", "StorageError", "LocalStore"]
