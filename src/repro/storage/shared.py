"""Shared storage service (GFS stand-in) and its client stub.

Writes: the client ships ``size`` bytes over its NIC (+ latency), then the
storage node's disk absorbs them.  Reads: a small request travels over,
the disk produces the bytes, and they return over the storage node's NIC.
All disk traffic serialises on the storage node's single disk pipe —
this contention is what stretches "parallel" checkpoints when 55 HAUs
write at once (Fig. 14) and recovery when 55 HAUs read at once (Fig. 16).

Data is stored under ``(namespace, key)`` with version history, because a
recovering application must load the *consistent cut* (all individual
checkpoints belonging to one application checkpoint), not merely each
HAU's newest state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.node import Node
from repro.simulation.core import Environment

REQUEST_SIZE = 512  # bytes: a read/write RPC header


class StorageError(Exception):
    """Storage operation failed (e.g. missing key, dead client node)."""


@dataclass
class StoredObject:
    """One immutable version of a stored value."""

    namespace: str
    key: str
    version: int
    size: int
    value: Any
    written_at: float


class SharedStorage:
    """The service side: keyed, versioned blobs on the storage node."""

    def __init__(self, env: Environment, node: Node, latency: float = 0.0005):
        self.env = env
        self.node = node
        self.latency = latency
        self._objects: dict[tuple[str, str], list[StoredObject]] = {}
        self._next_version: dict[tuple[str, str], int] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # -- data plane (used via StorageClient) ------------------------------------
    def _absorb(self, namespace: str, key: str, value: Any, size: int, priority: int = 0):
        """Disk-write ``size`` bytes then commit the object version."""
        yield from self.node.disk.transfer(size, priority=priority)
        pair = (namespace, key)
        versions = self._objects.setdefault(pair, [])
        # Version numbers are monotone per key and never reused, even after
        # garbage collection — a recovery must never read a stale object
        # under a recycled version number.
        version = self._next_version.get(pair, 0)
        self._next_version[pair] = version + 1
        versions.append(
            StoredObject(
                namespace=namespace,
                key=key,
                version=version,
                size=int(size),
                value=value,
                written_at=self.env.now,
            )
        )
        self.bytes_written += int(size)
        if self.env.telemetry.enabled:
            self.env.telemetry.counter(
                "ms_storage_bytes_written_total", namespace=namespace
            ).inc(int(size))

    def _produce(self, namespace: str, key: str, version: int | None, priority: int = 0):
        obj = self.lookup(namespace, key, version)
        yield from self.node.disk.transfer(obj.size, priority=priority)
        self.bytes_read += obj.size
        if self.env.telemetry.enabled:
            self.env.telemetry.counter(
                "ms_storage_bytes_read_total", namespace=namespace
            ).inc(obj.size)
        return obj

    # -- control plane (instant metadata access for the co-located controller) --
    def lookup(self, namespace: str, key: str, version: int | None = None) -> StoredObject:
        versions = self._objects.get((namespace, key))
        if not versions:
            raise StorageError(f"no object {namespace}/{key}")
        if version is None:
            return versions[-1]
        for obj in versions:
            if obj.version == version:
                return obj
        raise StorageError(f"no version {version} of {namespace}/{key}")

    def exists(self, namespace: str, key: str) -> bool:
        return (namespace, key) in self._objects

    def keys(self, namespace: str) -> list[str]:
        return sorted(k for (ns, k) in self._objects if ns == namespace)

    def latest_version(self, namespace: str, key: str) -> int:
        return self.lookup(namespace, key).version

    def drop_versions_before(self, namespace: str, key: str, version: int) -> None:
        """Garbage-collect superseded checkpoints / acked preserved tuples."""
        pair = (namespace, key)
        versions = self._objects.get(pair)
        if versions:
            self._objects[pair] = [o for o in versions if o.version >= version]

    def total_bytes(self, namespace: str | None = None) -> int:
        return sum(
            obj.size
            for (ns, _k), versions in self._objects.items()
            for obj in versions
            if namespace is None or ns == namespace
        )


class StorageClient:
    """Per-node stub billing transfers to the client's NIC.

    ``write``/``read`` are process generators to be driven with
    ``yield from`` inside node-hosted processes.
    """

    def __init__(self, node: Node, storage: SharedStorage):
        self.node = node
        self.storage = storage

    def write(self, namespace: str, key: str, value: Any, size: int, bulk: bool = False):
        """Ship ``size`` bytes to shared storage; returns committed version.

        ``bulk=True`` marks background traffic (checkpoint state): it
        yields the disk/NIC to small latency-sensitive writes (source
        preservation) between service quanta.
        """
        self.node.check_alive()
        size = int(size)
        prio = 1 if bulk else 0
        # request + payload over client NIC
        yield from self.node.nic_out.transfer(REQUEST_SIZE + size, priority=prio)
        yield self.node.env.timeout(self.storage.latency)
        if not self.storage.node.alive:
            raise StorageError("storage node down")
        yield from self.storage._absorb(namespace, key, value, size, priority=prio)
        self.node.check_alive()
        return self.storage.latest_version(namespace, key)

    def read(self, namespace: str, key: str, version: int | None = None, bulk: bool = False):
        """Fetch an object; returns the :class:`StoredObject`."""
        self.node.check_alive()
        prio = 1 if bulk else 0
        yield from self.node.nic_out.transfer(REQUEST_SIZE, priority=prio)
        yield self.node.env.timeout(self.storage.latency)
        if not self.storage.node.alive:
            raise StorageError("storage node down")
        obj = yield from self.storage._produce(namespace, key, version, priority=prio)
        # payload back over the storage node's NIC
        yield from self.storage.node.nic_out.transfer(obj.size, priority=prio)
        yield self.node.env.timeout(self.storage.latency)
        self.node.check_alive()
        return obj
