"""Local-disk store used by input preservation (baseline scheme).

The baseline buffers output tuples in a bounded in-memory buffer
(default 50 MB per the paper §II-B3) and dumps the buffer to the local
disk when full.  Dumped bytes stay addressable (for replay) until the
downstream acknowledgement discards them.  A node failure loses the
local store — which is precisely why the baseline cannot survive
correlated failures that take out both an HAU and its upstream.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.node import Node

DEFAULT_BUFFER_BYTES = 50 * 1024 * 1024  # 50 MB, per the paper


class LocalStore:
    """Bounded memory buffer with spill-to-local-disk.

    ``append`` is a process generator: it is free while the buffer has
    room and pays a disk dump when full.  ``discard_through`` drops
    entries up to a sequence number (downstream checkpoint ack).
    """

    def __init__(self, node: Node, buffer_bytes: int = DEFAULT_BUFFER_BYTES):
        self.node = node
        self.buffer_bytes = int(buffer_bytes)
        self._mem: list[tuple[int, Any, int]] = []  # (seq, item, size)
        self._mem_bytes = 0
        self._disk: list[tuple[int, Any, int]] = []
        self._disk_bytes = 0
        self.spills = 0
        self.bytes_spilled = 0

    def __len__(self) -> int:
        return len(self._mem) + len(self._disk)

    @property
    def mem_bytes(self) -> int:
        return self._mem_bytes

    @property
    def disk_bytes(self) -> int:
        return self._disk_bytes

    def append(self, seq: int, item: Any, size: int):
        """Retain ``item``; spills the memory buffer to disk when full."""
        self.node.check_alive()
        size = int(size)
        if self._mem_bytes + size > self.buffer_bytes and self._mem:
            # Dump the whole buffer (sequential write), then keep going.
            dump_bytes = self._mem_bytes
            yield from self.node.disk.transfer(dump_bytes)
            self._disk.extend(self._mem)
            self._disk_bytes += dump_bytes
            self._mem = []
            self._mem_bytes = 0
            self.spills += 1
            self.bytes_spilled += dump_bytes
        self._mem.append((seq, item, size))
        self._mem_bytes += size

    def discard_through(self, seq: int) -> int:
        """Drop all entries with sequence <= seq; returns bytes freed."""
        freed = 0
        kept_mem = []
        for entry in self._mem:
            if entry[0] <= seq:
                freed += entry[2]
            else:
                kept_mem.append(entry)
        self._mem_bytes -= sum(e[2] for e in self._mem) - sum(e[2] for e in kept_mem)
        self._mem = kept_mem
        kept_disk = []
        for entry in self._disk:
            if entry[0] <= seq:
                freed += entry[2]
                self._disk_bytes -= entry[2]
            else:
                kept_disk.append(entry)
        self._disk = kept_disk
        return freed

    def replay_after(self, seq: int):
        """Process generator yielding nothing; returns retained items > seq.

        Reading spilled entries costs a disk read.
        """
        self.node.check_alive()
        disk_hits = [e for e in self._disk if e[0] > seq]
        if disk_hits:
            yield from self.node.disk.transfer(sum(e[2] for e in disk_hits))
        items = sorted(disk_hits + [e for e in self._mem if e[0] > seq])
        return [(s, item, sz) for (s, item, sz) in items]
