"""``python -m repro.scenarios`` — validate / run / goldens subcommands.

* ``validate [paths...]`` — schema-check scenario files (default: every
  file under ``examples/scenarios/``); prints each document's errors
  with their paths and exits 1 if any document is invalid.
* ``run <path>`` — compile and execute one scenario, print its outcome
  (digest, throughput, rounds, expectation results).
* ``goldens [--write]`` — run every example scenario and compare its
  digest against ``GOLDENS.json``; ``--write`` regenerates the file
  after an intentional model change.

The fuzzing campaign lives one module down:
``python -m repro.scenarios.campaign`` (see :mod:`repro.scenarios.campaign`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.scenarios.campaign import default_examples_dir
from repro.scenarios.compiler import check_expectations, compile_scenario
from repro.scenarios.goldens import (
    default_goldens_path,
    golden_status,
    load_goldens,
    write_goldens,
)
from repro.scenarios.loader import ScenarioParseError, load_path, scenario_paths
from repro.scenarios.schema import ScenarioValidationError, validate


def _cmd_validate(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths] or scenario_paths(default_examples_dir())
    if not paths:
        print("no scenario files found", file=sys.stderr)
        return 1
    bad = 0
    for path in paths:
        try:
            doc = load_path(path)
        except (ScenarioParseError, OSError) as exc:
            print(f"  FAIL {path}: {exc}")
            bad += 1
            continue
        errors = validate(doc)
        if errors:
            bad += 1
            print(f"  FAIL {path}: {len(errors)} schema error(s)")
            for err in errors:
                print(f"         {err}")
        else:
            print(f"  ok   {path} ({doc['id']})")
    print(f"{len(paths) - bad}/{len(paths)} scenario(s) valid")
    return 1 if bad else 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.sweep import run_cells

    try:
        scn = compile_scenario(load_path(args.path), source=args.path)
    except (ScenarioParseError, ScenarioValidationError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    [payload] = run_cells([scn.spec], jobs=1, use_cache=not args.no_cache)
    print(f"{scn.scenario_id}: digest={payload['digest']}")
    print(f"  throughput={payload['throughput']} latency={payload['latency']:.3f}s "
          f"rounds={payload['rounds_completed']} "
          f"recovered={payload['recovery'] is not None}")
    problems = check_expectations(scn.doc, payload)
    for problem in problems:
        print(f"  expect: {problem}")
    return 1 if problems else 0


def _cmd_goldens(args: argparse.Namespace) -> int:
    from repro.harness.sweep import run_cells

    try:
        compiled = [compile_scenario(load_path(p), source=str(p))
                    for p in scenario_paths(default_examples_dir())]
    except (ScenarioParseError, ScenarioValidationError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if not compiled:
        print("no example scenarios found", file=sys.stderr)
        return 2
    payloads = run_cells([scn.spec for scn in compiled], use_cache=not args.no_cache)
    digests = {scn.scenario_id: payload["digest"]
               for scn, payload in zip(compiled, payloads)}
    goldens_path = Path(args.goldens) if args.goldens else default_goldens_path()
    if args.write:
        path = write_goldens(digests, goldens_path)
        print(f"wrote {len(digests)} golden digest(s) to {path}")
        return 0
    goldens = load_goldens(goldens_path)
    failures = 0
    for scenario_id, digest in sorted(digests.items()):
        status = golden_status(goldens, scenario_id, digest)
        if status in ("MISMATCH", "new"):
            failures += 1
        print(f"  {status}: {scenario_id} {digest}")
    if failures:
        print(f"FAIL: {failures} golden(s) out of date — "
              "python -m repro.scenarios goldens --write after an intentional change")
        return 1
    print(f"OK: {len(digests)} scenario digest(s) checked")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="schema-check scenario files")
    p_validate.add_argument("paths", nargs="*", help="files (default: examples/scenarios/)")
    p_validate.set_defaults(func=_cmd_validate)

    p_run = sub.add_parser("run", help="compile and execute one scenario")
    p_run.add_argument("path")
    p_run.add_argument("--no-cache", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_goldens = sub.add_parser("goldens", help="check or regenerate digest goldens")
    p_goldens.add_argument("--write", action="store_true")
    p_goldens.add_argument("--goldens", default=None)
    p_goldens.add_argument("--no-cache", action="store_true")
    p_goldens.set_defaults(func=_cmd_goldens)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
