"""Seeded scenario fuzzer: valid-by-construction chaos campaigns.

``fuzz_documents(seed, count)`` draws ``count`` scenario documents from
seeded distributions over the schema's whole surface — app family
(including generated ``synth`` topologies), scheme, cluster shape and a
failure-trace family (none / single kill / rack burst / partition /
straggler / mixed) — using one ``np.random.default_rng(seed)`` stream,
so the same seed always yields byte-identical documents.

Every generated document is passed through the validator before it is
returned: the fuzzer explores the space of *valid* scenarios (the
campaign's job is to shake the simulator, not the schema — invalid-doc
handling is covered by unit tests instead).  Floats are rounded to
short decimals so documents serialise identically everywhere.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.scenarios.schema import SCENARIO_SCHEMES, VERSION, check

# Keep fuzzed runs small: a short window with 8 workers finishes in a
# few seconds, and the sweep cache amortises repeats across campaigns.
_WINDOWS = (30.0, 40.0)
_SCHEMES = tuple(s for s in SCENARIO_SCHEMES if s != "none")
_FAILURE_FAMILIES = ("none", "single", "burst", "partition", "straggler", "mixed")

# App families: the paper apps at digest-baseline scale, plus synth
# topology shapes exercising the graph-construction surface.
_PAPER_APPS = (
    ("tmi", {"n_minutes": 0.25}),
    ("bcp", {"state_scale": 0.1}),
    ("signalguru", {"state_scale": 0.1}),
)
_SYNTH_SHAPES = ("chain", "fanout", "diamond")


def _synth_topology(rng: np.random.Generator, shape: str) -> dict[str, Any]:
    """A small synthetic topology of the requested shape."""
    sources = int(rng.integers(2, 5))
    width = int(rng.integers(3, 7))
    src_shape = ("constant", "poisson", "burst")[int(rng.integers(3))]
    source = {"name": "s", "kind": "source", "replicas": sources,
              "interval": round(float(rng.uniform(0.4, 0.8)), 2), "shape": src_shape}
    if shape == "chain":
        stages = [source,
                  {"name": "m", "kind": "map", "replicas": width, "state_window": 32},
                  {"name": "r", "kind": "map", "replicas": width, "state_window": 64},
                  {"name": "k", "kind": "sink", "replicas": 1}]
        edges = [{"src": "s", "dst": "m", "routing": "hash", "pairing": "all"},
                 {"src": "m", "dst": "r", "pairing": "aligned"},
                 {"src": "r", "dst": "k"}]
    elif shape == "fanout":
        stages = [source,
                  {"name": "m", "kind": "map", "replicas": width, "state_window": 32},
                  {"name": "ka", "kind": "sink", "replicas": 1},
                  {"name": "kb", "kind": "sink", "replicas": 1}]
        edges = [{"src": "s", "dst": "m", "routing": "hash", "pairing": "all"},
                 {"src": "m", "dst": "ka"},
                 {"src": "m", "dst": "kb"}]
    else:  # diamond: branch at a map stage (sources emit on port 0 only)
        stages = [source,
                  {"name": "m", "kind": "map", "replicas": width, "state_window": 32},
                  {"name": "la", "kind": "map", "replicas": 2, "state_window": 48},
                  {"name": "lb", "kind": "map", "replicas": 2, "state_window": 48},
                  {"name": "k", "kind": "sink", "replicas": 1}]
        edges = [{"src": "s", "dst": "m", "routing": "hash", "pairing": "all"},
                 {"src": "m", "dst": "la", "routing": "hash", "pairing": "all"},
                 {"src": "m", "dst": "lb", "routing": "hash", "pairing": "all"},
                 {"src": "la", "dst": "k"},
                 {"src": "lb", "dst": "k"}]
    return {"stages": stages, "edges": edges}


def _fuzz_app(rng: np.random.Generator) -> dict[str, Any]:
    pick = int(rng.integers(len(_PAPER_APPS) + len(_SYNTH_SHAPES)))
    if pick < len(_PAPER_APPS):
        name, params = _PAPER_APPS[pick]
        return {"name": name, "params": dict(params)}
    shape = _SYNTH_SHAPES[pick - len(_PAPER_APPS)]
    return {"name": "synth", "params": {"topology": _synth_topology(rng, shape)}}


def _node_target(rng: np.random.Generator, workers: int) -> str:
    return f"w{int(rng.integers(workers))}"


def _degradation(rng: np.random.Generator, kind: str, target: str,
                 at: float) -> dict[str, Any]:
    return {
        "at": at, "kind": kind, "target": target,
        "duration": round(float(rng.uniform(4.0, 10.0)), 1),
        "factor": round(float(rng.uniform(5.0, 50.0)), 1),
    }


def _fuzz_failures(rng: np.random.Generator, family: str, warmup: float,
                   window: float, workers: int, racks: int) -> list[dict[str, Any]]:
    def at(lo: float = 0.2, hi: float = 0.7) -> float:
        return round(float(warmup + rng.uniform(lo, hi) * window), 1)

    rack = f"rack{int(rng.integers(racks))}"
    if family == "none":
        return []
    if family == "single":
        return [{"at": at(), "kind": "node", "target": _node_target(rng, workers),
                 "cause": "fuzz"}]
    if family == "burst":
        return [{"at": at(), "kind": "rack", "target": rack, "cause": "fuzz"}]
    if family == "partition":
        return [_degradation(rng, "partition", rack, at())]
    if family == "straggler":
        return [_degradation(rng, "straggler", _node_target(rng, workers), at())]
    # mixed: a degradation leading into a kill, like a failing switch
    first, second = sorted([at(0.1, 0.5), at(0.5, 0.8)])
    kind = ("partition", "straggler")[int(rng.integers(2))]
    degraded = rack if kind == "partition" else _node_target(rng, workers)
    return [
        _degradation(rng, kind, degraded, first),
        {"at": second, "kind": "node", "target": _node_target(rng, workers),
         "cause": "fuzz"},
    ]


def fuzz_documents(seed: int, count: int) -> list[dict[str, Any]]:
    """``count`` valid scenario documents, deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    docs = []
    for i in range(count):
        workers, spares, racks = 8, 12, 2
        window = _WINDOWS[int(rng.integers(len(_WINDOWS)))]
        warmup = 10.0
        family = _FAILURE_FAMILIES[int(rng.integers(len(_FAILURE_FAMILIES)))]
        failures = _fuzz_failures(rng, family, warmup, window, workers, racks)
        kills = any(f["kind"] in ("node", "rack") for f in failures)
        doc = {
            "id": f"fuzz-{seed}-{i:03d}",
            "version": VERSION,
            "description": f"fuzzed campaign scenario (seed={seed}, family={family})",
            "app": _fuzz_app(rng),
            "seed": int(rng.integers(1, 1000)),
            "cluster": {"workers": workers, "spares": spares, "racks": racks},
            "run": {
                "window": window,
                "warmup": warmup,
                "n_checkpoints": int(rng.integers(1, 4)),
                # Kills without recovery stall the probe stage forever;
                # fuzzed kills always exercise the recovery path.
                "recovery": kills,
            },
            "scheme": _SCHEMES[int(rng.integers(len(_SCHEMES)))],
        }
        if failures:
            doc["failures"] = failures
        docs.append(check(doc, source=doc["id"]))
    return docs
