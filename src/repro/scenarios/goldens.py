"""Per-scenario digest goldens: the campaign's regression memory.

``examples/scenarios/GOLDENS.json`` commits the determinism digest of
every checked-in scenario next to the environment fingerprint it was
produced under.  The campaign runner compares each example scenario's
fresh digest against its golden:

* ``ok`` — bit-identical: the scenario's entire event order reproduced;
* ``MISMATCH`` — behaviour changed (a physics/model edit, or a real
  regression) — regenerate with ``python -m repro.scenarios goldens
  --write`` after an *intentional* change;
* ``env-skip`` — the interpreter/numpy/arch differ from the recorded
  environment, where float-level comparison is meaningless (same rule
  as ``benchmarks/DIGEST_baseline.json``);
* ``new`` — the scenario has no golden yet (fails the strict gate so
  new examples cannot land ungated).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.harness.digest import environment_fingerprint


def default_goldens_path() -> Path:
    return Path(__file__).resolve().parents[3] / "examples" / "scenarios" / "GOLDENS.json"


def load_goldens(path: str | Path | None = None) -> dict[str, Any]:
    p = Path(path) if path is not None else default_goldens_path()
    if not p.is_file():
        return {"environment": None, "digests": {}}
    with open(p, encoding="utf-8") as fh:
        return json.load(fh)


def write_goldens(digests: dict[str, str], path: str | Path | None = None) -> Path:
    """Persist ``{scenario_id: digest}`` under the current environment."""
    p = Path(path) if path is not None else default_goldens_path()
    p.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "environment": environment_fingerprint(),
        "digests": dict(sorted(digests.items())),
    }
    with open(p, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return p


def golden_status(goldens: dict[str, Any], scenario_id: str, digest: str) -> str:
    """One of ``ok`` / ``MISMATCH`` / ``env-skip`` / ``new``."""
    if goldens.get("environment") != environment_fingerprint():
        return "env-skip"
    want = goldens.get("digests", {}).get(scenario_id)
    if want is None:
        return "new"
    return "ok" if digest == want else "MISMATCH"
