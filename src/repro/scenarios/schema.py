"""Scenario document schema: shape, enums, and actionable validation.

A *scenario* is a declarative YAML/JSON document describing one complete
reliability experiment — app + topology, cluster shape, run schedule,
checkpoint scheme, and a failure trace — that
:mod:`repro.scenarios.compiler` lowers onto the existing harness
(:class:`~repro.harness.sweep.CellSpec` → ``run_cells``), so every
scenario inherits tracing, telemetry, critical paths and digest
determinism for free.

The document shape (see DESIGN.md § Scenario schema for the reference
table)::

    id: rack-burst-recovery          # required slug, unique per library
    version: 1                       # required, must equal VERSION
    description: free text           # optional
    app: {name: tmi, params: {...}}  # required; params forwarded to build()
    seed: 1                          # optional int
    cluster: {workers: 8, spares: 12, racks: 2}
    run: {window: 40.0, warmup: 10.0, n_checkpoints: 2, recovery: true}
    scheme: ms-src+ap                # required, one of SCHEME_NAMES - oracle
    failures:                        # optional list of PlannedFailure rows
      - {at: 20.0, kind: rack, target: rack1, cause: power}
      - {at: 22.0, kind: partition, target: rack0, duration: 6.0, factor: 200.0}
    monitor:                         # optional live monitoring plane
      period: 1.0                    # tick period (sim seconds)
      slos: {checkpoint-staleness: 12.0}   # SLO kind -> bound override
    expect:                          # optional outcome assertions
      min_rounds: 1
      recovers: true
      min_throughput: 1000
      alerts:                        # needs monitor; minimum alert counts
        - {slo: checkpoint-staleness, fired: 1, resolved: 1}

Validation never raises on the first problem: :func:`validate` walks the
whole document and returns every :class:`SchemaError`, each carrying a
``path`` (``failures[2].target``) and a message that states the allowed
values — the errors are meant to be pasted back at the scenario author.

Enums are imported live from the modules that implement them
(``SCHEME_NAMES``, ``APPS``, ``FAILURE_KINDS``), and the field tuples
below are plain literals so the ``repro-lint`` SCN001 rule can
cross-check them against DESIGN.md and the compiler without importing
anything.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.apps import APPS
from repro.apps.synth import TopologyError, _check_topology
from repro.failures.injector import FAILURE_KINDS
from repro.harness.experiment import SCHEME_NAMES
from repro.monitor.slo import SLO_KINDS

VERSION = 1

# Field registries: literal tuples on purpose — repro-lint's SCN001 rule
# reads them from the AST and diffs them against DESIGN.md's scenario
# table, so the docs cannot drift from what the validator accepts.
TOP_LEVEL_FIELDS = (
    "id",
    "version",
    "description",
    "app",
    "seed",
    "cluster",
    "run",
    "scheme",
    "failures",
    "monitor",
    "expect",
)
REQUIRED_FIELDS = ("id", "version", "app", "scheme")
APP_FIELDS = ("name", "params")
CLUSTER_FIELDS = ("workers", "spares", "racks")
RUN_FIELDS = ("window", "warmup", "n_checkpoints", "recovery")
FAILURE_FIELDS = ("at", "kind", "target", "cause", "duration", "factor")
MONITOR_FIELDS = ("period", "slos")
EXPECT_FIELDS = ("min_rounds", "recovers", "min_throughput", "alerts")
ALERT_EXPECT_FIELDS = ("slo", "subject", "fired", "resolved")

# Scenarios drive schemes that run unattended; "oracle" needs observed
# per-run checkpoint instants (find_oracle_times), so it stays a
# harness-level tool rather than a scenario option.
SCENARIO_SCHEMES = tuple(s for s in SCHEME_NAMES if s != "oracle")

_ID_RE = re.compile(r"^[a-z0-9][a-z0-9-]{0,63}$")
_NODE_RE = re.compile(r"^(w|spare)(\d+)$")
_RACK_RE = re.compile(r"^rack(\d+)$")

# Degradation kinds take duration/factor; kill kinds must not.
DEGRADATION_KINDS = ("partition", "straggler")


@dataclass(frozen=True)
class SchemaError:
    """One problem, addressed by document path, phrased for the author."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


class ScenarioValidationError(ValueError):
    """Raised by :func:`check` when a document has any schema error."""

    def __init__(self, source: str, errors: list[SchemaError]):
        self.source = source
        self.errors = errors
        lines = "\n".join(f"  - {e}" for e in errors)
        super().__init__(f"{source}: {len(errors)} schema error(s)\n{lines}")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _unknown_keys(mapping: dict, allowed: tuple, path: str, errors: list[SchemaError]) -> None:
    for key in sorted(set(mapping) - set(allowed)):
        errors.append(SchemaError(f"{path}.{key}" if path else str(key),
                                  f"unknown field; allowed: {', '.join(allowed)}"))


def _validate_app(app: Any, errors: list[SchemaError]) -> None:
    if not isinstance(app, dict):
        errors.append(SchemaError("app", "must be a mapping {name, params}"))
        return
    _unknown_keys(app, APP_FIELDS, "app", errors)
    name = app.get("name")
    if name not in APPS:
        errors.append(SchemaError("app.name", f"unknown app {name!r}; choose from {sorted(APPS)}"))
        return
    params = app.get("params", {})
    if not isinstance(params, dict):
        errors.append(SchemaError("app.params", "must be a mapping of build() keyword arguments"))
        return
    if name == "synth" and "topology" in params:
        try:
            _check_topology(params["topology"])
        except TopologyError as exc:
            errors.append(SchemaError("app.params.topology", str(exc)))
        except (TypeError, AttributeError):
            errors.append(SchemaError("app.params.topology",
                                      "must be a mapping {stages: [...], edges: [...]}"))


def _validate_cluster(cluster: Any, errors: list[SchemaError]) -> dict[str, int]:
    """Validate and return the effective cluster shape for target checks."""
    shape = {"workers": 8, "spares": 12, "racks": 2}
    if cluster is None:
        return shape
    if not isinstance(cluster, dict):
        errors.append(SchemaError("cluster", "must be a mapping {workers, spares, racks}"))
        return shape
    _unknown_keys(cluster, CLUSTER_FIELDS, "cluster", errors)
    for key in CLUSTER_FIELDS:
        if key not in cluster:
            continue
        value = cluster[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            errors.append(SchemaError(f"cluster.{key}", "must be an integer >= 1"))
        else:
            shape[key] = value
    return shape


def _validate_run(run: Any, errors: list[SchemaError]) -> None:
    if run is None:
        return
    if not isinstance(run, dict):
        errors.append(SchemaError("run", "must be a mapping {window, warmup, n_checkpoints, recovery}"))
        return
    _unknown_keys(run, RUN_FIELDS, "run", errors)
    for key in ("window", "warmup"):
        if key in run and (not _is_number(run[key]) or run[key] <= 0):
            errors.append(SchemaError(f"run.{key}", "must be a number > 0 (seconds)"))
    if "n_checkpoints" in run:
        n = run["n_checkpoints"]
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            errors.append(SchemaError("run.n_checkpoints", "must be an integer >= 0"))
    if "recovery" in run and not isinstance(run["recovery"], bool):
        errors.append(SchemaError("run.recovery", "must be true or false"))


def _validate_target(kind: str, target: Any, shape: dict[str, int],
                     path: str, errors: list[SchemaError]) -> None:
    if not isinstance(target, str):
        errors.append(SchemaError(path, "must be a node or rack id string"))
        return
    if kind in ("rack", "partition"):
        m = _RACK_RE.match(target)
        if not m or int(m.group(1)) >= shape["racks"]:
            errors.append(SchemaError(
                path,
                f"{kind!r} targets a rack: rack0..rack{shape['racks'] - 1} "
                f"(cluster has racks={shape['racks']})",
            ))
        return
    # node / straggler target a single node
    if target == "storage":
        return
    m = _NODE_RE.match(target)
    if m:
        prefix, index = m.group(1), int(m.group(2))
        limit = shape["workers"] if prefix == "w" else shape["spares"]
        if index < limit:
            return
    errors.append(SchemaError(
        path,
        f"{kind!r} targets a node: w0..w{shape['workers'] - 1}, "
        f"spare0..spare{shape['spares'] - 1}, or storage",
    ))


def _validate_failures(failures: Any, shape: dict[str, int],
                       errors: list[SchemaError]) -> None:
    if failures is None:
        return
    if not isinstance(failures, list):
        errors.append(SchemaError("failures", "must be a list of failure events"))
        return
    for i, event in enumerate(failures):
        path = f"failures[{i}]"
        if not isinstance(event, dict):
            errors.append(SchemaError(path, "must be a mapping {at, kind, target, ...}"))
            continue
        _unknown_keys(event, FAILURE_FIELDS, path, errors)
        if not _is_number(event.get("at")) or event.get("at", -1) < 0:
            errors.append(SchemaError(f"{path}.at", "must be a number >= 0 (sim seconds)"))
        kind = event.get("kind")
        if kind not in FAILURE_KINDS:
            errors.append(SchemaError(
                f"{path}.kind", f"unknown kind {kind!r}; choose from {', '.join(FAILURE_KINDS)}"))
            continue
        _validate_target(kind, event.get("target"), shape, f"{path}.target", errors)
        if "cause" in event and not isinstance(event["cause"], str):
            errors.append(SchemaError(f"{path}.cause", "must be a short string label"))
        for key, rule in (("duration", "a number >= 0 (0 = permanent)"),
                          ("factor", "a number >= 1")):
            if key not in event:
                continue
            if kind not in DEGRADATION_KINDS:
                errors.append(SchemaError(
                    f"{path}.{key}",
                    f"only valid for {' / '.join(DEGRADATION_KINDS)}; "
                    f"{kind!r} is a permanent kill"))
            elif not _is_number(event[key]) or event[key] < (0 if key == "duration" else 1):
                errors.append(SchemaError(f"{path}.{key}", f"must be {rule}"))


def _validate_monitor(monitor: Any, errors: list[SchemaError]) -> None:
    if monitor is None:
        return
    if not isinstance(monitor, dict):
        errors.append(SchemaError("monitor", "must be a mapping {period, slos}"))
        return
    _unknown_keys(monitor, MONITOR_FIELDS, "monitor", errors)
    if "period" in monitor and (not _is_number(monitor["period"]) or monitor["period"] <= 0):
        errors.append(SchemaError("monitor.period", "must be a number > 0 (sim seconds)"))
    slos = monitor.get("slos")
    if slos is None:
        return
    if not isinstance(slos, dict):
        errors.append(SchemaError("monitor.slos", "must be a mapping of SLO kind -> bound"))
        return
    for kind in sorted(slos):
        if kind not in SLO_KINDS:
            errors.append(SchemaError(
                f"monitor.slos.{kind}",
                f"unknown SLO kind; choose from {', '.join(SLO_KINDS)}"))
        elif not _is_number(slos[kind]) or slos[kind] <= 0:
            errors.append(SchemaError(f"monitor.slos.{kind}", "must be a number > 0 (seconds)"))


def _validate_alert_expectations(alerts: Any, errors: list[SchemaError]) -> None:
    if not isinstance(alerts, list):
        errors.append(SchemaError("expect.alerts", "must be a list of alert assertions"))
        return
    for i, row in enumerate(alerts):
        path = f"expect.alerts[{i}]"
        if not isinstance(row, dict):
            errors.append(SchemaError(path, "must be a mapping {slo, subject, fired, resolved}"))
            continue
        _unknown_keys(row, ALERT_EXPECT_FIELDS, path, errors)
        slo = row.get("slo")
        if slo not in SLO_KINDS:
            errors.append(SchemaError(
                f"{path}.slo", f"unknown SLO kind {slo!r}; choose from {', '.join(SLO_KINDS)}"))
        if "subject" in row and not isinstance(row["subject"], str):
            errors.append(SchemaError(f"{path}.subject", "must be an HAU id string"))
        if "fired" not in row and "resolved" not in row:
            errors.append(SchemaError(
                path, "must assert at least one of fired / resolved (minimum counts)"))
        for key in ("fired", "resolved"):
            if key in row:
                n = row[key]
                if not isinstance(n, int) or isinstance(n, bool) or n < 0:
                    errors.append(SchemaError(f"{path}.{key}", "must be an integer >= 0"))


def _validate_expect(expect: Any, errors: list[SchemaError]) -> None:
    if expect is None:
        return
    if not isinstance(expect, dict):
        errors.append(SchemaError("expect", "must be a mapping of outcome assertions"))
        return
    _unknown_keys(expect, EXPECT_FIELDS, "expect", errors)
    if "min_rounds" in expect:
        n = expect["min_rounds"]
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            errors.append(SchemaError("expect.min_rounds", "must be an integer >= 0"))
    if "recovers" in expect and not isinstance(expect["recovers"], bool):
        errors.append(SchemaError("expect.recovers", "must be true or false"))
    if "min_throughput" in expect and (
            not _is_number(expect["min_throughput"]) or expect["min_throughput"] < 0):
        errors.append(SchemaError("expect.min_throughput", "must be a number >= 0 (tuples)"))
    if "alerts" in expect:
        _validate_alert_expectations(expect["alerts"], errors)


def validate(doc: Any) -> list[SchemaError]:
    """Every schema problem in ``doc``, in document order; empty = valid."""
    errors: list[SchemaError] = []
    if not isinstance(doc, dict):
        return [SchemaError("$", "scenario document must be a mapping")]
    _unknown_keys(doc, TOP_LEVEL_FIELDS, "", errors)
    for key in REQUIRED_FIELDS:
        if key not in doc:
            errors.append(SchemaError(key, "required field is missing"))

    if "id" in doc and (not isinstance(doc["id"], str) or not _ID_RE.match(doc["id"])):
        errors.append(SchemaError("id", "must be a lowercase slug matching [a-z0-9][a-z0-9-]*"))
    if "version" in doc and doc["version"] != VERSION:
        errors.append(SchemaError("version", f"must be {VERSION} (this library's schema version)"))
    if "description" in doc and not isinstance(doc["description"], str):
        errors.append(SchemaError("description", "must be a string"))
    if "seed" in doc and (not isinstance(doc["seed"], int) or isinstance(doc["seed"], bool)):
        errors.append(SchemaError("seed", "must be an integer"))
    if "scheme" in doc and doc["scheme"] not in SCENARIO_SCHEMES:
        errors.append(SchemaError(
            "scheme",
            f"unknown scheme {doc['scheme']!r}; choose from {', '.join(SCENARIO_SCHEMES)} "
            "(oracle needs observed checkpoint times — drive it via the harness directly)"))

    if "app" in doc:
        _validate_app(doc["app"], errors)
    shape = _validate_cluster(doc.get("cluster"), errors)
    _validate_run(doc.get("run"), errors)
    _validate_failures(doc.get("failures"), shape, errors)
    _validate_monitor(doc.get("monitor"), errors)
    _validate_expect(doc.get("expect"), errors)
    return errors


def check(doc: Any, source: str = "<scenario>") -> dict:
    """Validate and return ``doc``; raise with every error otherwise."""
    errors = validate(doc)
    if errors:
        raise ScenarioValidationError(source, errors)
    return doc
