"""Lower validated scenario documents onto the sweep harness.

The compiler is a pure function from document to
:class:`~repro.harness.sweep.CellSpec`: the scenario's app/cluster/run
sections become an :class:`~repro.harness.experiment.ExperimentConfig`,
and its ``failures`` list becomes the cell's declarative
``failure_trace`` (a tuple of
:class:`~repro.failures.injector.PlannedFailure`).  Because the result
is an ordinary cell, scenarios ride the content-addressed cache, the
parallel runner, tracing and the digest machinery without any code of
their own — two compilations of the same document are equal cells with
equal cache keys.

Defaults mirror the harness's canonical digest cases (small windows,
8 workers / 12 spares / 2 racks) so a bare scenario runs in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.failures.injector import (
    DEFAULT_PARTITION_FACTOR,
    DEFAULT_STRAGGLER_FACTOR,
    PlannedFailure,
)
from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import CellSpec
from repro.scenarios.schema import check

# One bounded degradation window by default: long enough to perturb the
# measured window, short enough that every scenario also exercises the
# restore path.
DEFAULT_DURATION = 6.0

DEFAULT_CLUSTER = {"workers": 8, "spares": 12, "racks": 2}
DEFAULT_RUN = {"window": 40.0, "warmup": 10.0, "n_checkpoints": 2, "recovery": False}
DEFAULT_SEED = 1

_DEFAULT_FACTORS = {
    "partition": DEFAULT_PARTITION_FACTOR,
    "straggler": DEFAULT_STRAGGLER_FACTOR,
}


@dataclass(frozen=True)
class CompiledScenario:
    """A document plus the cell it lowers to."""

    scenario_id: str
    doc: dict[str, Any]
    spec: CellSpec


def _lower_failures(failures: list[dict[str, Any]] | None) -> tuple[PlannedFailure, ...] | None:
    if not failures:
        return None
    events = []
    for row in failures:
        kind = row["kind"]
        degradation = kind in _DEFAULT_FACTORS
        events.append(PlannedFailure(
            at=float(row["at"]),
            kind=kind,
            target=row["target"],
            cause=row.get("cause", "scenario"),
            duration=float(row.get("duration", DEFAULT_DURATION)) if degradation else 0.0,
            factor=float(row.get("factor", _DEFAULT_FACTORS.get(kind, 1.0))),
        ))
    # Same ordering key as FailurePlan.sorted_events, so the document's
    # listing order never leaks into the cell key or the injection order.
    events.sort(key=lambda e: (e.at, e.target, e.kind))
    return tuple(events)


def compile_scenario(doc: dict[str, Any], source: str = "<scenario>") -> CompiledScenario:
    """Validate ``doc`` and lower it to a runnable cell.

    Raises :class:`~repro.scenarios.schema.ScenarioValidationError` on a
    bad document — the compiler never guesses around schema errors.
    """
    check(doc, source)
    cluster = {**DEFAULT_CLUSTER, **doc.get("cluster", {})}
    run = {**DEFAULT_RUN, **doc.get("run", {})}
    monitor = doc.get("monitor")
    app = doc["app"]
    cfg = ExperimentConfig(
        app=app["name"],
        scheme=doc["scheme"],
        n_checkpoints=run["n_checkpoints"],
        window=float(run["window"]),
        warmup=float(run["warmup"]),
        seed=doc.get("seed", DEFAULT_SEED),
        workers=cluster["workers"],
        spares=cluster["spares"],
        racks=cluster["racks"],
        app_params=dict(app.get("params", {})),
        enable_recovery=run["recovery"],
        monitor_period=float(monitor.get("period", 1.0)) if monitor else 0.0,
        monitor_slos={k: float(v) for k, v in (monitor.get("slos") or {}).items()}
        if monitor
        else {},
    )
    spec = CellSpec(config=cfg, failure_trace=_lower_failures(doc.get("failures")))
    return CompiledScenario(scenario_id=doc["id"], doc=doc, spec=spec)


def check_expectations(doc: dict[str, Any], payload: dict[str, Any]) -> list[str]:
    """Diff the scenario's ``expect`` block against a cell payload.

    Returns human-readable failures (empty = all expectations hold).
    Expectations are outcome *assertions*, not physics: they let a
    checked-in scenario state what it is a regression test for
    ("recovery happened", "at least one checkpoint round completed").
    """
    expect = doc.get("expect")
    if not expect:
        return []
    failures = []
    if "min_rounds" in expect and payload["rounds_completed"] < expect["min_rounds"]:
        failures.append(
            f"expected >= {expect['min_rounds']} checkpoint round(s), "
            f"got {payload['rounds_completed']}")
    if "recovers" in expect:
        recovered = payload["recovery"] is not None
        if recovered != expect["recovers"]:
            failures.append(
                f"expected recovery={expect['recovers']}, "
                f"but the run {'did' if recovered else 'did not'} recover")
    if "min_throughput" in expect and payload["throughput"] < expect["min_throughput"]:
        failures.append(
            f"expected throughput >= {expect['min_throughput']}, "
            f"got {payload['throughput']}")
    for want in expect.get("alerts") or []:
        log = (payload.get("alerts") or {}).get("log") or []
        matching = [
            row
            for row in log
            if row["slo"] == want["slo"]
            and ("subject" not in want or row["subject"] == want["subject"])
        ]
        label = want["slo"] + (f"/{want['subject']}" if "subject" in want else "")
        for action, key in (("fire", "fired"), ("resolve", "resolved")):
            if key not in want:
                continue
            got = sum(1 for row in matching if row["action"] == action)
            if got < want[key]:
                failures.append(
                    f"expected >= {want[key]} {key} alert(s) for {label}, got {got}"
                    + ("" if (payload.get("alerts") or {}).get("log") is not None
                       else " (run was not monitored — add a monitor section)"))
    return failures
