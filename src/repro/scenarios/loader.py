"""Load scenario documents from YAML/JSON files or inline text.

Thin on purpose: parsing lives here, meaning lives in
:mod:`repro.scenarios.schema`.  ``load_path`` / ``load_text`` return the
raw document; callers pass it through :func:`repro.scenarios.schema.check`
(the loaders do not validate, so tooling can load known-bad fixtures).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import yaml

SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")

# Library-metadata files living next to the scenario documents.
NON_SCENARIO_FILES = ("GOLDENS.json",)


class ScenarioParseError(ValueError):
    """The file/text is not parseable YAML/JSON at all."""


def load_text(text: str, source: str = "<text>") -> Any:
    """Parse one scenario document from YAML (a superset of JSON)."""
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioParseError(f"{source}: not valid YAML/JSON: {exc}") from exc


def load_path(path: str | Path) -> Any:
    """Parse one scenario document from a ``.yaml``/``.yml``/``.json`` file."""
    p = Path(path)
    text = p.read_text(encoding="utf-8")
    if p.suffix == ".json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioParseError(f"{p}: not valid JSON: {exc}") from exc
    return load_text(text, source=str(p))


def scenario_paths(directory: str | Path) -> list[Path]:
    """Every scenario file under ``directory``, sorted for determinism."""
    d = Path(directory)
    if not d.is_dir():
        return []
    return sorted(p for p in d.iterdir()
                  if p.suffix in SCENARIO_SUFFIXES and p.is_file()
                  and p.name not in NON_SCENARIO_FILES)
