"""Seeded chaos-campaign runner: ``python -m repro.scenarios.campaign``.

A campaign is (a) every checked-in scenario under ``examples/scenarios/``
and (b) ``--count`` fuzzed scenarios drawn from ``--seed`` (see
:mod:`repro.scenarios.fuzz`), compiled to cells and fanned through the
content-addressed parallel sweep runner.  Per scenario the campaign
checks:

* **digest golden** (examples only) — the run's determinism digest must
  be bit-identical to ``examples/scenarios/GOLDENS.json``;
* **expectations** — the document's ``expect`` block (min rounds,
  recovery happened, throughput floor).

The report is canonical JSON and intentionally excludes anything
machine- or cache-dependent (worker counts, hit/miss stats, wall
time), so the same ``--seed``/``--count`` produce byte-identical
reports on hot and cold caches — CI diffs two back-to-back runs to
enforce exactly that.

Exit codes: 0 = all scenarios passed (always, under ``--warn-only``);
1 = an expectation failed or a golden mismatched; 2 = bad invocation
(unreadable/invalid checked-in scenario).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.harness.digest import canonical_json
from repro.harness.sweep import SweepStats, run_cells
from repro.scenarios.compiler import CompiledScenario, check_expectations, compile_scenario
from repro.scenarios.fuzz import fuzz_documents
from repro.scenarios.goldens import golden_status, load_goldens
from repro.scenarios.loader import ScenarioParseError, load_path, scenario_paths
from repro.scenarios.schema import ScenarioValidationError

REPORT_VERSION = 1

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_BAD_INVOCATION = 2


def default_examples_dir() -> Path:
    return Path(__file__).resolve().parents[3] / "examples" / "scenarios"


def load_examples(directory: Path) -> list[CompiledScenario]:
    """Compile every checked-in scenario; parse/schema errors are fatal."""
    compiled = []
    for path in scenario_paths(directory):
        doc = load_path(path)
        compiled.append(compile_scenario(doc, source=str(path)))
    return compiled


def evaluate(scn: CompiledScenario, payload: dict[str, Any], source: str,
             goldens: dict[str, Any]) -> dict[str, Any]:
    """One deterministic report row for a completed scenario."""
    expect_failures = check_expectations(scn.doc, payload)
    golden = golden_status(goldens, scn.scenario_id, payload["digest"]) \
        if source == "example" else None
    ok = not expect_failures and golden not in ("MISMATCH", "new")
    cp = payload.get("critical_path")
    return {
        "id": scn.scenario_id,
        "source": source,
        "app": scn.spec.config.app,
        "scheme": scn.spec.config.scheme,
        "failures": len(scn.spec.failure_trace or ()),
        "digest": payload["digest"],
        "golden": golden,
        "throughput": payload["throughput"],
        "latency": payload["latency"],
        "rounds_completed": payload["rounds_completed"],
        "critical_path_max": cp["max_seconds"] if cp else None,
        "recovered": payload["recovery"] is not None,
        "expect_failures": expect_failures,
        "status": "pass" if ok else "FAIL",
    }


def build_report(rows: list[dict[str, Any]], seed: int, count: int) -> dict[str, Any]:
    return {
        "report_version": REPORT_VERSION,
        "campaign": {
            "seed": seed,
            "count": count,
            "examples": sorted(r["id"] for r in rows if r["source"] == "example"),
        },
        "scenarios": rows,
        "summary": {
            "total": len(rows),
            "passed": sum(r["status"] == "pass" for r in rows),
            "failed": sum(r["status"] == "FAIL" for r in rows),
            "golden_mismatches": sum(r["golden"] == "MISMATCH" for r in rows),
            "env_skipped": sum(r["golden"] == "env-skip" for r in rows),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.campaign",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--seed", type=int, default=7, help="fuzzer seed (default 7)")
    parser.add_argument("--count", type=int, default=5,
                        help="number of fuzzed scenarios (default 5)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel workers (default: REPRO_JOBS or all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the sweep cache (results are identical either way)")
    parser.add_argument("--cache-dir", default=None, help="sweep cache directory")
    parser.add_argument("--output", default=None,
                        help="write the canonical-JSON campaign report here")
    parser.add_argument("--goldens", default=None,
                        help="digest goldens file (default examples/scenarios/GOLDENS.json)")
    parser.add_argument("--examples-dir", default=None,
                        help="scenario library directory (default examples/scenarios/)")
    parser.add_argument("--skip-examples", action="store_true",
                        help="fuzzed scenarios only")
    parser.add_argument("--warn-only", action="store_true",
                        help="report failures but exit 0 (nightly drift mode)")
    args = parser.parse_args(argv)

    jobs: list[tuple[CompiledScenario, str]] = []
    if not args.skip_examples:
        examples_dir = Path(args.examples_dir) if args.examples_dir else default_examples_dir()
        try:
            jobs += [(scn, "example") for scn in load_examples(examples_dir)]
        except (ScenarioParseError, ScenarioValidationError, OSError) as exc:
            print(exc, file=sys.stderr)
            return EXIT_BAD_INVOCATION
    for doc in fuzz_documents(args.seed, args.count):
        jobs.append((compile_scenario(doc, source=doc["id"]), "fuzz"))
    if not jobs:
        print("nothing to run: no example scenarios and --count 0", file=sys.stderr)
        return EXIT_BAD_INVOCATION

    stats = SweepStats()
    payloads = run_cells(
        [scn.spec for scn, _src in jobs],
        jobs=args.jobs,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        use_cache=not args.no_cache,
        stats=stats,
    )
    goldens = load_goldens(args.goldens)
    rows = [evaluate(scn, payload, src, goldens)
            for (scn, src), payload in zip(jobs, payloads)]
    report = build_report(rows, args.seed, args.count)

    for row in rows:
        golden = f" golden={row['golden']}" if row["golden"] is not None else ""
        print(f"  {row['status']:4s} {row['id']}: {row['app']}/{row['scheme']} "
              f"failures={row['failures']} thr={row['throughput']}"
              f" rounds={row['rounds_completed']}{golden}")
        for problem in row["expect_failures"]:
            print(f"         expect: {problem}")
    s = report["summary"]
    print(f"campaign: {s['passed']}/{s['total']} passed, "
          f"{s['golden_mismatches']} golden mismatch(es), "
          f"{s['env_skipped']} env-skip(s)")
    # Cache traffic goes to stderr: useful when watching, never part of
    # the byte-deterministic report/stdout contract.
    print(f"sweep: {stats.cache_hits} cache hit(s), {stats.executed} executed",
          file=sys.stderr)

    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(canonical_json(report) + "\n", encoding="utf-8")
        print(f"report: {out}", file=sys.stderr)

    if s["failed"] and not args.warn_only:
        return EXIT_FAILED
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
