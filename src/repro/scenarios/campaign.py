"""Seeded chaos-campaign runner: ``python -m repro.scenarios.campaign``.

A campaign is (a) every checked-in scenario under ``examples/scenarios/``
and (b) ``--count`` fuzzed scenarios drawn from ``--seed`` (see
:mod:`repro.scenarios.fuzz`), compiled to cells and fanned through the
content-addressed parallel sweep runner.  Per scenario the campaign
checks:

* **digest golden** (examples only) — the run's determinism digest must
  be bit-identical to ``examples/scenarios/GOLDENS.json``;
* **expectations** — the document's ``expect`` block (min rounds,
  recovery happened, throughput floor).

The report additionally carries an **analytics** block: per-scheme x
per-failure-kind aggregates (counts, failure/recovery tallies, metric
means) with deterministic outlier flagging (median/MAD within per-app
subgroups) — the campaign-level view the scheme arena and adaptive
controller consume.

The report is canonical JSON and intentionally excludes anything
machine- or cache-dependent (worker counts, hit/miss stats, wall
time), so the same ``--seed``/``--count`` produce byte-identical
reports on hot and cold caches — CI diffs two back-to-back runs to
enforce exactly that.

Exit codes: 0 = all scenarios passed (always, under ``--warn-only``);
1 = an expectation failed or a golden mismatched; 2 = bad invocation
(unreadable/invalid checked-in scenario).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.harness.digest import canonical_json
from repro.harness.sweep import SweepStats, run_cells
from repro.scenarios.compiler import CompiledScenario, check_expectations, compile_scenario
from repro.scenarios.fuzz import fuzz_documents
from repro.scenarios.goldens import golden_status, load_goldens
from repro.scenarios.loader import ScenarioParseError, load_path, scenario_paths
from repro.scenarios.schema import ScenarioValidationError

# v2: rows carry failure_kinds; the report carries the per-scheme x
#     per-failure-kind analytics block with deterministic outlier flags.
REPORT_VERSION = 2

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_BAD_INVOCATION = 2


def default_examples_dir() -> Path:
    return Path(__file__).resolve().parents[3] / "examples" / "scenarios"


def load_examples(directory: Path) -> list[CompiledScenario]:
    """Compile every checked-in scenario; parse/schema errors are fatal."""
    compiled = []
    for path in scenario_paths(directory):
        doc = load_path(path)
        compiled.append(compile_scenario(doc, source=str(path)))
    return compiled


def evaluate(scn: CompiledScenario, payload: dict[str, Any], source: str,
             goldens: dict[str, Any]) -> dict[str, Any]:
    """One deterministic report row for a completed scenario."""
    expect_failures = check_expectations(scn.doc, payload)
    golden = golden_status(goldens, scn.scenario_id, payload["digest"]) \
        if source == "example" else None
    ok = not expect_failures and golden not in ("MISMATCH", "new")
    cp = payload.get("critical_path")
    return {
        "id": scn.scenario_id,
        "source": source,
        "app": scn.spec.config.app,
        "scheme": scn.spec.config.scheme,
        "failures": len(scn.spec.failure_trace or ()),
        "failure_kinds": sorted({e.kind for e in scn.spec.failure_trace or ()}),
        "digest": payload["digest"],
        "golden": golden,
        "throughput": payload["throughput"],
        "latency": payload["latency"],
        "rounds_completed": payload["rounds_completed"],
        "critical_path_max": cp["max_seconds"] if cp else None,
        "recovered": payload["recovery"] is not None,
        "expect_failures": expect_failures,
        "status": "pass" if ok else "FAIL",
    }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


def _group_outliers(group_rows: list[dict[str, Any]], metric: str) -> list[dict[str, Any]]:
    """Deterministic outlier flags for one scheme x failure-kind group.

    Compared within per-app subgroups (throughput scales differ wildly
    across apps) of at least 3 rows; a row is flagged when it sits more
    than ``max(3 x MAD, 20% of |median|)`` from its subgroup median.
    Pure arithmetic on the rows — same rows, same flags, every time.
    """
    flagged: list[dict[str, Any]] = []
    by_app: dict[str, list[dict[str, Any]]] = {}
    for row in group_rows:
        if isinstance(row.get(metric), (int, float)):
            by_app.setdefault(row["app"], []).append(row)
    for app in sorted(by_app):
        rows = by_app[app]
        if len(rows) < 3:
            continue
        values = [float(r[metric]) for r in rows]
        median = _median(values)
        mad = _median([abs(v - median) for v in values])
        threshold = max(3.0 * mad, 0.2 * abs(median))
        for row, value in zip(rows, values):
            if abs(value - median) > threshold:
                flagged.append(
                    {
                        "id": row["id"],
                        "app": app,
                        "metric": metric,
                        "value": value,
                        "median": median,
                    }
                )
    flagged.sort(key=lambda f: (f["app"], f["metric"], f["id"]))
    return flagged


def analytics(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-scheme x per-failure-kind aggregates over the campaign rows.

    A scenario with several failure kinds contributes to each kind's
    group (its numbers reflect the whole scenario); failure-free
    scenarios land in kind ``none``.  A pure function of the rows, so
    the analytics block inherits the report's byte-determinism.
    """
    groups: dict[str, list[dict[str, Any]]] = {}
    for row in rows:
        for kind in row.get("failure_kinds") or ["none"]:
            groups.setdefault(f"{row['scheme']}/{kind}", []).append(row)
    out: dict[str, Any] = {}
    for key in sorted(groups):
        members = groups[key]
        out[key] = {
            "n": len(members),
            "failed": sum(r["status"] == "FAIL" for r in members),
            "recovered": sum(bool(r["recovered"]) for r in members),
            "throughput_mean": _mean(
                [float(r["throughput"]) for r in members
                 if isinstance(r.get("throughput"), (int, float))]
            ),
            "latency_mean": _mean(
                [float(r["latency"]) for r in members
                 if isinstance(r.get("latency"), (int, float))]
            ),
            "rounds_mean": _mean([float(r["rounds_completed"]) for r in members]),
            "outliers": _group_outliers(members, "throughput")
            + _group_outliers(members, "latency"),
        }
    return out


def build_report(rows: list[dict[str, Any]], seed: int, count: int) -> dict[str, Any]:
    return {
        "report_version": REPORT_VERSION,
        "campaign": {
            "seed": seed,
            "count": count,
            "examples": sorted(r["id"] for r in rows if r["source"] == "example"),
        },
        "scenarios": rows,
        "analytics": analytics(rows),
        "summary": {
            "total": len(rows),
            "passed": sum(r["status"] == "pass" for r in rows),
            "failed": sum(r["status"] == "FAIL" for r in rows),
            "golden_mismatches": sum(r["golden"] == "MISMATCH" for r in rows),
            "env_skipped": sum(r["golden"] == "env-skip" for r in rows),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.campaign",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--seed", type=int, default=7, help="fuzzer seed (default 7)")
    parser.add_argument("--count", type=int, default=5,
                        help="number of fuzzed scenarios (default 5)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel workers (default: REPRO_JOBS or all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the sweep cache (results are identical either way)")
    parser.add_argument("--cache-dir", default=None, help="sweep cache directory")
    parser.add_argument("--output", default=None,
                        help="write the canonical-JSON campaign report here")
    parser.add_argument("--goldens", default=None,
                        help="digest goldens file (default examples/scenarios/GOLDENS.json)")
    parser.add_argument("--examples-dir", default=None,
                        help="scenario library directory (default examples/scenarios/)")
    parser.add_argument("--skip-examples", action="store_true",
                        help="fuzzed scenarios only")
    parser.add_argument("--warn-only", action="store_true",
                        help="report failures but exit 0 (nightly drift mode)")
    args = parser.parse_args(argv)

    jobs: list[tuple[CompiledScenario, str]] = []
    if not args.skip_examples:
        examples_dir = Path(args.examples_dir) if args.examples_dir else default_examples_dir()
        try:
            jobs += [(scn, "example") for scn in load_examples(examples_dir)]
        except (ScenarioParseError, ScenarioValidationError, OSError) as exc:
            print(exc, file=sys.stderr)
            return EXIT_BAD_INVOCATION
    for doc in fuzz_documents(args.seed, args.count):
        jobs.append((compile_scenario(doc, source=doc["id"]), "fuzz"))
    if not jobs:
        print("nothing to run: no example scenarios and --count 0", file=sys.stderr)
        return EXIT_BAD_INVOCATION

    stats = SweepStats()
    payloads = run_cells(
        [scn.spec for scn, _src in jobs],
        jobs=args.jobs,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        use_cache=not args.no_cache,
        stats=stats,
    )
    goldens = load_goldens(args.goldens)
    rows = [evaluate(scn, payload, src, goldens)
            for (scn, src), payload in zip(jobs, payloads)]
    report = build_report(rows, args.seed, args.count)

    for row in rows:
        golden = f" golden={row['golden']}" if row["golden"] is not None else ""
        print(f"  {row['status']:4s} {row['id']}: {row['app']}/{row['scheme']} "
              f"failures={row['failures']} thr={row['throughput']}"
              f" rounds={row['rounds_completed']}{golden}")
        for problem in row["expect_failures"]:
            print(f"         expect: {problem}")
    print("analytics (scheme/failure-kind):")
    for key, group in report["analytics"].items():
        thr = f"{group['throughput_mean']:.1f}" if group["throughput_mean"] is not None else "-"
        print(f"  {key}: n={group['n']} failed={group['failed']} "
              f"recovered={group['recovered']} thr_mean={thr} "
              f"rounds_mean={group['rounds_mean']:.2f}")
        for o in group["outliers"]:
            print(f"         outlier: {o['id']} {o['metric']}={o['value']:g} "
                  f"(subgroup median {o['median']:g})")
    s = report["summary"]
    print(f"campaign: {s['passed']}/{s['total']} passed, "
          f"{s['golden_mismatches']} golden mismatch(es), "
          f"{s['env_skipped']} env-skip(s)")
    # Cache traffic goes to stderr: useful when watching, never part of
    # the byte-deterministic report/stdout contract.
    print(f"sweep: {stats.cache_hits} cache hit(s), {stats.executed} executed",
          file=sys.stderr)

    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(canonical_json(report) + "\n", encoding="utf-8")
        print(f"report: {out}", file=sys.stderr)

    if s["failed"] and not args.warn_only:
        return EXIT_FAILED
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
