"""Declarative scenario DSL + seeded chaos campaigns.

One scenario document (YAML/JSON) describes a complete reliability
experiment — app + topology, cluster, schedule, checkpoint scheme and a
failure trace — and compiles onto the existing sweep harness, so every
scenario inherits caching, parallelism, tracing and digest determinism.

Layers (each its own module):

* :mod:`~repro.scenarios.schema` — document shape + actionable validation
* :mod:`~repro.scenarios.loader` — YAML/JSON parsing
* :mod:`~repro.scenarios.compiler` — document → :class:`CellSpec` lowering
* :mod:`~repro.scenarios.fuzz` — seeded valid-by-construction fuzzer
* :mod:`~repro.scenarios.goldens` — per-scenario digest goldens
* :mod:`~repro.scenarios.campaign` — the CI campaign runner
* :mod:`~repro.scenarios.cli` — ``validate`` / ``run`` / ``goldens``
"""

from repro.scenarios.compiler import CompiledScenario, check_expectations, compile_scenario
from repro.scenarios.fuzz import fuzz_documents
from repro.scenarios.loader import ScenarioParseError, load_path, load_text, scenario_paths
from repro.scenarios.schema import (
    FAILURE_FIELDS,
    SCENARIO_SCHEMES,
    TOP_LEVEL_FIELDS,
    VERSION,
    ScenarioValidationError,
    SchemaError,
    check,
    validate,
)

__all__ = [
    "CompiledScenario",
    "FAILURE_FIELDS",
    "SCENARIO_SCHEMES",
    "ScenarioParseError",
    "ScenarioValidationError",
    "SchemaError",
    "TOP_LEVEL_FIELDS",
    "VERSION",
    "check",
    "check_expectations",
    "compile_scenario",
    "fuzz_documents",
    "load_path",
    "load_text",
    "scenario_paths",
    "validate",
]
