"""Failure injection into the simulated cluster.

Turns the statistical failure model into concrete fail-stop events on a
:class:`~repro.cluster.topology.DataCenter`: single-node failures
(ooops/disk/memory) and rack-correlated bursts (the large-scale failures
Meteor Shower is built for).  Plans are sampled up front (deterministic
given the RNG stream) so experiments can be replayed and compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.topology import DataCenter
from repro.simulation.core import Environment, Interrupt


@dataclass(frozen=True)
class PlannedFailure:
    """One failure event scheduled for injection."""

    at: float  # seconds of simulated time
    kind: str  # "node" | "rack"
    target: str  # node id or rack id
    cause: str = "injected"


@dataclass
class FailurePlan:
    events: list[PlannedFailure] = field(default_factory=list)

    def sorted_events(self) -> list[PlannedFailure]:
        return sorted(self.events, key=lambda e: (e.at, e.target))

    @property
    def burst_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "rack")

    @property
    def single_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "node")


def sample_plan(
    rng: np.random.Generator,
    dc: DataCenter,
    horizon: float,
    single_rate_per_node_year: float = 1.05,
    rack_burst_rate_per_year: float = 25.0,
) -> FailurePlan:
    """Sample a failure plan over ``horizon`` seconds of simulated time.

    Default rates follow Table I's dominant rows: ~1 independent failure
    per node-year (ooops + disk + memory) and ~25 rack-scale bursts per
    year across the cluster (rack failures + unsteadiness, scaled to the
    experiment cluster's rack count).
    """
    from repro.failures.model import SECONDS_PER_YEAR

    plan = FailurePlan()
    workers = dc.workers
    n_singles = rng.poisson(
        single_rate_per_node_year * len(workers) * horizon / SECONDS_PER_YEAR
    )
    for _ in range(int(n_singles)):
        node = workers[int(rng.integers(len(workers)))]
        plan.events.append(
            PlannedFailure(at=float(rng.uniform(0, horizon)), kind="node",
                           target=node.node_id, cause="single")
        )
    n_bursts = rng.poisson(rack_burst_rate_per_year * horizon / SECONDS_PER_YEAR)
    for _ in range(int(n_bursts)):
        rack = dc.racks[int(rng.integers(len(dc.racks)))]
        plan.events.append(
            PlannedFailure(at=float(rng.uniform(0, horizon)), kind="rack",
                           target=rack.rack_id, cause="rack-burst")
        )
    return plan


class FailureInjector:
    """Executes a :class:`FailurePlan` against a live simulation."""

    def __init__(self, env: Environment, dc: DataCenter, plan: FailurePlan):
        self.env = env
        self.dc = dc
        self.plan = plan
        self.injected: list[PlannedFailure] = []

    def start(self) -> None:
        self.env.process(self._run(), label="failure-injector")

    def _run(self):
        try:
            for event in self.plan.sorted_events():
                delay = event.at - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                self._inject(event)
        except Interrupt:
            return

    def _inject(self, event: PlannedFailure) -> None:
        trace = self.env.trace
        if event.kind == "node":
            try:
                node = self.dc.node(event.target)
            except KeyError:
                return
            if node.alive:
                node.fail(event.cause)
                self.injected.append(event)
                if self.env.telemetry.enabled:
                    self.env.telemetry.counter(
                        "ms_failures_injected_total", kind="node"
                    ).inc()
                if trace.enabled:
                    trace.emit(
                        "failure.inject",
                        t=self.env.now,
                        subject=event.target,
                        kind="node",
                        cause=event.cause,
                    )
        elif event.kind == "rack":
            for rack in self.dc.racks:
                if rack.rack_id == event.target:
                    victims = rack.fail_all(event.cause)
                    if victims:
                        self.injected.append(event)
                        if self.env.telemetry.enabled:
                            self.env.telemetry.counter(
                                "ms_failures_injected_total", kind="rack"
                            ).inc()
                        if trace.enabled:
                            trace.emit(
                                "failure.inject",
                                t=self.env.now,
                                subject=event.target,
                                kind="rack",
                                cause=event.cause,
                                victims=len(victims),
                            )
                    break
        else:  # pragma: no cover - plan validation
            raise ValueError(f"unknown failure kind {event.kind!r}")
