"""Failure injection into the simulated cluster.

Turns the statistical failure model into concrete events on a
:class:`~repro.cluster.topology.DataCenter`.  Four event kinds (the
authoritative list is :data:`FAILURE_KINDS`; the scenario schema and the
SCN001 lint rule pin themselves to it):

* ``node`` — fail-stop of one node (ooops/disk/memory causes);
* ``rack`` — rack-correlated burst: every node in the rack fail-stops
  (the large-scale failures Meteor Shower is built for);
* ``partition`` — network partition around one rack: every channel
  crossing the rack boundary has its latency multiplied by ``factor``
  for ``duration`` seconds (nodes stay alive; tokens and data stall);
* ``straggler`` — gray failure of one node: its NIC and disk bandwidth
  are divided by ``factor`` for ``duration`` seconds, so transfers
  through it take ``factor``× longer.

Degradations (``partition``/``straggler``) compose multiplicatively, so
overlapping events restore cleanly in any order; ``duration <= 0`` means
the degradation lasts for the rest of the run.  Plans are sampled (or
declared — see :mod:`repro.scenarios`) up front and are deterministic
given the RNG stream, so experiments can be replayed and compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.topology import DataCenter
from repro.simulation.core import Environment, Interrupt

#: Event kinds the injector can execute.  The scenario schema
#: (``repro.scenarios.schema``) and DESIGN.md document exactly this
#: vocabulary; SCN001 checks all three stay in sync.
FAILURE_KINDS = ("node", "rack", "partition", "straggler")

#: Default degradation magnitudes (used by the scenario compiler when a
#: document omits ``factor``).
DEFAULT_PARTITION_FACTOR = 200.0
DEFAULT_STRAGGLER_FACTOR = 10.0


@dataclass(frozen=True)
class PlannedFailure:
    """One failure event scheduled for injection.

    ``duration``/``factor`` only apply to the degradation kinds
    (``partition``/``straggler``); fail-stop kinds ignore them.
    """

    at: float  # seconds of simulated time
    kind: str  # one of FAILURE_KINDS
    target: str  # node id or rack id
    cause: str = "injected"
    duration: float = 0.0  # 0 = permanent (degradation kinds only)
    factor: float = 1.0  # slowdown multiplier >= 1 (degradation kinds only)


@dataclass
class FailurePlan:
    events: list[PlannedFailure] = field(default_factory=list)

    def sorted_events(self) -> list[PlannedFailure]:
        return sorted(self.events, key=lambda e: (e.at, e.target, e.kind))

    @property
    def burst_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "rack")

    @property
    def single_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "node")

    @property
    def degradation_count(self) -> int:
        return sum(1 for e in self.events if e.kind in ("partition", "straggler"))


def sample_plan(
    rng: np.random.Generator,
    dc: DataCenter,
    horizon: float,
    single_rate_per_node_year: float = 1.05,
    rack_burst_rate_per_year: float = 25.0,
) -> FailurePlan:
    """Sample a failure plan over ``horizon`` seconds of simulated time.

    Default rates follow Table I's dominant rows: ~1 independent failure
    per node-year (ooops + disk + memory) and ~25 rack-scale bursts per
    year across the cluster (rack failures + unsteadiness, scaled to the
    experiment cluster's rack count).
    """
    from repro.failures.model import SECONDS_PER_YEAR

    plan = FailurePlan()
    workers = dc.workers
    n_singles = rng.poisson(
        single_rate_per_node_year * len(workers) * horizon / SECONDS_PER_YEAR
    )
    for _ in range(int(n_singles)):
        node = workers[int(rng.integers(len(workers)))]
        plan.events.append(
            PlannedFailure(at=float(rng.uniform(0, horizon)), kind="node",
                           target=node.node_id, cause="single")
        )
    n_bursts = rng.poisson(rack_burst_rate_per_year * horizon / SECONDS_PER_YEAR)
    for _ in range(int(n_bursts)):
        rack = dc.racks[int(rng.integers(len(dc.racks)))]
        plan.events.append(
            PlannedFailure(at=float(rng.uniform(0, horizon)), kind="rack",
                           target=rack.rack_id, cause="rack-burst")
        )
    return plan


class FailureInjector:
    """Executes a :class:`FailurePlan` against a live simulation."""

    def __init__(self, env: Environment, dc: DataCenter, plan: FailurePlan):
        self.env = env
        self.dc = dc
        self.plan = plan
        self.injected: list[PlannedFailure] = []
        self.restored: list[PlannedFailure] = []

    def start(self) -> None:
        self.env.process(self._run(), label="failure-injector")

    def _run(self):
        try:
            for event in self.plan.sorted_events():
                delay = event.at - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                self._inject(event)
        except Interrupt:
            return

    # -- bookkeeping -------------------------------------------------------
    def _record(self, event: PlannedFailure, **data) -> None:
        self.injected.append(event)
        if self.env.telemetry.enabled:
            self.env.telemetry.counter(
                "ms_failures_injected_total", kind=event.kind
            ).inc()
        if self.env.trace.enabled:
            self.env.trace.emit(
                "failure.inject",
                t=self.env.now,
                subject=event.target,
                kind=event.kind,
                cause=event.cause,
                **data,
            )

    def _schedule_restore(self, event: PlannedFailure, undo) -> None:
        """Run ``undo`` after ``event.duration`` (never, if <= 0)."""
        if event.duration <= 0:
            return

        def restorer():
            try:
                yield self.env.timeout(event.duration)
            except Interrupt:
                return
            undo()
            self.restored.append(event)
            if self.env.trace.enabled:
                self.env.trace.emit(
                    "failure.restore",
                    t=self.env.now,
                    subject=event.target,
                    kind=event.kind,
                    cause=event.cause,
                )

        self.env.process(restorer(), label=f"failure-restore:{event.target}")

    # -- per-kind mechanics --------------------------------------------------
    def _inject(self, event: PlannedFailure) -> None:
        if event.kind == "node":
            self._inject_node(event)
        elif event.kind == "rack":
            self._inject_rack(event)
        elif event.kind == "partition":
            self._inject_partition(event)
        elif event.kind == "straggler":
            self._inject_straggler(event)
        else:  # pragma: no cover - plan validation
            raise ValueError(f"unknown failure kind {event.kind!r}")

    def _inject_node(self, event: PlannedFailure) -> None:
        try:
            node = self.dc.node(event.target)
        except KeyError:
            return
        if node.alive:
            node.fail(event.cause)
            self._record(event)

    def _inject_rack(self, event: PlannedFailure) -> None:
        for rack in self.dc.racks:
            if rack.rack_id == event.target:
                victims = rack.fail_all(event.cause)
                if victims:
                    self._record(event, victims=len(victims))
                break

    def _inject_partition(self, event: PlannedFailure) -> None:
        """Slow every channel crossing the target rack's boundary.

        Only channels that exist at the injection instant participate;
        channels re-wired later (e.g. by recovery onto spares) see the
        healed network — the partition is a property of the links, not
        of the nodes.
        """
        factor = max(1.0, event.factor)
        affected = [
            chan
            for chan in self.dc.channels()
            if not chan.closed
            and (chan.src.rack == event.target) != (chan.dst.rack == event.target)
        ]
        if not affected:
            return
        for chan in affected:
            chan.latency *= factor
        self._record(event, channels=len(affected), factor=factor)

        def undo():
            for chan in affected:
                chan.latency /= factor

        self._schedule_restore(event, undo)

    def _inject_straggler(self, event: PlannedFailure) -> None:
        """Gray failure: the node's NIC and disk run ``factor``× slower."""
        try:
            node = self.dc.node(event.target)
        except KeyError:
            return
        if not node.alive:
            return
        factor = max(1.0, event.factor)
        node.nic_out.bandwidth /= factor
        node.disk.bandwidth /= factor
        self._record(event, factor=factor)

        def undo():
            node.nic_out.bandwidth *= factor
            node.disk.bandwidth *= factor

        self._schedule_restore(event, undo)
