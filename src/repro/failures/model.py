"""Per-cause failure-rate model and the AFN100 computation.

AFN100 = "the average number of node failures observed across 100 nodes
running through a year", broken down by cause (§II-B1).  The paper's
worked example for Google's network row:

    one network rewiring (5% of nodes down), twenty rack failures (80
    nodes disconnected each), five rack unsteadiness events (80 nodes,
    50% packet loss), fifteen router failures/reloads and eight network
    maintenances (conservatively 10% of nodes each) ->
    7640 node-failures / 2400 nodes * 100 > 300.

Each :class:`FailureSource` describes one cause as a yearly event rate
plus a per-event victim-count model; :class:`ClusterFailureModel`
samples a year (or computes the expectation in closed form) and emits
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOURS_PER_YEAR = 8760.0
SECONDS_PER_YEAR = HOURS_PER_YEAR * 3600.0


@dataclass(frozen=True)
class FailureSource:
    """One cause of node failures.

    ``events_per_year`` — cluster-wide event count (Poisson mean); for
    per-node causes use ``per_node=True`` and the rate is per node-year.
    ``victims`` — nodes affected by one event: an absolute count, or a
    fraction of the cluster when ``victims_fraction`` is set.
    ``correlated`` — whether one event takes down multiple nodes at once
    (a *burst*).  ``counts_in_table`` — benign/correctable events (ECC
    single-bit errors, planned restarts) are excluded from Table I but
    participate in the burst-share statistic.
    """

    name: str
    category: str
    events_per_year: float
    victims: int = 1
    victims_fraction: float | None = None
    per_node: bool = False
    correlated: bool = False
    counts_in_table: bool = True
    recovery_hours: tuple[float, float] = (1.0, 6.0)

    def victim_count(self, cluster_nodes: int) -> float:
        if self.victims_fraction is not None:
            return self.victims_fraction * cluster_nodes
        return float(self.victims)

    def expected_node_failures(self, cluster_nodes: int) -> float:
        events = self.events_per_year * (cluster_nodes if self.per_node else 1.0)
        return events * self.victim_count(cluster_nodes)


@dataclass
class AFN100Row:
    category: str
    afn100: float
    burst_events: int = 0
    single_events: int = 0

    @property
    def total_events(self) -> int:
        return self.burst_events + self.single_events


# --- Google data center (2400+ nodes, 30+ racks x 80 blades) --------------------
# Network row: exactly the paper's worked example.
GOOGLE_SOURCES = [
    FailureSource("network-rewiring", "Network", 1, victims_fraction=0.05, correlated=True),
    FailureSource("rack-failure", "Network", 20, victims=80, correlated=True,
                  recovery_hours=(1.0, 6.0)),
    FailureSource("rack-unsteadiness", "Network", 5, victims=80, correlated=True),
    FailureSource("router-failure", "Network", 15, victims_fraction=0.10, correlated=True),
    FailureSource("network-maintenance", "Network", 8, victims_fraction=0.10, correlated=True),
    # Environment: power outages, overheating, maintenance -> 100~150 AFN100.
    FailureSource("power-outage", "Environment", 2, victims_fraction=0.50, correlated=True),
    FailureSource("overheating", "Environment", 1, victims_fraction=0.10, correlated=True),
    FailureSource("dc-maintenance", "Environment", 4, victims_fraction=0.03, correlated=True),
    # Ooops: software, operator mistakes, unknown -> ~100 AFN100, independent.
    FailureSource("ooops", "Ooops", 1.0, per_node=True, correlated=False),
    # Disk: only uncorrectable failures count (1.7~8.6 AFN100).
    FailureSource("disk-uncorrectable", "Disk", 0.04, per_node=True, correlated=False),
    # Memory: uncorrectable DRAM errors (~1.3 AFN100).
    FailureSource("memory-uncorrectable", "Memory", 0.013, per_node=True, correlated=False),
    # Benign per-node restarts: excluded from Table I (correctable /
    # planned), but they dominate the raw event count, which is why only
    # ~10% of failure *events* belong to correlated bursts [11].
    FailureSource("benign-restart", "Restart", 0.2, per_node=True,
                  correlated=False, counts_in_table=False),
]

# --- NCSA Abe cluster: InfiniBand + RAID6 lower the network/storage rows ------
ABE_SOURCES = [
    FailureSource("network-event", "Network", 20, victims_fraction=0.10, correlated=True),
    FailureSource("rack-failure", "Network", 8, victims=64, correlated=True),
    FailureSource("ooops", "Ooops", 0.4, per_node=True, correlated=False),
    FailureSource("disk-uncorrectable", "Disk", 0.04, per_node=True, correlated=False),
]


@dataclass
class ClusterProfile:
    name: str
    nodes: int
    racks: int
    sources: list[FailureSource]


GOOGLE_DC = ClusterProfile(name="Google's Data Center", nodes=2400, racks=30,
                           sources=GOOGLE_SOURCES)
ABE_CLUSTER = ClusterProfile(name="Abe Cluster", nodes=1200, racks=19,
                             sources=ABE_SOURCES)


class ClusterFailureModel:
    """Samples failure events for a cluster profile and derives Table I."""

    def __init__(self, profile: ClusterProfile, rng: np.random.Generator | None = None):
        self.profile = profile
        self.rng = rng or np.random.default_rng(0)

    # -- closed-form expectation ----------------------------------------------------
    def expected_afn100(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for src in self.profile.sources:
            if not src.counts_in_table:
                continue
            exp = src.expected_node_failures(self.profile.nodes)
            out[src.category] = out.get(src.category, 0.0) + exp
        return {
            cat: total / self.profile.nodes * 100.0 for cat, total in out.items()
        }

    # -- Monte-Carlo year --------------------------------------------------------------
    def sample_year(self) -> tuple[dict[str, AFN100Row], dict[str, float]]:
        """Simulate one year; returns (per-category rows, burst statistics)."""
        rows: dict[str, AFN100Row] = {}
        burst_failures = 0
        single_failures = 0
        burst_events = 0
        single_events = 0
        for src in self.profile.sources:
            mean_events = src.events_per_year * (
                self.profile.nodes if src.per_node else 1.0
            )
            n_events = int(self.rng.poisson(mean_events))
            victims_per_event = src.victim_count(self.profile.nodes)
            node_failures = 0
            for _ in range(n_events):
                if src.correlated:
                    v = max(1, int(round(victims_per_event)))
                    burst_failures += v
                    burst_events += 1
                else:
                    v = 1
                    single_failures += 1
                    single_events += 1
                node_failures += v
            if src.counts_in_table:
                row = rows.setdefault(src.category, AFN100Row(src.category, 0.0))
                row.afn100 += node_failures / self.profile.nodes * 100.0
                if src.correlated:
                    row.burst_events += n_events
                else:
                    row.single_events += n_events
        total_events = burst_events + single_events
        total_failures = burst_failures + single_failures
        stats = {
            "burst_event_share": burst_events / total_events if total_events else 0.0,
            "burst_failure_share": (
                burst_failures / total_failures if total_failures else 0.0
            ),
            "total_events": float(total_events),
            "total_node_failures": float(total_failures),
        }
        return rows, stats

    def table_rows(self, samples: int = 5) -> dict[str, tuple[float, float]]:
        """(min, max) AFN100 per category across Monte-Carlo years."""
        acc: dict[str, list[float]] = {}
        for _ in range(samples):
            rows, _stats = self.sample_year()
            for cat, row in rows.items():
                acc.setdefault(cat, []).append(row.afn100)
        return {cat: (min(v), max(v)) for cat, v in acc.items()}
