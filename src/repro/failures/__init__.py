"""Commodity data-center failure model (paper §II-B1, Table I).

Regenerates the AFN100 table from per-cause event processes calibrated
to the paper's published Google / NCSA-Abe statistics, and injects
fail-stop failures (single-node and rack-correlated bursts) into the
simulated cluster for the fault-tolerance experiments.
"""

from repro.failures.model import (
    FailureSource,
    ClusterFailureModel,
    GOOGLE_DC,
    ABE_CLUSTER,
    AFN100Row,
)
from repro.failures.injector import (
    DEFAULT_PARTITION_FACTOR,
    DEFAULT_STRAGGLER_FACTOR,
    FAILURE_KINDS,
    FailureInjector,
    FailurePlan,
    PlannedFailure,
    sample_plan,
)

__all__ = [
    "FailureSource",
    "ClusterFailureModel",
    "GOOGLE_DC",
    "ABE_CLUSTER",
    "AFN100Row",
    "FAILURE_KINDS",
    "DEFAULT_PARTITION_FACTOR",
    "DEFAULT_STRAGGLER_FACTOR",
    "FailureInjector",
    "FailurePlan",
    "PlannedFailure",
    "sample_plan",
]
