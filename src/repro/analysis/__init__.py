"""repro-lint: AST-based invariant checks for the reproduction.

The headline claim of this repo — byte-identical traces, telemetry
snapshots and bench artifacts for a given seed — rests on coding
invariants that ordinary linters do not know about: model code must
never read the wall clock, every random draw must come from the seeded
``repro.simulation.rng`` streams, export paths must not iterate
unordered collections, simulation processes must only yield engine
events, checkpoint schemes must implement their hook protocol, and the
metric/trace name inventory must stay in sync with DESIGN.md.

``python -m repro.analysis`` walks ``src/``, ``benchmarks/`` and
``examples/`` once with a shared visitor and dispatches each AST node to
the registered rules; cross-file rules (schema sync, protocol checks)
accumulate state and report during a finalize phase.  See
``python -m repro.analysis --list-rules`` for the rule inventory.
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.engine import AnalysisConfig, Project, run_analysis
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules, get_rule, register

# Importing the rule modules registers their rules.
from repro.analysis import (  # noqa: F401  (registration side effect)
    determinism,
    flow,
    inspect_rule,
    monitor_rule,
    protocol,
    schema,
    scenarios,
)

__all__ = [
    "AnalysisConfig",
    "Baseline",
    "Finding",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "load_baseline",
    "register",
    "run_analysis",
    "write_baseline",
]
