"""Finding records and their baseline fingerprints."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any


class Severity:
    """Finding severities (plain strings so JSON output stays trivial)."""

    ERROR = "error"
    WARNING = "warning"

    ORDER = {ERROR: 0, WARNING: 1}

    @classmethod
    def valid(cls, value: str) -> bool:
        return value in cls.ORDER


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is POSIX-relative to the analysis root so findings (and
    their fingerprints) are machine-independent.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline suppression
        file: a finding keeps its fingerprint when unrelated edits shift
        it to a different line, but changes when it moves files or its
        message (which embeds the offending symbol) changes."""
        raw = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.severity}: {self.message}"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Canonical report order: location first, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
