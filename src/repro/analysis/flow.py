"""Interprocedural taint rules: nondeterminism must not *reach* exports.

The per-file determinism rules (DET001/DET002/DET005) catch a source at
the line it is written; these rules catch the flows the PR-3 linter was
blind to — a tainted helper called (transitively) from an export path or
a checkpoint-scheme hook.  Both run in the finalize phase against the
call graph the engine builds (:mod:`repro.analysis.callgraph`).

Suppression works at either end of a flow: an inline
``# repro-lint: disable=DET004`` (or ``PUR001``) on the *source* line
sanctions every chain through that seed (configuration reads like
``REPRO_FULL`` are the canonical case), while a disable on the reported
sink/hook definition line silences that one endpoint.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, FunctionNode, TaintSeed
from repro.analysis.findings import Severity
from repro.analysis.nondet import TAINT_KINDS
from repro.analysis.protocol import GENERATOR_HOOKS, PLAIN_HOOKS, SCHEME_ROOTS
from repro.analysis.registry import Rule, register

# Direct wall-clock / global-RNG / unsorted-enumeration use inside the
# reported function itself is already a DET001/DET002/DET005 finding;
# the flow rules only add value for the transitive case (and for the
# source kinds with no per-file rule: environ, id()/hash()).
_DIRECT_OWNED = frozenset({"wall-clock", "global-rng", "fs-order"})

_STATE_METHODS = frozenset({"snapshot", "restore"})


def _chain_text(graph: CallGraph, chain: list[str], seed: TaintSeed) -> str:
    """``a -> b -> c`` with the seed's location appended."""
    hops = " -> ".join(_short(q) for q in chain)
    holder = graph.nodes[chain[-1]]
    return f"{hops} ({seed.detail} at {holder.relpath}:{seed.lineno})"


def _short(qualname: str) -> str:
    """Drop the module prefix: ``repro.core.base.Cls.meth`` -> ``Cls.meth``."""
    parts = qualname.split(".")
    for i, part in enumerate(parts):
        if part[:1].isupper():
            return ".".join(parts[i:])
    return parts[-1]


def _seed_filter(project, rule_id: str):
    """Vetoes seeds whose source line carries an inline disable for us."""

    def seed_ok(node: FunctionNode, seed: TaintSeed) -> bool:
        supp = project.suppressions_at(node.relpath).get(seed.lineno, set())
        return rule_id not in supp and "all" not in supp

    return seed_ok


@register
class TransitiveExportTaintRule(Rule):
    """DET004 — no nondeterminism may flow into an export sink."""

    id = "DET004"
    title = "transitive nondeterminism must not reach an export sink"
    rationale = (
        "the per-file rules see one function at a time; a helper that "
        "reads the wall clock, os.environ, id()/hash() or an unsorted "
        "directory listing taints every trace event, telemetry metric "
        "and serialised artifact downstream of it — the call graph is "
        "walked so the leak is reported at the sink even when the source "
        "hides two calls away"
    )
    suppress_hint = (
        "add `# repro-lint: disable=DET004` on the source line to sanction "
        "every chain through it (config reads), or on the sink definition "
        "line to accept that one endpoint"
    )
    severity = Severity.ERROR
    node_types = ()
    dirs = ("src",)

    def finalize(self, project) -> None:
        graph = project.callgraph
        if graph is None:
            return
        seed_ok = _seed_filter(project, self.id)
        for qual in sorted(graph.nodes):
            node = graph.nodes[qual]
            if not node.sinks or not node.relpath.startswith("src/"):
                continue
            for seed, chain in graph.taint_paths(
                qual, skip_direct=_DIRECT_OWNED, seed_ok=seed_ok
            ):
                kind = TAINT_KINDS.get(seed.kind, seed.kind)
                sinks = "/".join(sorted(node.sinks))
                project.report(
                    self,
                    path=node.relpath,
                    line=node.lineno,
                    col=1,
                    message=(
                        f"{kind} can reach export sink `{_short(qual)}` "
                        f"({sinks}): {_chain_text(graph, chain, seed)}"
                    ),
                )


@register
class PureHookRule(Rule):
    """PUR001 — scheme hooks and snapshot/restore paths stay pure."""

    id = "PUR001"
    title = "scheme hooks and operator snapshot/restore reach no nondeterminism"
    rationale = (
        "every control decision a checkpoint scheme makes must be "
        "replayable from simulation state alone (the adaptive-controller "
        "and chaos-replay roadmaps inherit this); a hook — or a "
        "snapshot/restore path — that transitively reads the wall clock, "
        "os.environ or an unsorted directory makes recovery and replay "
        "diverge from the recorded run"
    )
    suppress_hint = (
        "add `# repro-lint: disable=PUR001` on the source line (sanctions "
        "all chains through it) or on the hook definition line"
    )
    severity = Severity.ERROR
    node_types = ()
    dirs = ("src",)

    _HOOKS = GENERATOR_HOOKS | PLAIN_HOOKS

    def finalize(self, project) -> None:
        graph = project.callgraph
        if graph is None:
            return
        seed_ok = _seed_filter(project, self.id)
        for qual in sorted(graph.nodes):
            node = graph.nodes[qual]
            if node.cls is None or not node.relpath.startswith("src/"):
                continue
            if not self._is_guarded(graph, node):
                continue
            for seed, chain in graph.taint_paths(
                qual, skip_direct=_DIRECT_OWNED, seed_ok=seed_ok
            ):
                kind = TAINT_KINDS.get(seed.kind, seed.kind)
                what = (
                    "snapshot/restore path"
                    if node.name in _STATE_METHODS
                    else "scheme hook"
                )
                project.report(
                    self,
                    path=node.relpath,
                    line=node.lineno,
                    col=1,
                    message=(
                        f"{what} `{_short(qual)}` reaches a {kind}: "
                        f"{_chain_text(graph, chain, seed)} — checkpoint "
                        "decisions and state serialisation must derive from "
                        "simulation state only"
                    ),
                )

    def _is_guarded(self, graph: CallGraph, node: FunctionNode) -> bool:
        assert node.cls is not None
        lineage = graph.ancestors(node.cls) | {node.cls}
        if node.name in self._HOOKS and lineage & SCHEME_ROOTS:
            return True
        return node.name in _STATE_METHODS and "Operator" in lineage


__all__ = ["PureHookRule", "TransitiveExportTaintRule"]
