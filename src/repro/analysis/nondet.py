"""The catalogue of nondeterminism sources, shared by every layer.

Leaf module (no intra-package imports): the per-file determinism rules
(DET001/DET002/DET005), the interprocedural taint pass (DET004/PUR001)
and the ``--list-rules`` docs all draw from the same frozen sets, so a
source added here is picked up by the direct rules *and* the transitive
flow analysis in one edit.
"""

from __future__ import annotations

# Canonical dotted names whose *call* reads the wall clock (or stalls on
# it): any of these in model code couples simulated behaviour to real
# time and breaks same-seed reproducibility.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

# numpy.random module-level functions that draw from (or reseed) the
# process-global legacy RandomState.  Constructors of independent
# generators (default_rng, SeedSequence, Generator, PCG64, ...) are the
# supported path and are deliberately absent.
NUMPY_GLOBAL_RNG = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "exponential",
        "binomial",
        "beta",
        "gamma",
    }
)

# Module-level functions that enumerate the filesystem in an order the
# OS does not define (directory order is filesystem- and history-
# dependent).  Safe only when the result is immediately sorted.
FS_ENUM_CALLS = frozenset(
    {
        "os.listdir",
        "os.scandir",
        "os.walk",
        "glob.glob",
        "glob.iglob",
    }
)

# Method names with the same hazard on pathlib.Path receivers (and
# anything Path-like).  Matched by attribute name: a ``.glob(...)`` on a
# non-path receiver in this codebase is still an enumeration.
FS_ENUM_METHODS = frozenset({"iterdir", "glob", "rglob"})

# Builtins whose value depends on the process (CPython heap addresses,
# PYTHONHASHSEED).  Harmless as in-process dict keys; nondeterministic
# the moment the value (or an order derived from it) reaches an artifact.
PROCESS_SENSITIVE_BUILTINS = frozenset({"id", "hash"})

# Human-readable labels for the taint kinds the flow analysis reports.
TAINT_KINDS = {
    "wall-clock": "wall-clock read",
    "global-rng": "process-global RNG draw",
    "environ": "environment-variable read",
    "fs-order": "unsorted filesystem enumeration",
    "process-id": "process-sensitive builtin (id()/hash())",
}

__all__ = [
    "FS_ENUM_CALLS",
    "FS_ENUM_METHODS",
    "NUMPY_GLOBAL_RNG",
    "PROCESS_SENSITIVE_BUILTINS",
    "TAINT_KINDS",
    "WALL_CLOCK_CALLS",
]
