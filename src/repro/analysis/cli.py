"""The repro-lint command line.

``python -m repro.analysis [--strict] [--format json|text|github]
[--baseline FILE] [--write-baseline FILE] [--include-dirs DIRS]
[--call-graph FILE] [--list-rules] [DIRS...]``

Exit codes: 0 — clean (errors gate by default; ``--strict`` gates
warnings too); 1 — at least one gating finding survived baseline and
inline suppression; 2 — usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import baseline_from_findings, load_baseline, write_baseline
from repro.analysis.engine import DEFAULT_DIRS, AnalysisConfig, run_analysis
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import all_rules

REPORT_VERSION = 1


def list_rules_text() -> str:
    """The rule inventory, rendered with the same table renderer as the
    telemetry report CLI so tooling output stays visually consistent."""
    from repro.harness.report import format_table

    rules = all_rules()
    table = format_table(
        ["rule", "severity", "scope", "invariant"],
        [[cls.id, cls.severity, ",".join(cls.dirs), cls.title] for cls in rules],
        title="repro-lint rules",
    )
    sections = [table]
    for cls in rules:
        sections.append(
            f"{cls.id}: {cls.title}\n"
            f"  why: {cls.rationale}\n"
            f"  suppress: {cls.suppress_hint}"
        )
    return "\n\n".join(sections)


def report_dict(
    project,
    findings: list[Finding],
    suppressed: int,
    strict: bool,
    stale_baseline: list[dict] | None = None,
) -> dict:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return {
        "version": REPORT_VERSION,
        "strict": strict,
        "dirs": list(project.config.dirs),
        "extra_dirs": list(project.config.extra_dirs),
        "files_scanned": project.files_scanned,
        "rules": [cls.id for cls in all_rules()],
        "findings": [f.as_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "suppressed_baseline": suppressed,
        "suppressed_inline": project.inline_suppressed,
        "stale_baseline": stale_baseline or [],
    }


def _github_escape(text: str) -> str:
    """Escape message data for a workflow command (single line)."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(findings: list[Finding]) -> list[str]:
    """GitHub Actions workflow-command annotations, one per finding."""
    lines = []
    for f in findings:
        level = "error" if f.severity == Severity.ERROR else "warning"
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col},"
            f"title={f.rule}::{_github_escape(f.message)}"
        )
    return lines


def _gating(findings: list[Finding], strict: bool) -> list[Finding]:
    if strict:
        return findings
    return [f for f in findings if f.severity == Severity.ERROR]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for determinism, protocol and "
        "instrumentation discipline (see --list-rules).",
    )
    parser.add_argument(
        "dirs",
        nargs="*",
        default=None,
        help=f"top-level directories to scan (default: {' '.join(DEFAULT_DIRS)})",
    )
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    parser.add_argument(
        "--strict", action="store_true", help="warnings gate the exit code too"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (github = Actions ::error/::warning annotations)",
    )
    parser.add_argument("--baseline", default=None, help="baseline suppression file")
    parser.add_argument(
        "--include-dirs",
        default=None,
        metavar="DIRS",
        help="comma-separated extra top-level directories to lint (opt-in "
        "scope extension, e.g. tests; inventory-sync rules stay scoped)",
    )
    parser.add_argument(
        "--call-graph",
        default=None,
        metavar="FILE",
        help="export the resolved call graph (.dot = Graphviz, else JSON)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (independent of --format)",
    )
    parser.add_argument("--design", default=None, help="DESIGN.md path (schema rules)")
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule inventory and exit"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    if args.list_rules:
        print(list_rules_text())
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: root {root} is not a directory", file=sys.stderr)
        return 2
    config = AnalysisConfig(
        root=root,
        dirs=tuple(args.dirs) if args.dirs else DEFAULT_DIRS,
        design_path=Path(args.design) if args.design else None,
        rule_ids=tuple(args.rules.split(",")) if args.rules else None,
        extra_dirs=tuple(
            d for d in (args.include_dirs or "").split(",") if d
        ),
    )
    project = run_analysis(config)
    all_findings = project.findings
    findings = all_findings

    if args.call_graph and project.callgraph is not None:
        out = Path(args.call_graph)
        text = (
            project.callgraph.to_dot()
            if out.suffix == ".dot"
            else project.callgraph.to_json()
        )
        out.write_text(text, encoding="utf-8")

    suppressed = 0
    stale: list[dict] = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = baseline.apply(findings)
        stale = baseline.stale_entries()

    if args.write_baseline:
        # Rebuild from the *full* finding set so fingerprints whose
        # violation no longer exists are pruned, not carried forward.
        write_baseline(baseline_from_findings(all_findings), args.write_baseline)
        pruned = f", {len(stale)} stale fingerprint(s) pruned" if stale else ""
        print(
            f"baseline with {len(all_findings)} finding(s) written to "
            f"{args.write_baseline}{pruned}"
        )
        return 0

    doc = report_dict(project, findings, suppressed, args.strict, stale)
    if args.format == "json":
        rendered = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    else:
        if args.format == "github":
            lines = render_github(findings)
        else:
            lines = [f.render() for f in findings]
        gating = _gating(findings, args.strict)
        for entry in stale:
            lines.append(
                "repro-lint: stale baseline entry "
                f"{entry['fingerprint']} ({entry.get('rule', '?')} "
                f"{entry.get('path', '?')}) — rerun --write-baseline to prune"
            )
        lines.append(
            f"repro-lint: {project.files_scanned} files, "
            f"{len(findings)} finding(s) ({len(gating)} gating), "
            f"{suppressed} baselined, {project.inline_suppressed} inline-suppressed"
            + (f", {len(stale)} stale baseline entry(ies)" if stale else "")
        )
        rendered = "\n".join(lines) + "\n"
    sys.stdout.write(rendered)
    if args.output:
        json_doc = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        Path(args.output).write_text(json_doc, encoding="utf-8")
    return 1 if _gating(findings, args.strict) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
