"""MON001 — the monitoring vocabulary stays in sync with DESIGN.md.

The monitoring plane has two enumerated vocabularies consumers key on:
the SLO kinds (``SLO_KINDS`` in ``repro.monitor.slo`` — scenario
``monitor.slos`` mappings, ``expect.alerts`` assertions and the
``ms_alerts_*`` metric labels all use them verbatim) and the health
states (``HEALTH_STATES`` in ``repro.monitor.health`` — every timeline
row's ``from``/``to``).  DESIGN.md's "Live monitoring & SLOs" section
documents both in small tables; MON001 diffs code against doc in both
directions, the monitoring twin of TEL001/TRC001/INS001.

All checks are AST/text-only (nothing is imported), so the rule works
on broken trees too.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.engine import ModuleContext, const_str
from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register

_BACKTICK_RE = re.compile(r"`([^`]+)`")
_WORD_RE = re.compile(r"^[a-z][a-z0-9-]*$")

# (variable name, path suffix its authoritative declaration lives under)
_TRACKED = {
    "SLO_KINDS": "monitor/slo.py",
    "HEALTH_STATES": "monitor/health.py",
}

# DESIGN.md subsection headers (### ...) -> which vocabulary its table
# documents.  Both live under the "## Live monitoring & SLOs" section.
_SUBSECTIONS = {
    "slo kinds": "SLO_KINDS",
    "health states": "HEALTH_STATES",
}


def parse_monitor_schema(text: str) -> dict[str, dict[str, int]]:
    """``{"SLO_KINDS": {token: lineno}, "HEALTH_STATES": {...}}`` from
    the DESIGN.md "Live monitoring & SLOs" section.

    Only the first table cell of each row is read (later cells are
    prose), and only under the matching ``###`` subsection, so SLO
    bounds or state descriptions never count as vocabulary.
    """
    documented: dict[str, dict[str, int]] = {name: {} for name in _TRACKED}
    in_section = False
    current: str | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("## ") and not line.startswith("### "):
            in_section = "live monitoring" in line.lower()
            current = None
            continue
        if not in_section:
            continue
        if line.startswith("### "):
            header = line[4:].strip().lower()
            current = next(
                (var for key, var in _SUBSECTIONS.items() if key in header), None
            )
            continue
        if current is None or not line.lstrip().startswith("|"):
            continue
        cells = line.split("|")
        first = cells[1] if len(cells) > 1 else ""
        for tok in _BACKTICK_RE.findall(first):
            if _WORD_RE.match(tok):
                documented[current].setdefault(tok, lineno)
    return documented


@dataclass
class _Decl:
    relpath: str
    lineno: int
    lines: dict[str, int]  # token -> lineno


@register
class MonitorSchemaRule(Rule):
    """MON001 — SLO kinds / health states match the DESIGN.md tables."""

    id = "MON001"
    extra_dirs_ok = False  # inventory sync vs DESIGN.md: test doubles would poison it
    title = "monitoring vocabularies stay in sync with DESIGN.md"
    rationale = (
        "scenario documents, expect.alerts assertions and the ms_alerts_* "
        "metric labels consume SLO kinds verbatim, and health timelines "
        "are diffed by state name; a vocabulary entry missing from the "
        "DESIGN.md tables is an untracked contract change, and a "
        "documented-but-dead entry means authors write scenarios against "
        "states that can never occur"
    )
    severity = Severity.ERROR
    node_types = (ast.Assign,)

    def __init__(self) -> None:
        self._decls: dict[str, _Decl] = {}

    def visit(self, ctx: ModuleContext, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not isinstance(target, ast.Name) or target.id not in _TRACKED:
            return
        if not ctx.relpath.replace("\\", "/").endswith(_TRACKED[target.id]):
            return
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            ctx.report(
                self,
                node,
                f"`{target.id}` must be a literal tuple/list of string "
                "constants so the vocabulary stays statically checkable",
            )
            return
        lines: dict[str, int] = {}
        for elt in node.value.elts:
            token = const_str(elt)
            if token is None:
                ctx.report(
                    self,
                    elt,
                    f"non-literal entry in `{target.id}` — vocabulary entries "
                    "must be string constants",
                )
                continue
            lines[token] = elt.lineno
        if target.id not in self._decls:
            self._decls[target.id] = _Decl(ctx.relpath, node.lineno, lines)

    def finalize(self, project) -> None:
        text = project.design_text()
        if not self._decls:
            return
        if text is None:
            decl = min(self._decls.values(), key=lambda d: d.relpath)
            project.report(
                self,
                path=decl.relpath,
                line=decl.lineno,
                col=1,
                message=(
                    "monitoring vocabularies are declared but DESIGN.md "
                    "(live monitoring & SLOs) was not found"
                ),
                severity=Severity.WARNING,
            )
            return
        documented = parse_monitor_schema(text)
        design = project.design_relpath()
        for var in sorted(self._decls):
            decl = self._decls[var]
            table = documented.get(var, {})
            for token in sorted(set(decl.lines) - set(table)):
                project.report(
                    self,
                    path=decl.relpath,
                    line=decl.lines[token],
                    col=1,
                    message=(
                        f"`{token}` is declared in {var} but not documented in "
                        "the DESIGN.md live-monitoring tables"
                    ),
                )
            for token in sorted(set(table) - set(decl.lines)):
                project.report(
                    self,
                    path=design,
                    line=table[token],
                    col=1,
                    message=(
                        f"`{token}` is documented in DESIGN.md but absent from "
                        f"{var} ({decl.relpath})"
                    ),
                )


__all__ = ["MonitorSchemaRule", "parse_monitor_schema"]
