"""Shared AST helpers for the analysis rules and the call-graph builder.

Leaf module: imports nothing from the rest of ``repro.analysis`` so both
:mod:`repro.analysis.engine` and :mod:`repro.analysis.callgraph` can use
it without a cycle.  The engine re-exports the helpers under their
historical names for rule modules and tests.
"""

from __future__ import annotations

import ast
import re

# `# repro-lint: disable=DET001` or `# repro-lint: disable=DET001,TEL001`
# or `# repro-lint: disable=all` — suppresses matching rules on that line.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Per-line inline suppression sets (1-based line numbers)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[lineno] = {tok.strip() for tok in m.group(1).split(",") if tok.strip()}
    return out


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted origin, for every import binding.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import monotonic as mono`` -> ``{"mono": "time.monotonic"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                local = a.asname or a.name.split(".", 1)[0]
                aliases[local] = a.name if a.asname else a.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom):
            mod = ("." * node.level) + (node.module or "")
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{mod}.{a.name}" if mod else a.name
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_tail(func: ast.AST) -> str | None:
    """For a call ``<recv>.method(...)``: the last component of ``recv``.

    ``env.telemetry.counter`` -> ``"telemetry"``; ``telem.counter`` ->
    ``"telem"``; anything without a Name/Attribute receiver -> None.
    """
    if not isinstance(func, ast.Attribute):
        return None
    recv = func.value
    if isinstance(recv, ast.Attribute):
        return recv.attr
    if isinstance(recv, ast.Name):
        return recv.id
    return None


def const_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def canonical_name(imports: dict[str, str], node: ast.AST) -> str | None:
    """Dotted name of ``node`` with its head import-resolved:
    ``np.random.seed`` -> ``numpy.random.seed``."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


__all__ = [
    "canonical_name",
    "const_str",
    "dotted_name",
    "import_aliases",
    "parse_suppressions",
    "receiver_tail",
]
