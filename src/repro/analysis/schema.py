"""Schema-sync rules: metric and trace name inventories vs DESIGN.md.

TEL001 extracts every ``env.telemetry.counter/gauge/histogram("name",
…)`` call site and diffs the names against the DESIGN.md "Metric
schema" table, both directions.  TRC001 does the same for
``*.emit("kind", …)`` trace emissions against the authoritative
``KINDS`` tuple in ``repro.observability.tracer`` *and* the DESIGN.md
"Trace schema" table.  Either direction of drift silently invalidates
the documented observability contract the experiments (and downstream
dashboards) rely on — exactly the hook-discipline failure mode Khaos
attributes checkpoint corruption to.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import ast

from repro.analysis.engine import ModuleContext, const_str, receiver_tail
from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register

# Receiver tails that identify the metric registry / tracer handle at a
# call site (``env.telemetry.counter``, ``telem.histogram``,
# ``self._telem.counter``, ``self.registry.gauge`` ...).
TELEMETRY_RECEIVERS = frozenset({"telemetry", "telem", "_telem", "registry", "_registry"})
TRACER_RECEIVERS = frozenset({"trace", "tracer", "_trace", "_tracer"})

METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

_METRIC_NAME_RE = re.compile(r"`(ms_[a-z0-9_]+)`")
_BACKTICK_RE = re.compile(r"`([^`]+)`")
_KIND_SUFFIX_RE = re.compile(r"^[a-z_]+(\.[a-z_]+)*$")


@dataclass
class Site:
    relpath: str
    line: int
    col: int


def parse_metric_schema(text: str) -> dict[str, int]:
    """``{metric_name: design_lineno}`` from the "Metric schema" table.

    Only the first table cell of each row is read, so backticked label
    names and module paths in later cells never count as metrics.
    """
    documented: dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("## "):
            in_section = "metric schema" in line.lower()
            continue
        if not in_section or not line.lstrip().startswith("|"):
            continue
        cells = line.split("|")
        first = cells[1] if len(cells) > 1 else ""
        for m in _METRIC_NAME_RE.finditer(first):
            documented.setdefault(m.group(1), lineno)
    return documented


def parse_trace_schema(text: str) -> tuple[dict[str, int], set[str]]:
    """``({kind: design_lineno}, dynamic_prefixes)`` from the "Trace
    schema" table.

    Each row is ``| `prefix.` | `event`, `event` ... |``; a kind is
    prefix + event.  Backticked tokens that are not lowercase dotted
    words (e.g. ``MetricsHub.record_event``) are prose, and a prefix row
    with no valid event tokens declares a dynamic namespace (kinds under
    it are forwarded verbatim and cannot be enumerated).
    """
    kinds: dict[str, int] = {}
    dynamic: set[str] = set()
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("## "):
            in_section = "trace schema" in line.lower()
            continue
        if not in_section or not line.lstrip().startswith("|"):
            continue
        cells = line.split("|")
        if len(cells) < 3:
            continue
        prefix_m = _BACKTICK_RE.search(cells[1])
        if prefix_m is None or not prefix_m.group(1).endswith("."):
            continue
        prefix = prefix_m.group(1)
        events = [
            tok
            for tok in _BACKTICK_RE.findall(cells[2])
            if _KIND_SUFFIX_RE.match(tok)
        ]
        if not events:
            dynamic.add(prefix)
            continue
        for tok in events:
            kinds.setdefault(prefix + tok, lineno)
    return kinds, dynamic


@register
class MetricSchemaRule(Rule):
    """TEL001 — telemetry names match the DESIGN.md metric schema."""

    id = "TEL001"
    extra_dirs_ok = False  # inventory sync vs DESIGN.md: test doubles would poison it
    title = "metric names stay in sync with the DESIGN.md metric schema"
    rationale = (
        "the snapshot/Prometheus exports are consumed by name; an "
        "undocumented emission is an untracked schema change and a "
        "documented-but-dead name means dashboards and regression "
        "checks silently read zeros"
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def __init__(self) -> None:
        self._emitted: dict[str, list[Site]] = {}

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in METRIC_FACTORIES:
            return
        if receiver_tail(func) not in TELEMETRY_RECEIVERS:
            return
        if not node.args:
            return
        name = const_str(node.args[0])
        if name is None:
            ctx.report(
                self,
                node,
                f"dynamic metric name `{ast.unparse(node.args[0])}` — metric names "
                "must be string literals so the schema inventory stays checkable",
            )
            return
        self._emitted.setdefault(name, []).append(
            Site(ctx.relpath, node.lineno, node.col_offset + 1)
        )

    def finalize(self, project) -> None:
        if not self._emitted and project.design_text() is None:
            return
        text = project.design_text()
        if text is None:
            # emissions exist but there is no schema to check against
            site = min(
                (s for sites in self._emitted.values() for s in sites),
                key=lambda s: (s.relpath, s.line),
            )
            project.report(
                self,
                path=site.relpath,
                line=site.line,
                col=site.col,
                message="telemetry is emitted but DESIGN.md (metric schema) was not found",
                severity=Severity.WARNING,
            )
            return
        documented = parse_metric_schema(text)
        design = project.design_relpath()
        for name in sorted(set(self._emitted) - set(documented)):
            site = min(self._emitted[name], key=lambda s: (s.relpath, s.line))
            project.report(
                self,
                path=site.relpath,
                line=site.line,
                col=site.col,
                message=(
                    f"metric `{name}` is emitted but not documented in the "
                    "DESIGN.md metric-schema table"
                ),
            )
        for name in sorted(set(documented) - set(self._emitted)):
            project.report(
                self,
                path=design,
                line=documented[name],
                col=1,
                message=f"metric `{name}` is documented in DESIGN.md but never emitted",
            )


@dataclass
class _KindsDecl:
    relpath: str
    lines: dict[str, int] = field(default_factory=dict)  # kind -> lineno
    lineno: int = 0


@register
class TraceSchemaRule(Rule):
    """TRC001 — trace kinds match KINDS and the DESIGN.md trace schema."""

    id = "TRC001"
    extra_dirs_ok = False  # inventory sync vs tracer.KINDS/DESIGN.md
    title = "trace kinds stay in sync with tracer.KINDS and DESIGN.md"
    rationale = (
        "KINDS is the authoritative trace vocabulary; an emitted kind "
        "missing from it is schema drift the exporter consumers cannot "
        "see coming, a declared-but-dead kind is documentation rot, and "
        "the DESIGN.md table must mirror KINDS in both directions"
    )
    severity = Severity.ERROR
    node_types = (ast.Call, ast.Assign)

    def __init__(self) -> None:
        self._emitted: dict[str, list[Site]] = {}
        self._dynamic_sites: dict[str, list[Site]] = {}  # constant prefix -> sites
        self._kinds: _KindsDecl | None = None

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            self._visit_assign(ctx, node)
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "emit":
            return
        if receiver_tail(func) not in TRACER_RECEIVERS:
            return
        if not node.args:
            return
        arg = node.args[0]
        kind = const_str(arg)
        site = Site(ctx.relpath, node.lineno, node.col_offset + 1)
        if kind is not None:
            self._emitted.setdefault(kind, []).append(site)
            return
        prefix = self._leading_prefix(arg)
        if prefix is not None:
            self._dynamic_sites.setdefault(prefix, []).append(site)
        else:
            ctx.report(
                self,
                node,
                f"dynamic trace kind `{ast.unparse(arg)}` without a constant "
                "dotted prefix — kinds must be statically enumerable",
            )

    @staticmethod
    def _leading_prefix(arg: ast.AST) -> str | None:
        """The constant ``"prefix." + ...`` head of a dynamic kind."""
        head: str | None = None
        if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add):
            head = const_str(arg.left)
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            head = const_str(arg.values[0])
        if head is not None and "." in head:
            return head[: head.rindex(".") + 1]
        return None

    def _visit_assign(self, ctx: ModuleContext, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "KINDS"):
            return
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return
        decl = _KindsDecl(relpath=ctx.relpath, lineno=node.lineno)
        for elt in node.value.elts:
            kind = const_str(elt)
            if kind is not None:
                decl.lines[kind] = elt.lineno
        if self._kinds is None:
            self._kinds = decl

    def finalize(self, project) -> None:
        text = project.design_text()
        documented: dict[str, int] = {}
        dynamic_prefixes: set[str] = set()
        if text is not None:
            documented, dynamic_prefixes = parse_trace_schema(text)
        design = project.design_relpath()
        declared = self._kinds.lines if self._kinds is not None else None

        def is_dynamic(kind: str) -> bool:
            return any(kind.startswith(p) for p in dynamic_prefixes)

        if declared is not None:
            for kind in sorted(set(self._emitted) - set(declared)):
                site = min(self._emitted[kind], key=lambda s: (s.relpath, s.line))
                project.report(
                    self,
                    path=site.relpath,
                    line=site.line,
                    col=site.col,
                    message=f"trace kind `{kind}` is emitted but not declared in KINDS",
                )
            for kind in sorted(set(declared) - set(self._emitted)):
                if is_dynamic(kind):
                    continue
                project.report(
                    self,
                    path=self._kinds.relpath,
                    line=declared[kind],
                    col=1,
                    message=f"trace kind `{kind}` is declared in KINDS but never emitted",
                )
        authoritative = declared if declared is not None else {
            k: 0 for k in self._emitted
        }
        if text is None or (not documented and not authoritative):
            return
        auth_path = self._kinds.relpath if self._kinds is not None else None
        for kind in sorted(set(authoritative) - set(documented)):
            if is_dynamic(kind):
                continue
            if auth_path is not None:
                path, line = auth_path, authoritative[kind]
            else:
                site = min(self._emitted[kind], key=lambda s: (s.relpath, s.line))
                path, line = site.relpath, site.line
            project.report(
                self,
                path=path,
                line=line,
                col=1,
                message=(
                    f"trace kind `{kind}` is not documented in the DESIGN.md "
                    "trace-schema table"
                ),
            )
        for kind in sorted(set(documented) - set(authoritative)):
            project.report(
                self,
                path=design,
                line=documented[kind],
                col=1,
                message=(
                    f"trace kind `{kind}` is documented in DESIGN.md but "
                    + ("not declared in KINDS" if declared is not None else "never emitted")
                ),
            )
        # A dynamic emission under a prefix DESIGN.md does not declare
        # dynamic is drift too.
        for prefix in sorted(set(self._dynamic_sites) - dynamic_prefixes):
            site = min(self._dynamic_sites[prefix], key=lambda s: (s.relpath, s.line))
            project.report(
                self,
                path=site.relpath,
                line=site.line,
                col=site.col,
                message=(
                    f"dynamic trace kinds under prefix `{prefix}` are emitted but "
                    "DESIGN.md does not declare that namespace as dynamic"
                ),
            )


@register
class ProfilingSpanKindsRule(Rule):
    """TRC002 — profiling SPAN_KINDS stays a subset of tracer.KINDS."""

    id = "TRC002"
    extra_dirs_ok = False  # inventory sync vs tracer.KINDS
    title = "profiling span kinds exist in the tracer KINDS vocabulary"
    rationale = (
        "the span builder reconstructs timelines by matching event kinds "
        "verbatim; a SPAN_KINDS entry absent from KINDS can never appear "
        "in a trace, so the corresponding span silently never forms and "
        "critical paths are quietly wrong"
    )
    severity = Severity.ERROR
    node_types = (ast.Assign,)

    def __init__(self) -> None:
        self._span_kinds: list[tuple[str, int, str]] = []  # (kind, lineno, relpath)
        self._kinds: set[str] | None = None

    def visit(self, ctx: ModuleContext, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            return
        if target.id not in ("KINDS", "SPAN_KINDS"):
            return
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return
        if target.id == "KINDS":
            if self._kinds is None:
                self._kinds = {
                    k for k in (const_str(e) for e in node.value.elts) if k is not None
                }
            return
        for elt in node.value.elts:
            kind = const_str(elt)
            if kind is not None:
                self._span_kinds.append((kind, elt.lineno, ctx.relpath))

    def finalize(self, project) -> None:
        if not self._span_kinds or self._kinds is None:
            return
        for kind, lineno, relpath in self._span_kinds:
            if kind not in self._kinds:
                project.report(
                    self,
                    path=relpath,
                    line=lineno,
                    col=1,
                    message=(
                        f"profiling span kind `{kind}` has no matching entry in "
                        "tracer.KINDS — the span can never be reconstructed"
                    ),
                )


__all__ = [
    "MetricSchemaRule",
    "ProfilingSpanKindsRule",
    "TraceSchemaRule",
    "parse_metric_schema",
    "parse_trace_schema",
]
