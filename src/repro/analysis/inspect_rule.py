"""INS001 — the phase-span vocabulary stays in sync everywhere.

Three components enumerate the checkpoint phase spans that run-bundle
diffs attribute time to: the profiler's ``PHASES``
(``repro.profiling.spans``, the producer), the bundle format's
``PHASE_SPANS`` (``repro.inspect.bundle``, the consumer), and the
DESIGN.md "Run bundles & diffing" schema table (the contract).  A phase
added to the profiler but not the bundle silently vanishes from every
diff; a phase only the bundle knows about renders as an eternal zero —
both are attribution rot, the inspect-layer twin of the schema rot
TEL001/TRC001/SCN001 guard against.

All checks are AST/text-only (nothing is imported), so the rule works
on broken trees too.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.engine import ModuleContext, const_str
from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register

_BACKTICK_RE = re.compile(r"`([^`]+)`")
_PHASE_WORD_RE = re.compile(r"^[a-z][a-z-]*$")

# (variable name, path suffix the declaration must live under)
_TRACKED = {
    "PHASES": "profiling/spans.py",
    "PHASE_SPANS": "inspect/bundle.py",
}


def parse_bundle_phases(text: str) -> dict[str, int]:
    """``{phase: lineno}`` from the DESIGN.md "Run bundles & diffing"
    table's ``phases.json`` row — the backticked dash-word tokens in the
    row's later cells enumerate the phase vocabulary, mirroring how the
    scenario table's ``failures`` row enumerates failure kinds."""
    phases: dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("## "):
            in_section = "run bundles" in line.lower()
            continue
        if not in_section or not line.lstrip().startswith("|"):
            continue
        cells = line.split("|")
        first = cells[1] if len(cells) > 1 else ""
        m = _BACKTICK_RE.search(first)
        if m is None or m.group(1) != "phases.json":
            continue
        for cell in cells[2:]:
            for tok in _BACKTICK_RE.findall(cell):
                if _PHASE_WORD_RE.match(tok):
                    phases.setdefault(tok, lineno)
    return phases


@dataclass
class _TupleDecl:
    relpath: str
    lineno: int
    order: list[str] = field(default_factory=list)
    items: dict[str, int] = field(default_factory=dict)  # value -> lineno


@register
class InspectPhaseRule(Rule):
    """INS001 — phase-span vocabulary sync across profiler/bundle/docs."""

    id = "INS001"
    extra_dirs_ok = False  # vocabulary sync vs profiling.spans/DESIGN.md
    title = "inspect phase spans stay in sync with profiling and DESIGN.md"
    rationale = (
        "profiling.spans.PHASES (the producer), inspect.bundle.PHASE_SPANS "
        "(the consumer) and the DESIGN.md run-bundle table each enumerate "
        "the checkpoint phase vocabulary; drift means diffs silently drop "
        "a phase's seconds or attribute to a phase that never occurs"
    )
    severity = Severity.ERROR
    node_types = (ast.Assign,)

    def __init__(self) -> None:
        self._tuples: dict[str, _TupleDecl] = {}

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        suffix = _TRACKED.get(name)
        if suffix is None or not ctx.relpath.replace("\\", "/").endswith(suffix):
            return
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return
        decl = _TupleDecl(relpath=ctx.relpath, lineno=node.lineno)
        for elt in node.value.elts:
            value = const_str(elt)
            if value is not None:
                decl.order.append(value)
                decl.items[value] = elt.lineno
        self._tuples.setdefault(name, decl)

    def finalize(self, project) -> None:
        producer = self._tuples.get("PHASES")
        consumer = self._tuples.get("PHASE_SPANS")
        if consumer is None:
            return  # no inspect layer in this tree

        # 1. profiler PHASES <-> bundle PHASE_SPANS, both directions.
        if producer is not None:
            for phase in sorted(set(producer.items) - set(consumer.items)):
                project.report(
                    self,
                    path=consumer.relpath,
                    line=consumer.lineno,
                    col=1,
                    message=(
                        f"phase `{phase}` exists in profiling.spans.PHASES but not "
                        "in PHASE_SPANS — its seconds silently vanish from every "
                        "bundle diff"
                    ),
                )
            for phase in sorted(set(consumer.items) - set(producer.items)):
                project.report(
                    self,
                    path=consumer.relpath,
                    line=consumer.items[phase],
                    col=1,
                    message=(
                        f"phase `{phase}` is declared in PHASE_SPANS but the profiler "
                        "never emits it — diffs would attribute to a phase that "
                        "cannot occur"
                    ),
                )
            if (
                set(producer.items) == set(consumer.items)
                and producer.order != consumer.order
            ):
                project.report(
                    self,
                    path=consumer.relpath,
                    line=consumer.lineno,
                    col=1,
                    message=(
                        "PHASE_SPANS lists the same phases as profiling.spans.PHASES "
                        "but in a different order — attribution tables would not "
                        "line up across the two layers"
                    ),
                )

        # 2. DESIGN.md run-bundle table <-> PHASE_SPANS, both directions.
        text = project.design_text()
        if text is None:
            return
        documented = parse_bundle_phases(text)
        design = project.design_relpath()
        if not documented:
            project.report(
                self,
                path=consumer.relpath,
                line=consumer.lineno,
                col=1,
                message=(
                    "the inspect layer exists but the DESIGN.md run-bundle table "
                    "has no `phases.json` row enumerating the phase vocabulary"
                ),
                severity=Severity.WARNING,
            )
            return
        for phase in sorted(set(consumer.items) - set(documented)):
            project.report(
                self,
                path=consumer.relpath,
                line=consumer.items[phase],
                col=1,
                message=(
                    f"phase `{phase}` is in PHASE_SPANS but undocumented in the "
                    "DESIGN.md run-bundle schema table"
                ),
            )
        for phase in sorted(set(documented) - set(consumer.items)):
            project.report(
                self,
                path=design,
                line=documented[phase],
                col=1,
                message=(
                    f"phase `{phase}` is documented in the DESIGN.md run-bundle "
                    "table but not declared in PHASE_SPANS"
                ),
            )


__all__ = ["InspectPhaseRule", "parse_bundle_phases"]
