"""Baseline suppression: accept today's findings, gate tomorrow's.

The baseline file maps finding fingerprints (rule + path + message —
line-independent, see :meth:`repro.analysis.findings.Finding.fingerprint`)
to an occurrence count plus human-readable context.  ``--baseline FILE``
subtracts baselined findings from the report; ``--write-baseline FILE``
records the current findings.  The file is JSON with sorted keys so
regenerating it produces a minimal diff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Suppression counts keyed by fingerprint."""

    counts: dict[str, int] = field(default_factory=dict)
    context: dict[str, dict] = field(default_factory=dict)
    #: fingerprints whose recorded count exceeded the matching findings on
    #: the last :meth:`apply` — suppressions for violations that no longer
    #: exist (fingerprint -> unused count).  Hygiene: they should be
    #: pruned, or they will silently mask a future regression.
    stale: dict[str, int] = field(default_factory=dict)

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """Partition into (unsuppressed, n_suppressed).

        Each fingerprint suppresses at most its recorded count, so a
        *new* duplicate of a baselined finding still surfaces.  Leftover
        counts are recorded in :attr:`stale`.
        """
        remaining = dict(self.counts)
        kept: list[Finding] = []
        suppressed = 0
        for finding in findings:
            fp = finding.fingerprint()
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                suppressed += 1
            else:
                kept.append(finding)
        self.stale = {fp: n for fp, n in sorted(remaining.items()) if n > 0}
        return kept, suppressed

    def stale_entries(self) -> list[dict]:
        """The :attr:`stale` map joined with its recorded context, in
        fingerprint order, ready for the JSON report."""
        entries = []
        for fp in sorted(self.stale):
            entry = dict(self.context.get(fp, {}))
            entry["fingerprint"] = fp
            entry["unused_count"] = self.stale[fp]
            entries.append(entry)
        return entries

    def as_dict(self) -> dict:
        suppressions = {}
        for fp in sorted(self.counts):
            entry = dict(self.context.get(fp, {}))
            entry["count"] = self.counts[fp]
            suppressions[fp] = entry
        return {"version": BASELINE_VERSION, "suppressions": suppressions}


def baseline_from_findings(findings: list[Finding]) -> Baseline:
    baseline = Baseline()
    for finding in findings:
        fp = finding.fingerprint()
        baseline.counts[fp] = baseline.counts.get(fp, 0) + 1
        baseline.context.setdefault(
            fp,
            {"rule": finding.rule, "path": finding.path, "message": finding.message},
        )
    return baseline


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline()
    doc = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file {p} (want version {BASELINE_VERSION})")
    baseline = Baseline()
    for fp, entry in (doc.get("suppressions") or {}).items():
        if isinstance(entry, dict):
            count = int(entry.get("count", 1))
            context = {k: v for k, v in entry.items() if k != "count"}
        else:  # bare count form
            count = int(entry)
            context = {}
        if count > 0:
            baseline.counts[fp] = count
            if context:
                baseline.context[fp] = context
    return baseline


def write_baseline(baseline: Baseline, path: str | Path) -> None:
    text = json.dumps(baseline.as_dict(), indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")
