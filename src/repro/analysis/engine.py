"""The analysis engine: one walk over the tree, rules ride along.

``run_analysis`` parses every ``*.py`` file under the configured
top-level directories exactly once, precomputes the per-module facts
most rules need (import alias table, inline-suppression comments), then
walks the AST a single time dispatching each node to the rules that
subscribed to its type.  Cross-file rules accumulate state during the
walk and report from their ``finalize`` hook, which may also attach
findings to non-Python files (e.g. DESIGN.md schema drift).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.astutil import (  # noqa: F401  (re-exported for rules/tests)
    canonical_name,
    const_str,
    dotted_name,
    import_aliases,
    parse_suppressions,
    receiver_tail,
)
from repro.analysis.callgraph import CallGraph, CallGraphBuilder
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.registry import Rule, all_rules

DEFAULT_DIRS = ("src", "benchmarks", "examples")


@dataclass
class AnalysisConfig:
    """Where to look and what to check."""

    root: Path
    dirs: tuple[str, ...] = DEFAULT_DIRS
    design_path: Path | None = None  # default: <root>/DESIGN.md
    rule_ids: tuple[str, ...] | None = None  # None = every registered rule
    # Opt-in extra top-level directories (``--include-dirs``, e.g. tests):
    # scanned like the defaults, and rules without a path_globs scope and
    # with ``extra_dirs_ok`` apply there even though the dirs are absent
    # from their declared ``dirs``.
    extra_dirs: tuple[str, ...] = ()

    def resolved_design_path(self) -> Path:
        return self.design_path if self.design_path is not None else self.root / "DESIGN.md"


class ModuleContext:
    """Everything a rule sees about the module currently being walked."""

    def __init__(self, project: "Project", relpath: str, tree: ast.Module, source: str):
        self.project = project
        self.relpath = relpath
        self.tree = tree
        self.source = source
        self.imports = import_aliases(tree)
        self.suppressions = parse_suppressions(source)

    def canonical(self, node: ast.AST) -> str | None:
        """Dotted name of ``node`` with its head import-resolved:
        ``np.random.seed`` -> ``numpy.random.seed``."""
        return canonical_name(self.imports, node)

    def report(self, rule: Rule, node: ast.AST, message: str, severity: str | None = None) -> None:
        self.project.report(
            rule,
            path=self.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            message=message,
            severity=severity,
        )


class Project:
    """Holds the run's findings and the cross-module fact store."""

    def __init__(self, config: AnalysisConfig):
        self.config = config
        self.root = Path(config.root)
        self.findings: list[Finding] = []
        self.inline_suppressed = 0
        self.files_scanned = 0
        # The project-wide call graph (populated after the walk, before
        # finalize) — the substrate of the interprocedural rules and the
        # CLI's --call-graph export.
        self.callgraph: CallGraph | None = None
        # relpath -> per-line suppression sets, so finalize-phase reports
        # honour inline disables at the recorded call sites too.
        self._suppressions: dict[str, dict[int, set[str]]] = {}

    def register_suppressions(self, relpath: str, supp: dict[int, set[str]]) -> None:
        self._suppressions[relpath] = supp

    def suppressions_at(self, relpath: str) -> dict[int, set[str]]:
        """Per-line inline-suppression sets for one scanned file (taint
        seeds honour a disable at the *source* line, not only the sink)."""
        return self._suppressions.get(relpath, {})

    def report(
        self,
        rule: Rule,
        path: str,
        line: int,
        col: int,
        message: str,
        severity: str | None = None,
    ) -> None:
        line_supp = self._suppressions.get(path, {}).get(line, set())
        if rule.id in line_supp or "all" in line_supp:
            self.inline_suppressed += 1
            return
        self.findings.append(
            Finding(
                rule=rule.id,
                severity=severity or rule.severity,
                path=path,
                line=line,
                col=col,
                message=message,
            )
        )

    def design_text(self) -> str | None:
        path = self.config.resolved_design_path()
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None

    def design_relpath(self) -> str:
        path = self.config.resolved_design_path()
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()


class _InternalErrors(Rule):
    """Pseudo-rule for files the engine could not parse."""

    id = "E000"
    title = "file parses as Python"
    rationale = "unparsable files are invisible to every other invariant check"
    severity = Severity.ERROR


def iter_python_files(root: Path, dirs: tuple[str, ...]) -> list[Path]:
    files: list[Path] = []
    for d in dirs:
        base = root / d
        if not base.is_dir():
            continue
        files.extend(
            p
            for p in sorted(base.rglob("*.py"))
            if not any(part.startswith(".") for part in p.relative_to(root).parts)
        )
    return sorted(files)


def run_analysis(config: AnalysisConfig, rules: list[Rule] | None = None) -> Project:
    """Walk the tree once; return the project with findings populated
    (sorted canonically)."""
    project = Project(config)
    if rules is None:
        classes = all_rules()
        if config.rule_ids is not None:
            wanted = set(config.rule_ids)
            classes = [cls for cls in classes if cls.id in wanted]
        rules = [cls() for cls in classes]

    internal = _InternalErrors()
    root = Path(config.root)
    builder = CallGraphBuilder()
    extra = tuple(d for d in config.extra_dirs if d not in config.dirs)

    for path in iter_python_files(root, config.dirs + extra):
        relpath = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            project.report(
                internal, relpath, exc.lineno or 0, (exc.offset or 0), f"syntax error: {exc.msg}"
            )
            continue
        project.files_scanned += 1
        ctx = ModuleContext(project, relpath, tree, source)
        project.register_suppressions(relpath, ctx.suppressions)
        builder.add_module(ctx)

        top = relpath.split("/", 1)[0]
        in_extra = top in extra
        active = [
            r
            for r in rules
            if r.applies_to(relpath)
            or (in_extra and r.extra_dirs_ok and r.path_globs is None)
        ]
        if not active:
            continue
        dispatch: dict[type, list[Rule]] = {}
        for rule in active:
            rule.begin_module(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        if dispatch:
            for node in ast.walk(tree):
                for rule in dispatch.get(type(node), ()):
                    rule.visit(ctx, node)
        for rule in active:
            rule.end_module(ctx)

    # Finish the call graph before finalize so the interprocedural rules
    # (and the CLI export) see resolved edges.
    project.callgraph = builder.finish()

    for rule in rules:
        rule.finalize(project)

    project.findings = sort_findings(project.findings)
    return project
