"""SCN001 — the scenario DSL's vocabularies stay in sync everywhere.

Four components each enumerate part of the scenario schema: the
validator's literal field tuples (``repro.scenarios.schema``), the
failure injector's ``FAILURE_KINDS`` and its ``_inject_<kind>``
dispatch handlers (``repro.failures.injector``), and the DESIGN.md
"Scenario schema" table.  Any one of them drifting means documents
validate against one schema and execute against another — the
schema-rot failure TEL001/TRC001 guard against for observability,
applied to the experiment-description surface.

All checks are AST/text-only (nothing is imported), so the rule works
on broken trees too.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.engine import ModuleContext, const_str
from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register

_BACKTICK_RE = re.compile(r"`([^`]+)`")
_SIMPLE_WORD_RE = re.compile(r"^[a-z_]+$")

# Literal tuple assignments the rule harvests, by variable name.
_TRACKED_TUPLES = ("FAILURE_KINDS", "TOP_LEVEL_FIELDS", "DEGRADATION_KINDS")

_INJECT_PREFIX = "_inject_"


def parse_scenario_schema(text: str) -> tuple[dict[str, int], dict[str, int]]:
    """``({field: lineno}, {kind: lineno})`` from the "Scenario schema"
    table.

    A field is the backticked token in each row's first cell.  Failure
    kinds are the backticked simple-word tokens in the *later* cells of
    the ``failures`` row — the row enumerates the kind vocabulary, and
    only kind names are backticked there by convention.
    """
    fields: dict[str, int] = {}
    kinds: dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("## "):
            in_section = "scenario schema" in line.lower()
            continue
        if not in_section or not line.lstrip().startswith("|"):
            continue
        cells = line.split("|")
        first = cells[1] if len(cells) > 1 else ""
        m = _BACKTICK_RE.search(first)
        if m is None or not _SIMPLE_WORD_RE.match(m.group(1)):
            continue
        name = m.group(1)
        fields.setdefault(name, lineno)
        if name == "failures":
            for cell in cells[2:]:
                for tok in _BACKTICK_RE.findall(cell):
                    if _SIMPLE_WORD_RE.match(tok):
                        kinds.setdefault(tok, lineno)
    return fields, kinds


@dataclass
class _TupleDecl:
    relpath: str
    lineno: int
    items: dict[str, int] = field(default_factory=dict)  # value -> lineno


@register
class ScenarioSchemaRule(Rule):
    """SCN001 — scenario vocabulary sync across validator/injector/docs."""

    id = "SCN001"
    extra_dirs_ok = False  # vocabulary sync vs injector/DESIGN.md
    title = "scenario schema stays in sync with the injector and DESIGN.md"
    rationale = (
        "the validator's field tuples, the injector's FAILURE_KINDS and "
        "_inject_<kind> handlers, and the DESIGN.md scenario table each "
        "enumerate the same vocabulary; drift in any corner means "
        "documents validate against one schema and execute against "
        "another (or fail at injection time, mid-campaign)"
    )
    severity = Severity.ERROR
    node_types = (ast.Assign, ast.FunctionDef)

    def __init__(self) -> None:
        self._tuples: dict[str, _TupleDecl] = {}
        self._handlers: dict[str, tuple[str, int]] = {}  # kind -> (relpath, lineno)

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.FunctionDef):
            if node.name.startswith(_INJECT_PREFIX) and node.name != _INJECT_PREFIX.rstrip("_"):
                kind = node.name[len(_INJECT_PREFIX):]
                self._handlers.setdefault(kind, (ctx.relpath, node.lineno))
            return
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        if name not in _TRACKED_TUPLES or not isinstance(node.value, (ast.Tuple, ast.List)):
            return
        decl = _TupleDecl(relpath=ctx.relpath, lineno=node.lineno)
        for elt in node.value.elts:
            value = const_str(elt)
            if value is not None:
                decl.items[value] = elt.lineno
        self._tuples.setdefault(name, decl)

    def finalize(self, project) -> None:
        failure_kinds = self._tuples.get("FAILURE_KINDS")
        top_fields = self._tuples.get("TOP_LEVEL_FIELDS")
        degradation = self._tuples.get("DEGRADATION_KINDS")
        if failure_kinds is None and top_fields is None:
            return  # no scenario DSL in this tree

        # 1. FAILURE_KINDS <-> _inject_<kind> handlers, both directions.
        if failure_kinds is not None and self._handlers:
            for kind in sorted(set(failure_kinds.items) - set(self._handlers)):
                project.report(
                    self,
                    path=failure_kinds.relpath,
                    line=failure_kinds.items[kind],
                    col=1,
                    message=(
                        f"failure kind `{kind}` is declared in FAILURE_KINDS but the "
                        f"injector has no `{_INJECT_PREFIX}{kind}` handler — injection "
                        "would fall through at runtime"
                    ),
                )
            for kind in sorted(set(self._handlers) - set(failure_kinds.items)):
                relpath, lineno = self._handlers[kind]
                project.report(
                    self,
                    path=relpath,
                    line=lineno,
                    col=1,
                    message=(
                        f"injector handler `{_INJECT_PREFIX}{kind}` exists but `{kind}` "
                        "is not declared in FAILURE_KINDS — the schema rejects a kind "
                        "the injector supports"
                    ),
                )

        # 2. Degradation kinds (duration/factor carriers) stay a subset.
        if degradation is not None and failure_kinds is not None:
            for kind in sorted(set(degradation.items) - set(failure_kinds.items)):
                project.report(
                    self,
                    path=degradation.relpath,
                    line=degradation.items[kind],
                    col=1,
                    message=(
                        f"DEGRADATION_KINDS entry `{kind}` is not a FAILURE_KINDS "
                        "member — duration/factor validation references a kind that "
                        "cannot occur"
                    ),
                )

        # 3. DESIGN.md scenario table <-> the literal tuples, both ways.
        text = project.design_text()
        if text is None:
            return
        documented_fields, documented_kinds = parse_scenario_schema(text)
        design = project.design_relpath()
        if top_fields is not None and not documented_fields:
            project.report(
                self,
                path=top_fields.relpath,
                line=top_fields.lineno,
                col=1,
                message=(
                    "the scenario DSL exists but DESIGN.md has no scenario-schema "
                    "table to lint against"
                ),
                severity=Severity.WARNING,
            )
            return
        if top_fields is not None:
            for name in sorted(set(top_fields.items) - set(documented_fields)):
                project.report(
                    self,
                    path=top_fields.relpath,
                    line=top_fields.items[name],
                    col=1,
                    message=(
                        f"scenario field `{name}` is accepted by the validator but "
                        "undocumented in the DESIGN.md scenario-schema table"
                    ),
                )
            for name in sorted(set(documented_fields) - set(top_fields.items)):
                project.report(
                    self,
                    path=design,
                    line=documented_fields[name],
                    col=1,
                    message=(
                        f"scenario field `{name}` is documented in DESIGN.md but not "
                        "in schema.TOP_LEVEL_FIELDS — the validator rejects it"
                    ),
                )
        if failure_kinds is not None and documented_kinds:
            for kind in sorted(set(failure_kinds.items) - set(documented_kinds)):
                project.report(
                    self,
                    path=failure_kinds.relpath,
                    line=failure_kinds.items[kind],
                    col=1,
                    message=(
                        f"failure kind `{kind}` is not listed in the DESIGN.md "
                        "scenario-schema `failures` row"
                    ),
                )
            for kind in sorted(set(documented_kinds) - set(failure_kinds.items)):
                project.report(
                    self,
                    path=design,
                    line=documented_kinds[kind],
                    col=1,
                    message=(
                        f"failure kind `{kind}` is documented in DESIGN.md but not "
                        "declared in FAILURE_KINDS"
                    ),
                )


__all__ = ["ScenarioSchemaRule", "parse_scenario_schema"]
