"""The rule registry and the Rule base class.

A rule declares which AST node types it wants (the engine's shared
visitor dispatches them during the single walk), which top-level
directories / path globs it applies to, and its documentation fields
(invariant, rationale, suppression hint) which ``--list-rules`` renders.
Per-module hooks (``begin_module`` / ``visit`` / ``end_module``) see a
:class:`~repro.analysis.engine.ModuleContext`; cross-file rules carry
state on ``self`` and report from :meth:`finalize`.
"""

from __future__ import annotations

import ast
import fnmatch

from repro.analysis.findings import Severity


class Rule:
    """Base class; subclasses self-register via :func:`register`."""

    #: unique id, e.g. ``"DET001"``
    id: str = ""
    #: one-line statement of the invariant the rule protects
    title: str = ""
    #: why violating the invariant corrupts determinism / the protocol
    rationale: str = ""
    #: how to silence a deliberate violation
    suppress_hint: str = "add `# repro-lint: disable=<RULE>` on the line, or record it in the baseline file"
    severity: str = Severity.ERROR

    #: AST node classes the shared visitor dispatches to :meth:`visit`
    node_types: tuple[type, ...] = ()
    #: top-level directories (relative to the root) the rule scans
    dirs: tuple[str, ...] = ("src", "benchmarks", "examples")
    #: optional extra fnmatch globs on the POSIX relpath; None = all files
    path_globs: tuple[str, ...] | None = None
    #: whether ``--include-dirs`` opt-in directories (tests/, ...) extend
    #: this rule's scope; rules whose findings only make sense against
    #: specific inventory files set this to False
    extra_dirs_ok: bool = True

    def applies_to(self, relpath: str) -> bool:
        top = relpath.split("/", 1)[0]
        if top not in self.dirs:
            return False
        if self.path_globs is None:
            return True
        return any(fnmatch.fnmatch(relpath, g) for g in self.path_globs)

    # -- per-module hooks (ctx: engine.ModuleContext) ----------------------
    def begin_module(self, ctx) -> None:
        """Called before the walk of one module."""

    def visit(self, ctx, node: ast.AST) -> None:
        """Called for every node whose type is in :attr:`node_types`."""

    def end_module(self, ctx) -> None:
        """Called after the walk of one module."""

    # -- cross-file hook ---------------------------------------------------
    def finalize(self, project) -> None:
        """Called once after every module was walked."""


_RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add the rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    if not Severity.valid(cls.severity):
        raise ValueError(f"rule {cls.id}: bad severity {cls.severity!r}")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    """Registered rule classes, sorted by id."""
    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> type[Rule]:
    return _RULES[rule_id]
