"""Project-wide import/call graph with nondeterminism taint facts.

Built once per analysis run by the engine (one extra linear pass over
each already-parsed module), then consumed by the interprocedural rules
in :mod:`repro.analysis.flow` and exported by the CLI's ``--call-graph``.

Scope and resolution strategy (a lint heuristic, not a type system):

* every top-level function and every method becomes a node, keyed by its
  dotted qualname (``repro.core.base.MeteorShowerBase.write_checkpoint``);
  nested functions/lambdas/comprehensions are folded into their enclosing
  node (their calls and taint sources are attributed to it);
* ``name(...)`` resolves through the module's functions, then through the
  import alias table into other project modules; calling a known class
  resolves to its ``__init__``;
* ``self.meth(...)`` resolves through the enclosing class and its
  project-known ancestors (bare class names, first definition wins — the
  same convention PROTO001 uses);
* ``obj.meth(...)`` resolves through the import table when the receiver
  is a project module/class, otherwise falls back to *every* project
  method of that name, capped at :data:`METHOD_FANOUT_LIMIT` targets so
  ubiquitous names cannot connect the whole graph;
* module-level statements are not nodes — a constant initialised from
  ``os.environ`` at import time is configuration, not a flow the graph
  can follow.

Each node also records the *taint seeds* it contains (wall clock, global
RNG, ``os.environ``, unsorted filesystem enumeration, ``id()``/``hash()``
— see :mod:`repro.analysis.nondet`) and the *sink facts* it exhibits
(serialiser-named function, trace emission, telemetry metric calls).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field

from repro.analysis.astutil import canonical_name, receiver_tail
from repro.analysis.nondet import (
    FS_ENUM_CALLS,
    FS_ENUM_METHODS,
    NUMPY_GLOBAL_RNG,
    PROCESS_SENSITIVE_BUILTINS,
    WALL_CLOCK_CALLS,
)

#: An attribute-call name is resolved against the project method index
#: only when it matches at most this many definitions; beyond it the
#: name is treated as too generic to link (precision over recall).
METHOD_FANOUT_LIMIT = 8

#: Function-name fragments that mark export/serialisation sinks (shared
#: shape with DET003's serialiser heuristic).
SERIALIZER_NAME = re.compile(
    r"(^|_)(as_dict|to_|dump|dumps|write_|export|serialize|snapshot|series_dict|jsonl)"
)

_TELEMETRY_FACTORIES = frozenset({"counter", "gauge", "histogram"})
_TELEMETRY_RECEIVERS = frozenset({"telemetry", "telem"})


@dataclass(frozen=True)
class TaintSeed:
    """One direct nondeterminism source inside a function body."""

    kind: str  # key into nondet.TAINT_KINDS
    detail: str  # the offending symbol, e.g. "time.time"
    lineno: int


@dataclass(frozen=True)
class _CallSite:
    lineno: int
    kind: str  # "name" | "self" | "attr"
    name: str  # bare callee name
    canonical: str | None  # alias-resolved dotted name, if any


@dataclass
class FunctionNode:
    """One function/method of the analysed project."""

    qualname: str
    module: str
    cls: str | None
    name: str
    relpath: str
    lineno: int
    is_generator: bool
    calls: list[_CallSite] = field(default_factory=list)
    seeds: list[TaintSeed] = field(default_factory=list)
    sinks: tuple[str, ...] = ()
    edges: tuple[str, ...] = ()  # resolved callee qualnames (finish())


def module_name(relpath: str) -> str:
    """Dotted module name for a scanned file.

    ``src/repro/core/base.py`` -> ``repro.core.base``; files outside
    ``src`` keep their top directory as a pseudo-package
    (``benchmarks/bench_fig5.py`` -> ``benchmarks.bench_fig5``).
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class CallGraph:
    """The finished graph: nodes, resolved edges, class ancestry."""

    def __init__(
        self,
        nodes: dict[str, FunctionNode],
        class_bases: dict[str, tuple[str, ...]],
        class_methods: dict[str, dict[str, str]],
    ):
        self.nodes = nodes
        self.class_bases = class_bases
        self.class_methods = class_methods

    def ancestors(self, cls: str) -> set[str]:
        """Transitive base-class names (bare-name heuristic)."""
        seen: set[str] = set()
        stack = list(self.class_bases.get(cls, ()))
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            stack.extend(self.class_bases.get(base, ()))
        return seen

    def taint_paths(
        self,
        start: str,
        *,
        skip_direct: frozenset[str] = frozenset(),
        seed_ok=None,
    ) -> list[tuple[TaintSeed, list[str]]]:
        """Shortest call chains from ``start`` to every reachable taint kind.

        Returns ``[(seed, [start, ..., seed_holder])]``, one entry per
        ``(kind, holder)`` pair, in BFS (shortest-chain) order.  Seeds of
        a kind in ``skip_direct`` are ignored when they sit directly in
        ``start`` itself (a per-file rule already owns that report).
        ``seed_ok(node, seed)`` may veto individual seeds (suppression).
        """
        hits: list[tuple[TaintSeed, list[str]]] = []
        claimed: set[tuple[str, str]] = set()
        parent: dict[str, str | None] = {start: None}
        queue = [start]
        while queue:
            nxt: list[str] = []
            for qual in queue:
                node = self.nodes.get(qual)
                if node is None:
                    continue
                for seed in node.seeds:
                    if qual == start and seed.kind in skip_direct:
                        continue
                    if seed_ok is not None and not seed_ok(node, seed):
                        continue
                    key = (seed.kind, qual)
                    if key in claimed:
                        continue
                    claimed.add(key)
                    chain: list[str] = []
                    cur: str | None = qual
                    while cur is not None:
                        chain.append(cur)
                        cur = parent[cur]
                    hits.append((seed, list(reversed(chain))))
                for callee in node.edges:
                    if callee not in parent:
                        parent[callee] = qual
                        nxt.append(callee)
            queue = nxt
        return hits

    # -- exports ------------------------------------------------------------
    def as_dict(self) -> dict:
        nodes = []
        for qual in sorted(self.nodes):
            node = self.nodes[qual]
            nodes.append(
                {
                    "qualname": node.qualname,
                    "path": node.relpath,
                    "line": node.lineno,
                    "generator": node.is_generator,
                    "sinks": sorted(node.sinks),
                    "seeds": [
                        {"kind": s.kind, "detail": s.detail, "line": s.lineno}
                        for s in sorted(node.seeds, key=lambda s: (s.lineno, s.kind))
                    ],
                    "calls": list(node.edges),
                }
            )
        return {"version": 1, "functions": nodes}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def to_dot(self) -> str:
        """Graphviz rendering: sinks are doubled boxes, seeded nodes red."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box, fontsize=9];"]
        for qual in sorted(self.nodes):
            node = self.nodes[qual]
            attrs = []
            if node.seeds:
                attrs.append('color="red"')
            if node.sinks:
                attrs.append('peripheries="2"')
            suffix = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f'  "{qual}"{suffix};')
        for qual in sorted(self.nodes):
            for callee in self.nodes[qual].edges:
                lines.append(f'  "{qual}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


class CallGraphBuilder:
    """Accumulates per-module facts during the engine walk."""

    def __init__(self) -> None:
        self._nodes: dict[str, FunctionNode] = {}
        self._class_bases: dict[str, tuple[str, ...]] = {}
        self._class_methods: dict[str, dict[str, str]] = {}
        self._module_funcs: dict[tuple[str, str], str] = {}
        self._dotted: dict[str, str] = {}  # "mod.fn" / "mod.Cls.meth" -> qualname
        self._method_index: dict[str, list[str]] = {}

    def add_module(self, ctx) -> None:
        """Record every function/method of one parsed module.

        ``ctx`` is the engine's ModuleContext (duck-typed: ``relpath``,
        ``tree``, ``imports``).
        """
        mod = module_name(ctx.relpath)
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, mod, None, stmt)
            elif isinstance(stmt, ast.ClassDef):
                bases = tuple(
                    b for b in (_base_name(base) for base in stmt.bases) if b is not None
                )
                # first definition wins (fixture shadowing cannot hide a class)
                self._class_bases.setdefault(stmt.name, bases)
                methods = self._class_methods.setdefault(stmt.name, {})
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = self._add_function(ctx, mod, stmt.name, sub)
                        methods.setdefault(sub.name, qual)

    def _add_function(
        self, ctx, mod: str, cls: str | None, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> str:
        qual = f"{mod}.{cls}.{fn.name}" if cls else f"{mod}.{fn.name}"
        node = FunctionNode(
            qualname=qual,
            module=mod,
            cls=cls,
            name=fn.name,
            relpath=ctx.relpath,
            lineno=fn.lineno,
            is_generator=_is_generator(fn),
        )
        _scan_body(node, fn, ctx.imports)
        if SERIALIZER_NAME.search(fn.name):
            node.sinks += ("serializer",)
        # later duplicate definitions of the same qualname keep the first
        if qual not in self._nodes:
            self._nodes[qual] = node
            if cls is None:
                self._module_funcs[(mod, fn.name)] = qual
                self._dotted[f"{mod}.{fn.name}"] = qual
            else:
                self._dotted[f"{mod}.{cls}.{fn.name}"] = qual
                self._method_index.setdefault(fn.name, []).append(qual)
        return qual

    # -- resolution ---------------------------------------------------------
    def finish(self) -> CallGraph:
        graph = CallGraph(self._nodes, self._class_bases, self._class_methods)
        for node in self._nodes.values():
            edges: list[str] = []
            for site in node.calls:
                edges.extend(self._resolve(node, site, graph))
            node.edges = tuple(dict.fromkeys(edges))
        return graph

    def _resolve(self, node: FunctionNode, site: _CallSite, graph: CallGraph) -> list[str]:
        if site.kind == "name":
            local = self._module_funcs.get((node.module, site.name))
            if local is not None:
                return [local]
            ctor = self._constructor(site.name)
            if ctor is not None:
                return [ctor]
            if site.canonical is not None:
                return self._resolve_dotted(site.canonical)
            return []
        if site.kind == "self":
            if node.cls is not None:
                qual = self._lookup_method(node.cls, site.name, graph)
                if qual is not None:
                    return [qual]
            return self._fallback(site.name)
        # attr call on an arbitrary receiver
        if site.canonical is not None:
            dotted = self._resolve_dotted(site.canonical)
            if dotted:
                return dotted
        return self._fallback(site.name)

    def _resolve_dotted(self, canonical: str) -> list[str]:
        qual = self._dotted.get(canonical)
        if qual is not None:
            return [qual]
        # a dotted reference to a class is a constructor call
        tail = canonical.rsplit(".", 1)[-1]
        ctor = self._constructor(tail)
        if ctor is not None and tail in self._class_bases:
            return [ctor]
        return []

    def _constructor(self, name: str) -> str | None:
        if name in self._class_bases:
            methods = self._class_methods.get(name, {})
            init = methods.get("__init__")
            if init is not None:
                return init
        return None

    def _lookup_method(self, cls: str, name: str, graph: CallGraph) -> str | None:
        methods = self._class_methods.get(cls, {})
        if name in methods:
            return methods[name]
        for base in graph.ancestors(cls):
            qual = self._class_methods.get(base, {}).get(name)
            if qual is not None:
                return qual
        return None

    def _fallback(self, name: str) -> list[str]:
        quals = self._method_index.get(name, [])
        if 1 <= len(quals) <= METHOD_FANOUT_LIMIT:
            return list(quals)
        return []


def _base_name(base: ast.AST) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _is_generator(fn: ast.AST) -> bool:
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _scan_body(node: FunctionNode, fn: ast.AST, imports: dict[str, str]) -> None:
    """One walk of a function body: call sites, taint seeds, sink facts.

    Nested function bodies are folded in (their calls execute on behalf
    of the enclosing function for the purposes of taint flow).
    """
    # pre-pass: filesystem enumerations directly wrapped in sorted() are
    # order-laundered and do not seed taint
    sanctified: set[int] = set()
    for sub in ast.walk(fn):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "sorted"
        ):
            for inner in ast.walk(sub):
                if inner is not sub:
                    sanctified.add(id(inner))

    seen_environ_lines: set[int] = set()
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Attribute):
            # bare `os.environ` access (attribute or subscript read)
            if canonical_name(imports, sub) == "os.environ":
                if sub.lineno not in seen_environ_lines:
                    seen_environ_lines.add(sub.lineno)
                    node.seeds.append(TaintSeed("environ", "os.environ", sub.lineno))
            continue
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        canonical = canonical_name(imports, func)
        # ---- taint seeds -------------------------------------------------
        if canonical is not None:
            if canonical in WALL_CLOCK_CALLS:
                node.seeds.append(TaintSeed("wall-clock", canonical, sub.lineno))
            else:
                parts = canonical.split(".")
                if parts[0] == "random" and len(parts) > 1:
                    node.seeds.append(TaintSeed("global-rng", canonical, sub.lineno))
                elif (
                    len(parts) == 3
                    and parts[0] == "numpy"
                    and parts[1] == "random"
                    and parts[2] in NUMPY_GLOBAL_RNG
                ):
                    node.seeds.append(TaintSeed("global-rng", canonical, sub.lineno))
            if canonical == "os.getenv":
                node.seeds.append(TaintSeed("environ", "os.getenv", sub.lineno))
            if canonical in FS_ENUM_CALLS and id(sub) not in sanctified:
                node.seeds.append(TaintSeed("fs-order", canonical, sub.lineno))
        if (
            isinstance(func, ast.Attribute)
            and func.attr in FS_ENUM_METHODS
            and (canonical is None or canonical not in FS_ENUM_CALLS)
            and id(sub) not in sanctified
        ):
            recv = receiver_tail(func) or "<path>"
            node.seeds.append(
                TaintSeed("fs-order", f"{recv}.{func.attr}", sub.lineno)
            )
        if (
            isinstance(func, ast.Name)
            and func.id in PROCESS_SENSITIVE_BUILTINS
            and func.id not in imports
        ):
            node.seeds.append(TaintSeed("process-id", f"{func.id}()", sub.lineno))
        # ---- sink facts --------------------------------------------------
        if isinstance(func, ast.Attribute):
            tail = receiver_tail(func)
            if func.attr == "emit" and tail == "trace" and "trace-event" not in node.sinks:
                node.sinks += ("trace-event",)
            if (
                func.attr in _TELEMETRY_FACTORIES
                and tail in _TELEMETRY_RECEIVERS
                and "telemetry" not in node.sinks
            ):
                node.sinks += ("telemetry",)
        # ---- call sites --------------------------------------------------
        if isinstance(func, ast.Name):
            node.calls.append(
                _CallSite(
                    sub.lineno,
                    "name",
                    func.id,
                    canonical if canonical != func.id else None,
                )
            )
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                node.calls.append(_CallSite(sub.lineno, "self", func.attr, None))
            else:
                node.calls.append(_CallSite(sub.lineno, "attr", func.attr, canonical))


__all__ = [
    "CallGraph",
    "CallGraphBuilder",
    "FunctionNode",
    "METHOD_FANOUT_LIMIT",
    "SERIALIZER_NAME",
    "TaintSeed",
    "module_name",
]
