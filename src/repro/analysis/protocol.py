"""Protocol rules: engine-event yields and checkpoint-scheme hooks.

SIM001 guards the discrete-event engine's contract that a process
generator only ever yields :class:`~repro.simulation.core.Event`
objects — a bare or literal yield is rejected by the engine *at
runtime*, typically minutes into a sweep; the static pass catches it at
review time.  PROTO001 guards the checkpoint-protocol hook surface
(Khaos-style discipline): scheme subclasses must implement the hooks the
HAU run loop drives, generator-valued hooks must actually be generators
(``yield from`` of a plain function raises mid-checkpoint), and custom
operator serialisation must come in save/restore pairs or recovery
silently diverges from the MRC state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register

# Scheme hooks the HAU/coordinator drives with `yield from` — an
# override must be a generator function (contain yield / yield from).
GENERATOR_HOOKS = frozenset(
    {
        "on_source_emit",
        "on_emit",
        "handle_token",
        "maybe_checkpoint",
        "on_control",
        "initiate_round",
        "write_checkpoint",
    }
)

# Scheme hooks called as plain functions — a yield here would turn the
# call into a never-driven generator and the hook body would never run.
PLAIN_HOOKS = frozenset(
    {
        "on_hau_started",
        "on_token_arrival",
        "processing_overhead",
        "on_channel_broken",
        "on_recovery_reset",
        "attach",
        "start",
        "control_reply",
    }
)

SCHEME_ROOTS = frozenset({"SchemeHooks", "CheckpointScheme", "MeteorShowerBase"})


def _is_generator_fn(fn: ast.FunctionDef) -> bool:
    for node in _walk_own(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_own(fn: ast.AST):
    """Walk a function's body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class _FnInfo:
    name: str
    bad_yields: list[tuple[int, int, str]] = field(default_factory=list)


def _collect_bad_yields(fn: ast.FunctionDef) -> list[tuple[int, int, str]]:
    """Locations of yields that cannot be engine events.

    Flags ``yield`` of a literal (constant, tuple/list/dict/set display,
    f-string) and value-less ``yield`` — except the ``return`` / ``raise``
    followed by an unreachable ``yield`` idiom that turns a default hook
    into a generator (see SchemeHooks), which is deliberate and harmless.
    """
    bad: list[tuple[int, int, str]] = []

    def scan_expr(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.stmt):  # e.g. match-case bodies
            scan_stmts([node])
            return
        if isinstance(node, ast.Yield):
            val = node.value
            if val is None:
                bad.append((node.lineno, node.col_offset, "bare `yield`"))
            elif isinstance(
                val, (ast.Constant, ast.Tuple, ast.List, ast.Dict, ast.Set, ast.JoinedStr)
            ):
                bad.append((node.lineno, node.col_offset, f"`yield {ast.unparse(val)}`"))
            return
        for child in ast.iter_child_nodes(node):
            scan_expr(child)

    def scan_stmts(body: list[ast.stmt]) -> None:
        prev: ast.stmt | None = None
        for stmt in body:
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Yield)
                and stmt.value.value is None
                and isinstance(prev, (ast.Return, ast.Raise))
            ):
                # make-this-a-generator idiom: unreachable bare yield
                prev = stmt
                continue
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                for attr in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, attr, None)
                    if sub:
                        scan_stmts(sub)
                for handler in getattr(stmt, "handlers", None) or []:
                    scan_stmts(handler.body)
                for child in ast.iter_child_nodes(stmt):
                    if not isinstance(child, (ast.stmt, ast.excepthandler)):
                        scan_expr(child)
            prev = stmt

    scan_stmts(fn.body)
    return bad


@register
class ProcessYieldRule(Rule):
    """SIM001 — process generators yield engine events only."""

    id = "SIM001"
    title = "process generators must yield only engine events"
    rationale = (
        "the DES kernel fails a process that yields anything but an "
        "Event (`process ... yielded non-event`); a literal or bare "
        "yield in a spawned generator is a guaranteed runtime failure "
        "that static analysis can catch before a sweep burns hours"
    )
    severity = Severity.ERROR
    node_types = (ast.FunctionDef, ast.Call)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._fns: dict[str, ast.FunctionDef] = {}
        self._driven: dict[str, ast.Call] = {}

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.FunctionDef):
            # last definition of a bare name wins (module-local heuristic)
            self._fns[node.name] = node
            return
        call = node
        target: ast.AST | None = None
        if isinstance(call.func, ast.Attribute) and call.func.attr in ("process", "spawn"):
            if call.args:
                target = call.args[0]
        elif isinstance(call.func, ast.Name) and call.func.id == "Process":
            if len(call.args) >= 2:
                target = call.args[1]
        if isinstance(target, ast.Call):
            name: str | None = None
            if isinstance(target.func, ast.Name):
                name = target.func.id
            elif isinstance(target.func, ast.Attribute):
                name = target.func.attr
            if name is not None and name not in self._driven:
                self._driven[name] = call

    def end_module(self, ctx: ModuleContext) -> None:
        for name in sorted(self._driven):
            fn = self._fns.get(name)
            if fn is None:
                continue
            for lineno, col, desc in _collect_bad_yields(fn):
                self.project_report(ctx, fn, name, lineno, col, desc)

    def project_report(self, ctx, fn, name, lineno, col, desc) -> None:
        ctx.project.report(
            self,
            path=ctx.relpath,
            line=lineno,
            col=col + 1,
            message=(
                f"process generator `{name}` yields a non-event value ({desc}) — "
                "processes may only yield engine events (timeout/event/condition)"
            ),
        )


@dataclass
class _ClassInfo:
    name: str
    relpath: str
    lineno: int
    bases: tuple[str, ...]
    methods: dict[str, bool] = field(default_factory=dict)  # name -> is_generator
    method_lines: dict[str, int] = field(default_factory=dict)


@register
class SchemeProtocolRule(Rule):
    """PROTO001 — checkpoint-scheme / operator hook discipline."""

    id = "PROTO001"
    title = "scheme subclasses implement the hook protocol; save/restore stay paired"
    rationale = (
        "a concrete MeteorShowerBase subclass without `initiate_round` "
        "cannot run a round; a generator hook overridden as a plain "
        "function breaks the HAU's `yield from` mid-checkpoint; a yield "
        "in a plain hook means the hook body silently never executes; an "
        "Operator overriding only one of snapshot/restore restores state "
        "that its own snapshot did not write"
    )
    severity = Severity.ERROR
    node_types = (ast.ClassDef,)

    def __init__(self) -> None:
        self._classes: dict[str, _ClassInfo] = {}

    def visit(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        bases = tuple(b for b in (self._base_name(base) for base in node.bases) if b)
        info = _ClassInfo(name=node.name, relpath=ctx.relpath, lineno=node.lineno, bases=bases)
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                info.methods[stmt.name] = _is_generator_fn(stmt)
                info.method_lines[stmt.name] = stmt.lineno
        # first definition wins so fixture shadowing cannot hide a class
        self._classes.setdefault(node.name, info)

    @staticmethod
    def _base_name(base: ast.AST) -> str | None:
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
        return None

    def _ancestors(self, name: str) -> set[str]:
        seen: set[str] = set()
        stack = list(self._classes[name].bases) if name in self._classes else []
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            if b in self._classes:
                stack.extend(self._classes[b].bases)
        return seen

    def finalize(self, project) -> None:
        for name in sorted(self._classes):
            info = self._classes[name]
            ancestors = self._ancestors(name)
            if ancestors & SCHEME_ROOTS or name in SCHEME_ROOTS:
                self._check_scheme(project, info, ancestors)
            if "Operator" in ancestors:
                self._check_operator(project, info)

    def _check_scheme(self, project, info: _ClassInfo, ancestors: set[str]) -> None:
        for meth, is_gen in sorted(info.methods.items()):
            line = info.method_lines[meth]
            if meth in GENERATOR_HOOKS and not is_gen:
                project.report(
                    self,
                    path=info.relpath,
                    line=line,
                    col=1,
                    message=(
                        f"`{info.name}.{meth}` overrides a generator hook but is "
                        "not a generator — the runtime drives it with `yield from`"
                    ),
                )
            if meth in PLAIN_HOOKS and is_gen:
                project.report(
                    self,
                    path=info.relpath,
                    line=line,
                    col=1,
                    message=(
                        f"`{info.name}.{meth}` is a plain (non-generator) hook but "
                        "contains yield — its body would never execute"
                    ),
                )
        # Concrete MS variants must provide initiate_round somewhere
        # strictly below MeteorShowerBase (whose stub raises).
        if "MeteorShowerBase" in ancestors:
            chain = [info.name]
            chain.extend(a for a in self._mro_chain(info.name) if a != "MeteorShowerBase")
            provided = any(
                "initiate_round" in self._classes[c].methods
                for c in chain
                if c in self._classes and c != "MeteorShowerBase"
            )
            if not provided and not self._has_subclass(info.name):
                project.report(
                    self,
                    path=info.relpath,
                    line=info.lineno,
                    col=1,
                    message=(
                        f"`{info.name}` subclasses MeteorShowerBase but no class in "
                        "its chain implements `initiate_round` — the coordinator "
                        "would raise NotImplementedError on the first round"
                    ),
                )

    def _mro_chain(self, name: str) -> list[str]:
        """Linearised ancestor names (declaration order, depth-first)."""
        out: list[str] = []
        seen: set[str] = set()

        def walk(n: str) -> None:
            if n not in self._classes:
                return
            for b in self._classes[n].bases:
                if b not in seen:
                    seen.add(b)
                    out.append(b)
                    walk(b)

        walk(name)
        return out

    def _has_subclass(self, name: str) -> bool:
        return any(
            name in self._ancestors(other) for other in self._classes if other != name
        )

    def _check_operator(self, project, info: _ClassInfo) -> None:
        has_snap = "snapshot" in info.methods
        has_rest = "restore" in info.methods
        if has_snap != has_rest:
            present, missing = ("snapshot", "restore") if has_snap else ("restore", "snapshot")
            project.report(
                self,
                path=info.relpath,
                line=info.method_lines[present],
                col=1,
                message=(
                    f"operator `{info.name}` overrides `{present}` without "
                    f"`{missing}` — custom state serialisation must stay "
                    "paired or recovery diverges from the checkpointed state"
                ),
            )


__all__ = ["ProcessYieldRule", "SchemeProtocolRule", "GENERATOR_HOOKS", "PLAIN_HOOKS"]
