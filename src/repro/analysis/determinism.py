"""Determinism rules: no wall clock, no global RNG, ordered exports.

The byte-identical-artifact contract (DESIGN.md, "Determinism contract")
holds only if every value that reaches a trace event, telemetry metric
or bench artifact derives from simulation state.  These rules catch the
three ways real code has historically broken that: reading the wall
clock, drawing from process-global randomness, and serialising
unordered collections.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import ModuleContext, receiver_tail
from repro.analysis.findings import Severity
from repro.analysis.nondet import (
    FS_ENUM_CALLS,
    FS_ENUM_METHODS,
    NUMPY_GLOBAL_RNG,
    WALL_CLOCK_CALLS,
)
from repro.analysis.registry import Rule, register


@register
class WallClockRule(Rule):
    """DET001 — model and harness code must never read the wall clock."""

    id = "DET001"
    title = "no wall-clock reads in model/simulation code"
    rationale = (
        "simulated time is `env.now`; a wall-clock read (time.time, "
        "datetime.now, perf_counter, sleep) leaks host timing into "
        "traces/metrics/artifacts and breaks the byte-identical same-seed "
        "contract"
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        name = ctx.canonical(node.func)
        if name in WALL_CLOCK_CALLS:
            ctx.report(self, node, f"wall-clock call `{name}()` — use simulated time (`env.now`)")


@register
class GlobalRandomRule(Rule):
    """DET002 — all randomness must come from seeded named streams."""

    id = "DET002"
    title = "no global `random` module / legacy numpy global RNG"
    rationale = (
        "every stochastic component must draw from its own named stream "
        "(`repro.simulation.rng.RngRegistry`); the process-global stdlib "
        "`random` and `numpy.random.<fn>` state is shared across "
        "components, so adding one draw anywhere perturbs every seeded "
        "outcome the regression tests pin"
    )
    severity = Severity.ERROR
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "random" or a.name.startswith("random."):
                    ctx.report(
                        self,
                        node,
                        "import of the global `random` module — use "
                        "`repro.simulation.rng.RngRegistry` streams",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module == "random" or (node.module or "").startswith("random.")):
                ctx.report(
                    self,
                    node,
                    "import from the global `random` module — use "
                    "`repro.simulation.rng.RngRegistry` streams",
                )
        elif isinstance(node, ast.Call):
            name = ctx.canonical(node.func)
            if name is None:
                return
            parts = name.split(".")
            if len(parts) == 3 and parts[0] == "numpy" and parts[1] == "random":
                if parts[2] in NUMPY_GLOBAL_RNG:
                    ctx.report(
                        self,
                        node,
                        f"legacy global-state RNG call `{name}()` — draw from a "
                        "named `RngRegistry` stream instead",
                    )


# Method calls returning a view whose iteration order is the dict's:
# fine on sorted input, a reproducibility hazard in a serialiser.
_DICT_VIEWS = ("keys", "values", "items")

# Order-insensitive consumers: a set/view iterated *directly inside* one
# of these folds to the same value whatever the iteration order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"}
)

# Functions with these name fragments produce the byte-contract
# artifacts (JSONL traces, telemetry snapshots, bench JSON); inside them
# even a dict view must be explicitly ordered.
_SERIALIZER_NAME = re.compile(
    r"(^|_)(as_dict|to_|dump|dumps|write_|export|serialize|snapshot|series_dict|jsonl)"
)


@register
class UnorderedExportRule(Rule):
    """DET003 — export paths iterate collections in sorted order."""

    id = "DET003"
    title = "no set / unsorted-dict-view iteration in serialization paths"
    rationale = (
        "trace JSONL, telemetry snapshots and bench artifacts promise "
        "byte-identical output for a given seed; iterating a set (hash "
        "order) anywhere in an export path, or a dict view inside a "
        "serialiser function, emits in an order the source does not "
        "visibly determine — wrap the iterable in sorted()"
    )
    severity = Severity.ERROR
    node_types = (
        ast.FunctionDef,
        ast.Call,
        ast.For,
        ast.GeneratorExp,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
    )
    path_globs = (
        "src/repro/observability/*",
        "src/repro/telemetry/*",
        "src/repro/harness/*",
        "benchmarks/*",
    )

    def begin_module(self, ctx: ModuleContext) -> None:
        # comprehension nodes whose result feeds an order-insensitive
        # builtin (`sorted(x for ...)`), pre-marked because the shared
        # walk visits parents before children
        self._sanctified: set[int] = set()
        # line spans of serializer-named functions
        self._serializer_spans: list[tuple[int, int]] = []

    def _in_serializer(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        return any(lo <= line <= hi for lo, hi in self._serializer_spans)

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.FunctionDef):
            if _SERIALIZER_NAME.search(node.name):
                self._serializer_spans.append((node.lineno, node.end_lineno or node.lineno))
            return
        if isinstance(node, ast.Call):
            # everything fed to an order-insensitive builtin is exempt;
            # the shared walk visits parents before children, so the
            # marks land before the inner comprehensions are dispatched
            if isinstance(node.func, ast.Name) and node.func.id in _ORDER_INSENSITIVE:
                for sub in ast.walk(node):
                    if sub is not node:
                        self._sanctified.add(id(sub))
            return
        iterables = (
            [node.iter] if isinstance(node, ast.For) else [c.iter for c in node.generators]
        )
        for it in iterables:
            self._check_iterable(ctx, node, it)

    def _check_iterable(self, ctx: ModuleContext, loop: ast.AST, it: ast.AST) -> None:
        if id(it) in self._sanctified or id(loop) in self._sanctified:
            return
        if isinstance(it, (ast.Set, ast.SetComp)):
            ctx.report(self, it, "iteration over a set literal/comprehension in an export path")
            return
        if not isinstance(it, ast.Call):
            return
        if isinstance(it.func, ast.Name) and it.func.id in ("set", "frozenset"):
            ctx.report(self, it, f"iteration over `{it.func.id}(...)` in an export path")
            return
        if (
            isinstance(it.func, ast.Attribute)
            and it.func.attr in _DICT_VIEWS
            and not it.args
            and self._in_serializer(it)
        ):
            recv = receiver_tail(it.func) or "<dict>"
            ctx.report(
                self,
                it,
                f"unsorted iteration over `{recv}.{it.func.attr}()` in a "
                "serialiser — wrap in sorted()",
            )


@register
class UnsortedFsEnumerationRule(Rule):
    """DET005 — filesystem enumeration must be explicitly ordered."""

    id = "DET005"
    title = "filesystem enumeration must be wrapped in sorted()"
    rationale = (
        "directory order is filesystem- and history-dependent: an "
        "os.listdir/scandir/walk or Path.iterdir/glob/rglob whose result "
        "is consumed unsorted makes cache scans, artifact discovery and "
        "scenario loading depend on inode history — wrap the enumeration "
        "directly in sorted() so the order is visible at the call site"
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def begin_module(self, ctx: ModuleContext) -> None:
        # subtrees of a sorted(...) call, pre-marked because the shared
        # walk visits parents before children
        self._sanctified: set[int] = set()

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "sorted":
            for sub in ast.walk(node):
                if sub is not node:
                    self._sanctified.add(id(sub))
            return
        if id(node) in self._sanctified:
            return
        name = ctx.canonical(node.func)
        if name in FS_ENUM_CALLS:
            ctx.report(
                self,
                node,
                f"unsorted filesystem enumeration `{name}(...)` — wrap in sorted()",
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in FS_ENUM_METHODS
            and (name is None or name not in FS_ENUM_CALLS)
        ):
            recv = receiver_tail(node.func) or "<path>"
            ctx.report(
                self,
                node,
                f"unsorted filesystem enumeration `{recv}.{node.func.attr}(...)` — "
                "wrap in sorted()",
            )


__all__ = [
    "WallClockRule",
    "GlobalRandomRule",
    "UnorderedExportRule",
    "UnsortedFsEnumerationRule",
    "WALL_CLOCK_CALLS",
    "NUMPY_GLOBAL_RNG",
]
