"""Checkpoint-time and recovery-time breakdowns (Figs. 14 and 16).

Checkpoint time splits into *token collection* (command receipt to the
arrival of tokens from all upstream neighbours), *disk I/O* (writing the
state to stable storage) and *other* (state serialisation and process
creation).  Recovery time splits into *disk I/O* (reading state),
*reconnection* (controller re-wiring the recovered HAUs) and *other*
(operator reload + deserialisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CheckpointBreakdown:
    """Timing of one HAU's individual checkpoint within a round."""

    hau_id: str
    round_id: int
    command_at: float = 0.0
    tokens_done_at: float = 0.0
    write_start_at: float = 0.0
    write_end_at: float = 0.0
    state_bytes: int = 0
    fork_seconds: float = 0.0
    serialize_seconds: float = 0.0

    @property
    def token_collection(self) -> float:
        return max(0.0, self.tokens_done_at - self.command_at)

    @property
    def disk_io(self) -> float:
        return max(0.0, self.write_end_at - self.write_start_at)

    @property
    def other(self) -> float:
        return self.fork_seconds + self.serialize_seconds

    @property
    def total(self) -> float:
        return self.token_collection + self.other + self.disk_io

    @property
    def complete(self) -> bool:
        """Every phase timestamp was recorded.

        An unset timestamp is 0.0 (the convention throughout the schemes:
        a checkpoint that dies mid-round — failure during token collection
        or during the write — leaves later timestamps at zero).  The span
        properties clamp those to 0.0, which is indistinguishable from a
        genuinely instant phase; use this flag (or :meth:`spans`) to tell
        the difference before aggregating into Fig. 14.
        """
        return (
            self.tokens_done_at > 0.0
            and self.write_start_at > 0.0
            and self.write_end_at >= self.write_start_at > 0.0
        )

    def spans(self) -> dict[str, float | None]:
        """Phase durations with ``None`` for phases never reached.

        Unlike the clamped properties, an interrupted checkpoint shows up
        as ``{"token_collection": None, ...}`` rather than as zeros.
        """
        return {
            "token_collection": (
                self.token_collection if self.tokens_done_at > 0.0 else None
            ),
            "disk_io": (
                self.disk_io
                if self.write_start_at > 0.0 and self.write_end_at > 0.0
                else None
            ),
            "other": self.other,
        }


@dataclass
class CheckpointLog:
    """All individual checkpoints of one application checkpoint round."""

    round_id: int
    started_at: float
    haus: dict[str, CheckpointBreakdown] = field(default_factory=dict)
    completed_at: float | None = None
    # Every HAU the round was supposed to cover, stamped at round start.
    # Without it a round interrupted before an HAU even saw the command
    # leaves no breakdown behind, and the round would read as clean.
    expected_haus: tuple[str, ...] = ()

    def breakdown(self, hau_id: str) -> CheckpointBreakdown:
        bd = self.haus.get(hau_id)
        if bd is None:
            bd = CheckpointBreakdown(hau_id=hau_id, round_id=self.round_id)
            self.haus[hau_id] = bd
        return bd

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def incomplete_haus(self) -> list[str]:
        """HAUs whose individual checkpoint never finished (sorted).

        Non-empty on rounds cut short by a failure; those breakdowns'
        clamped spans read as zeros and must not be averaged into Fig. 14.
        Covers both HAUs whose breakdown stalled mid-phase *and* expected
        HAUs that never recorded a breakdown at all (the command or token
        died with the failure before reaching them).
        """
        stalled = {h for h, b in self.haus.items() if not b.complete}
        missing = {h for h in self.expected_haus if h not in self.haus}
        return sorted(stalled | missing)

    def slowest(self) -> CheckpointBreakdown | None:
        """The slowest individual checkpoint (the §IV-B measurement for
        MS-src+ap/+aa, where individual checkpoints run in parallel)."""
        done = [b for b in self.haus.values() if b.write_end_at > 0]
        if not done:
            return None
        return max(done, key=lambda b: b.total)

    def wall_clock(self) -> float:
        """Start-of-round to last write completion (the MS-src measurement,
        where token propagation and individual checkpoints overlap)."""
        if not self.haus:
            return 0.0
        end = max(b.write_end_at for b in self.haus.values())
        return max(0.0, end - self.started_at)

    def total_state_bytes(self) -> int:
        return sum(b.state_bytes for b in self.haus.values())


@dataclass
class RecoveryBreakdown:
    """Timing of one recovery (worst case: whole application restart)."""

    started_at: float
    reload_seconds: float = 0.0  # phase 1 (slowest HAU)
    disk_io_seconds: float = 0.0  # phase 2 (slowest HAU)
    deserialize_seconds: float = 0.0  # phase 3 (slowest HAU)
    reconnect_seconds: float = 0.0  # phase 4
    completed_at: float = 0.0
    haus_recovered: int = 0
    bytes_read: int = 0

    @property
    def other(self) -> float:
        return self.reload_seconds + self.deserialize_seconds

    @property
    def complete(self) -> bool:
        """The recovery ran to completion (``completed_at`` was stamped);
        an abandoned recovery leaves it at 0.0 and ``total`` clamps to
        zero, which would otherwise read as an instant recovery."""
        return self.completed_at >= self.started_at > 0.0 or (
            self.started_at == 0.0 and self.completed_at > 0.0
        )

    @property
    def total(self) -> float:
        return max(0.0, self.completed_at - self.started_at)
