"""Throughput / latency collectors (§IV-A definitions).

"Throughput is defined as the number of tuples processed by the
application within a 10-minute time window, and latency is defined as
the average processing time of these tuples."  Instantaneous latency
(§IV-B) is the per-tuple processing time during a checkpoint — here, the
full arrival-time series at the sinks, binnable around any instant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability.tracer import ensure_tracer
from repro.telemetry.quantile import exact_percentile

DEFAULT_LATENCY_PERCENTILES = (0.5, 0.95, 0.99)


def _percentile_dict(
    latencies: list[float], percentiles: tuple[float, ...]
) -> dict[str, float]:
    latencies = sorted(latencies)
    return {
        f"p{round(p * 100):d}": exact_percentile(latencies, p) for p in percentiles
    }


@dataclass(frozen=True)
class SinkSample:
    """One tuple delivered to a sink."""

    sink: str
    created_at: float
    arrived_at: float

    @property
    def latency(self) -> float:
        return self.arrived_at - self.created_at


class MetricsHub:
    """Collects sink deliveries and derives the paper's metrics.

    Run-level events (recovery start/done, unrecoverable HAUs, ...) ride
    on the observability tracer: :meth:`record_event` forwards onto
    ``tracer`` when tracing is enabled, while the legacy ``events`` list
    is kept as a cheap always-on view for the harness and tests.
    """

    def __init__(self, tracer=None):
        self.tracer = ensure_tracer(tracer)
        self.sink_samples: list[SinkSample] = []
        # per-stage processing records: (hau_id, created_at, processed_at).
        # Windowed applications (TMI's k-means, SignalGuru's episodes)
        # deliver to the sink only once per window, so per-tuple throughput
        # and latency are measured at a *probe stage* instead (§IV-A's
        # "tuples processed by the application").
        self.stage_samples: list[tuple[str, float, float]] = []
        self.events: list[tuple[float, str, str]] = []  # (time, kind, detail)

    # -- recording ----------------------------------------------------------------
    def record_sink(self, sink: str, created_at: float, arrived_at: float) -> None:
        self.sink_samples.append(SinkSample(sink, created_at, arrived_at))

    def record_stage(self, hau_id: str, created_at: float, processed_at: float) -> None:
        self.stage_samples.append((hau_id, created_at, processed_at))

    # -- probe-stage metrics ---------------------------------------------------------
    def _probe(self, probe_prefix: str, start: float, end: float | None):
        for hau_id, created, done in self.stage_samples:
            if not hau_id.startswith(probe_prefix):
                continue
            if done >= start and (end is None or done < end):
                yield created, done

    def stage_throughput(
        self, probe_prefix: str, start: float = 0.0, end: float | None = None
    ) -> int:
        return sum(1 for _ in self._probe(probe_prefix, start, end))

    def stage_latency(
        self, probe_prefix: str, start: float = 0.0, end: float | None = None
    ) -> float:
        lats = [done - created for created, done in self._probe(probe_prefix, start, end)]
        return sum(lats) / len(lats) if lats else 0.0

    def stage_latency_percentiles(
        self,
        probe_prefix: str,
        start: float = 0.0,
        end: float | None = None,
        percentiles: tuple[float, ...] = DEFAULT_LATENCY_PERCENTILES,
    ) -> dict[str, float]:
        """Exact latency percentiles at the probe stage, e.g.
        ``{"p50": ..., "p95": ..., "p99": ...}`` (0.0 for empty windows)."""
        lats = [done - created for created, done in self._probe(probe_prefix, start, end)]
        return _percentile_dict(lats, percentiles)

    def stage_latency_series(
        self, probe_prefix: str, start: float = 0.0, end: float | None = None
    ) -> list[tuple[float, float]]:
        return [(done, done - created) for created, done in self._probe(probe_prefix, start, end)]

    def stage_binned_latency(
        self, probe_prefix: str, start: float, end: float, bin_width: float
    ) -> list[tuple[float, float]]:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        bins: dict[int, list[float]] = {}
        for created, done in self._probe(probe_prefix, start, end):
            bins.setdefault(int((done - start) // bin_width), []).append(done - created)
        n_bins = int((end - start) / bin_width)
        return [
            (
                start + (b + 0.5) * bin_width,
                (sum(bins[b]) / len(bins[b])) if bins.get(b) else 0.0,
            )
            for b in range(n_bins)
        ]

    def record_event(self, time: float, kind: str, detail: str = "") -> None:
        self.events.append((time, kind, detail))
        # Legacy events ride along on the trace under the "metrics." prefix
        # (typed emissions at the call sites carry the structured form).
        if self.tracer.enabled:
            self.tracer.emit("metrics." + kind, t=time, subject=detail)

    # -- derived metrics -----------------------------------------------------------
    def throughput(self, start: float = 0.0, end: float | None = None) -> int:
        """Tuples delivered to sinks in [start, end)."""
        return sum(
            1
            for s in self.sink_samples
            if s.arrived_at >= start and (end is None or s.arrived_at < end)
        )

    def average_latency(self, start: float = 0.0, end: float | None = None) -> float:
        lats = [
            s.latency
            for s in self.sink_samples
            if s.arrived_at >= start and (end is None or s.arrived_at < end)
        ]
        return sum(lats) / len(lats) if lats else 0.0

    def latency_percentiles(
        self,
        start: float = 0.0,
        end: float | None = None,
        percentiles: tuple[float, ...] = DEFAULT_LATENCY_PERCENTILES,
    ) -> dict[str, float]:
        """Exact sink-latency percentiles over [start, end), as
        ``{"p50": ..., "p95": ..., "p99": ...}`` (0.0 for empty windows)."""
        lats = [
            s.latency
            for s in self.sink_samples
            if s.arrived_at >= start and (end is None or s.arrived_at < end)
        ]
        return _percentile_dict(lats, percentiles)

    def latency_series(
        self, start: float = 0.0, end: float | None = None
    ) -> list[tuple[float, float]]:
        """(arrival time, latency) pairs — instantaneous latency raw data."""
        return [
            (s.arrived_at, s.latency)
            for s in self.sink_samples
            if s.arrived_at >= start and (end is None or s.arrived_at < end)
        ]

    def binned_latency(
        self, start: float, end: float, bin_width: float
    ) -> list[tuple[float, float]]:
        """Average latency per time bin — the Fig. 15 series."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        bins: dict[int, list[float]] = {}
        for s in self.sink_samples:
            if start <= s.arrived_at < end:
                bins.setdefault(int((s.arrived_at - start) // bin_width), []).append(s.latency)
        out = []
        n_bins = int((end - start) / bin_width)
        for b in range(n_bins):
            lats = bins.get(b, [])
            centre = start + (b + 0.5) * bin_width
            out.append((centre, sum(lats) / len(lats) if lats else 0.0))
        return out

    def peak_binned_latency(self, start: float, end: float, bin_width: float) -> float:
        series = [v for (_t, v) in self.binned_latency(start, end, bin_width) if v > 0]
        return max(series) if series else 0.0
