"""Measurement: throughput, latency, checkpoint and recovery breakdowns."""

from repro.metrics.collectors import MetricsHub, SinkSample
from repro.metrics.breakdown import (
    CheckpointBreakdown,
    CheckpointLog,
    RecoveryBreakdown,
)

__all__ = [
    "MetricsHub",
    "SinkSample",
    "CheckpointBreakdown",
    "CheckpointLog",
    "RecoveryBreakdown",
]
