"""Compute nodes: CPU, NIC and local-disk models plus fail-stop semantics.

A :class:`Node` is the unit of failure.  Killing a node interrupts every
simulation process registered on it (fail-stop: no spurious output after
the failure instant) and breaks every channel touching it.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.simulation.core import Environment, Process
from repro.simulation.resources import Resource

# Defaults mirror the paper's EC2 setup: two 2.3 GHz cores, 1 Gbps NIC.
DEFAULT_CORES = 2
GBPS = 125_000_000  # 1 Gbps in bytes/second
DEFAULT_NIC_BW = GBPS
DEFAULT_DISK_BW = 100_000_000  # ~100 MB/s sequential commodity disk
DEFAULT_DISK_SEEK = 0.004  # 4 ms per operation


class NodeDownError(Exception):
    """Raised when an operation touches a node that has failed."""


class BandwidthPipe:
    """A serialising bandwidth resource (NIC egress or disk head).

    Transfers are serviced strictly FIFO; each holds the pipe for
    ``size / bandwidth`` (+ fixed per-op latency).  This models the key
    contention effect in the paper: 55 HAU states funnelling into one
    storage node's disk stretches a "parallel" checkpoint.
    """

    #: default service quantum: large transfers are split into chunks so the
    #: FIFO pipe interleaves fairly (a 100 MB checkpoint write must not
    #: block 1 MB ingestion writes for seconds — GFS-style chunking).
    DEFAULT_CHUNK = 4 * 1024 * 1024

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        per_op_latency: float = 0.0,
        name: str = "",
        chunk_bytes: int = DEFAULT_CHUNK,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.per_op_latency = float(per_op_latency)
        self.name = name
        self.chunk_bytes = int(chunk_bytes)
        self._res = Resource(env, capacity=1)
        self.bytes_moved = 0
        self.ops = 0

    def transfer(self, size: int, priority: int = 0):
        """Process generator: move ``size`` bytes through the pipe.

        The transfer is serviced in ``chunk_bytes`` quanta; between quanta
        the pipe is re-acquired (FIFO within a priority class), so
        concurrent transfers share bandwidth fairly and latency-sensitive
        small writes (priority 0) overtake bulk traffic (priority 1).
        """
        remaining = int(size)
        first = True
        while remaining > 0 or first:
            chunk = min(remaining, self.chunk_bytes) if remaining > 0 else 0
            req = self._res.request(priority=priority)
            try:
                yield req
                duration = chunk / self.bandwidth
                if first:
                    duration += self.per_op_latency
                if duration > 0:
                    yield self.env.timeout(duration)
            finally:
                req.cancel()
            remaining -= chunk
            first = False
        self.bytes_moved += int(size)
        self.ops += 1

    def estimate(self, size: int) -> float:
        """Uncontended service time for ``size`` bytes."""
        return self.per_op_latency + size / self.bandwidth


class Node:
    """A fail-stop compute node.

    Attributes
    ----------
    cpu:
        A :class:`Resource` with one slot per core; operators acquire a
        core for the duration of each tuple's processing cost.
    nic_out:
        Egress bandwidth pipe shared by all channels sending from here.
    disk:
        Local disk pipe (used by input preservation spill and optional
        local checkpoint copies).
    """

    def __init__(
        self,
        env: Environment,
        node_id: str,
        rack: str | None = None,
        cores: int = DEFAULT_CORES,
        nic_bw: float = DEFAULT_NIC_BW,
        disk_bw: float = DEFAULT_DISK_BW,
        disk_seek: float = DEFAULT_DISK_SEEK,
    ):
        self.env = env
        self.node_id = node_id
        self.rack = rack
        self.cpu = Resource(env, capacity=cores)
        self.nic_out = BandwidthPipe(env, nic_bw, name=f"{node_id}.nic")
        self.disk = BandwidthPipe(env, disk_bw, per_op_latency=disk_seek, name=f"{node_id}.disk")
        self.alive = True
        self.failed_at: float | None = None
        self._processes: list[Process] = []
        self._on_fail: list[Callable[["Node"], None]] = []

    # -- process management --------------------------------------------------
    def spawn(self, generator, label: str = "") -> Process:
        """Run a process *on this node*: it dies when the node fails."""
        if not self.alive:
            raise NodeDownError(f"spawn on dead node {self.node_id}")
        proc = self.env.process(generator, label=f"{self.node_id}:{label}")
        self._processes.append(proc)
        return proc

    def on_fail(self, callback: Callable[["Node"], None]) -> None:
        """Register a callback invoked at the failure instant.

        If the node is already down, the callback fires immediately —
        observers must not wait forever on a failure that already happened.
        """
        if not self.alive:
            callback(self)
        else:
            self._on_fail.append(callback)

    def fail(self, cause: Any = "fail-stop") -> None:
        """Fail-stop: interrupt all hosted processes, notify observers."""
        if not self.alive:
            return
        self.alive = False
        self.failed_at = self.env.now
        procs, self._processes = self._processes, []
        for proc in procs:
            proc.interrupt(cause)
        observers, self._on_fail = list(self._on_fail), []
        for cb in observers:
            cb(self)

    def check_alive(self) -> None:
        if not self.alive:
            raise NodeDownError(self.node_id)

    # -- CPU helper ------------------------------------------------------------
    def compute(self, seconds: float):
        """Process generator: hold one core for ``seconds`` of work."""
        self.check_alive()
        req = self.cpu.request()
        try:
            yield req
            yield self.env.timeout(seconds)
        finally:
            req.cancel()

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.node_id} {state}>"
