"""Reliable, in-order channels between nodes (the paper's TCP assumption).

A :class:`Channel` is a unidirectional stream of :class:`Message`s.  While
both endpoints are alive, delivery is FIFO with no loss or duplication
(matching the paper: "Network packets are delivered in-order and will not
be lost silently").  A node failure closes the channel: pending sends
fail, and the peer observes the break (this is how downstream neighbours
detect upstream failure, and how "a node disconnected from storage
notifies its upstream neighbour").

Transmission cost = per-message latency + size/bandwidth, serialised on
the sender's NIC egress pipe so concurrent streams from one node contend.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.cluster.node import Node
from repro.simulation.core import Environment, Event, Interrupt
from repro.simulation.resources import Store

DEFAULT_LATENCY = 0.0005  # 500 us intra-DC one-way


class ChannelClosedError(Exception):
    """Send or receive on a channel whose endpoint has failed."""


_MSG_SEQ = 0


class Message:
    """A sized payload travelling over a channel.

    A plain slots class rather than a dataclass: one is built per wire
    message, and the generated ``__init__`` of a frozen dataclass (four
    ``object.__setattr__`` calls) is measurable on the tuple hot path.
    Treat instances as immutable.
    """

    __slots__ = ("payload", "size", "sent_at", "seq")

    def __init__(self, payload: Any, size: int, sent_at: float = 0.0, seq: int = 0):
        self.payload = payload
        self.size = size  # nominal bytes on the wire
        self.sent_at = sent_at
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message(size={self.size}, sent_at={self.sent_at}, seq={self.seq})"


class Channel:
    """Unidirectional reliable FIFO pipe ``src -> dst``."""

    def __init__(
        self,
        env: Environment,
        src: Node,
        dst: Node,
        latency: float = DEFAULT_LATENCY,
        name: str = "",
        capacity: float = float("inf"),
        batch_quantum: float = 0.0,
    ):
        self.env = env
        self.src = src
        self.dst = dst
        self.latency = latency
        self.name = name or f"{src.node_id}->{dst.node_id}"
        # Bounded buffers give TCP-like backpressure: a stalled receiver
        # fills the inbox (socket buffer), the pump blocks, the outbox
        # (send buffer) fills, and send() events stop firing.
        self._inbox: Store = Store(env, capacity=capacity)
        self._outbox: Store = Store(env, capacity=capacity)
        self.closed = False
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self.batches_flushed = 0
        # Tuple coalescing (Nagle-style): offer() gathers same-edge tuples
        # for up to batch_quantum simulated seconds, then one envelope
        # message carries them all (cost: one latency + summed
        # serialisation).  0.0 disables batching entirely — offer() is
        # never called and send() only pays one truthiness check.
        self.batch_quantum = batch_quantum
        self._batch: list = []
        self._batch_epoch = 0
        self._on_break: list[Callable[["Channel"], None]] = []
        self._pump = src.spawn(self._run(), label=f"chan:{self.name}")
        src.on_fail(lambda _n: self.close())
        dst.on_fail(lambda _n: self.close())

    # -- public API -----------------------------------------------------------
    def send(self, payload: Any, size: int) -> Event:
        """Queue a message; returns the put event (fires on acceptance).

        If tuples are pending in the coalescing buffer they are flushed
        first, so this message (e.g. a cascading checkpoint token) never
        overtakes data offered before it.
        """
        global _MSG_SEQ
        if self.closed:
            raise ChannelClosedError(self.name)
        if self._batch:
            self.flush()
        _MSG_SEQ += 1
        msg = Message(payload=payload, size=int(size), sent_at=self.env.now, seq=_MSG_SEQ)
        return self._outbox.put(msg)

    def offer(self, payload: Any, size: int) -> None:
        """Add a tuple to the coalescing buffer (batched mode only).

        Synchronous — no event, no outbox interaction.  The first offer
        of a batch arms a flush ``batch_quantum`` seconds out; everything
        offered meanwhile rides in the same envelope.  Acceptance is
        deferred to the flush, so batched senders see backpressure at
        quantum granularity rather than per tuple.
        """
        if self.closed:
            raise ChannelClosedError(self.name)
        batch = self._batch
        batch.append((payload, int(size)))
        if len(batch) == 1:
            epoch = self._batch_epoch
            timer = self.env.timeout(self.batch_quantum)
            timer.add_callback(
                lambda _ev: self.flush() if self._batch_epoch == epoch else None
            )

    def flush(self) -> None:
        """Wrap the pending batch into one envelope message, now."""
        # Imported here, not at module top: repro.dsps imports this module
        # (hau -> channel), so the reverse edge must stay lazy.
        from repro.dsps.tuples import BatchEnvelope

        self._batch_epoch += 1
        batch = self._batch
        if not batch or self.closed:
            self._batch = []
            return
        self._batch = []
        global _MSG_SEQ
        _MSG_SEQ += 1
        envelope = BatchEnvelope(
            [p for (p, _s) in batch], size=sum(s for (_p, s) in batch)
        )
        msg = Message(
            payload=envelope, size=envelope.size, sent_at=self.env.now, seq=_MSG_SEQ
        )
        self.batches_flushed += 1
        if self.env.telemetry.enabled:
            self.env.telemetry.counter("ms_batch_envelopes_total").inc()
            self.env.telemetry.counter("ms_batch_tuples_total").inc(len(batch))
        self._outbox.put(msg)

    def pending_batch_tuples(self) -> list[Any]:
        """Payloads offered but not yet flushed (checkpoint inspection)."""
        return [p for (p, _s) in self._batch]

    def send_front(self, payload: Any, size: int) -> None:
        """Send ``payload`` ahead of everything queued (token insertion).

        Meteor Shower places 1-hop tokens "at the head of the queue" of
        the output buffers so they are not delayed behind backpressured
        data (§III-B).  Bypasses the outbox capacity (tokens are tiny).
        """
        global _MSG_SEQ
        if self.closed:
            raise ChannelClosedError(self.name)
        _MSG_SEQ += 1
        msg = Message(payload=payload, size=int(size), sent_at=self.env.now, seq=_MSG_SEQ)
        self._outbox.put_front(msg)

    def recv(self) -> Event:
        """Event that fires with the next delivered :class:`Message`.

        After a close, any messages already delivered drain first; then the
        receiver sees :class:`ChannelClosedError`.
        """
        if self.closed and not len(self._inbox):
            ev = Event(self.env, name=f"recv-closed:{self.name}")
            ev.fail(ChannelClosedError(self.name))
            return ev
        return self._inbox.get()

    @property
    def in_flight(self) -> int:
        return len(self._outbox)

    @property
    def pending(self) -> int:
        """Delivered but not yet consumed messages."""
        return len(self._inbox)

    def on_break(self, callback: Callable[["Channel"], None]) -> None:
        self._on_break.append(callback)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # Drop unflushed offers: the endpoint failed, and preservation
        # hooks for these tuples already ran at emit time.
        self._batch = []
        self._batch_epoch += 1
        if self._pump.is_alive:
            self._pump.interrupt("channel-closed")
        # Wake blocked receivers with an error.
        while self._inbox._getters:
            getter = self._inbox._getters.popleft()
            getter.fail(ChannelClosedError(self.name))
        observers, self._on_break = list(self._on_break), []
        for cb in observers:
            cb(self)

    # -- internals --------------------------------------------------------------
    def _run(self):
        env = self.env
        outbox_get = self._outbox.get
        inbox_put = self._inbox.put
        nic = self.src.nic_out
        nic_res = nic._res
        dst = self.dst
        try:
            while True:
                msg = yield outbox_get()
                # serialise on sender NIC, then propagate.  The common
                # single-chunk case of BandwidthPipe.transfer is inlined
                # (identical request/timeout events and float arithmetic);
                # multi-chunk bulk falls back to the generic generator.
                size = msg.size
                if 0 < size <= nic.chunk_bytes:
                    req = nic_res.request()
                    try:
                        yield req
                        duration = size / nic.bandwidth + nic.per_op_latency
                        if duration > 0:
                            yield env.timeout(duration)
                    finally:
                        req.cancel()
                    nic.bytes_moved += size
                    nic.ops += 1
                else:
                    yield from nic.transfer(size)
                # self.latency is read per message, not hoisted: the
                # failure injector mutates it live to model partitions.
                yield env.timeout(self.latency)
                if self.closed or not dst.alive:
                    return
                yield inbox_put(msg)
                self.messages_delivered += 1
                self.bytes_delivered += size
        except Interrupt:
            return
