"""Reliable, in-order channels between nodes (the paper's TCP assumption).

A :class:`Channel` is a unidirectional stream of :class:`Message`s.  While
both endpoints are alive, delivery is FIFO with no loss or duplication
(matching the paper: "Network packets are delivered in-order and will not
be lost silently").  A node failure closes the channel: pending sends
fail, and the peer observes the break (this is how downstream neighbours
detect upstream failure, and how "a node disconnected from storage
notifies its upstream neighbour").

Transmission cost = per-message latency + size/bandwidth, serialised on
the sender's NIC egress pipe so concurrent streams from one node contend.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.node import Node
from repro.simulation.core import Environment, Event, Interrupt
from repro.simulation.resources import Store

DEFAULT_LATENCY = 0.0005  # 500 us intra-DC one-way


class ChannelClosedError(Exception):
    """Send or receive on a channel whose endpoint has failed."""


_MSG_SEQ = 0


@dataclass(frozen=True)
class Message:
    """A sized payload travelling over a channel."""

    payload: Any
    size: int  # nominal bytes on the wire
    sent_at: float = 0.0
    seq: int = field(default=0, compare=False)


class Channel:
    """Unidirectional reliable FIFO pipe ``src -> dst``."""

    def __init__(
        self,
        env: Environment,
        src: Node,
        dst: Node,
        latency: float = DEFAULT_LATENCY,
        name: str = "",
        capacity: float = float("inf"),
    ):
        self.env = env
        self.src = src
        self.dst = dst
        self.latency = latency
        self.name = name or f"{src.node_id}->{dst.node_id}"
        # Bounded buffers give TCP-like backpressure: a stalled receiver
        # fills the inbox (socket buffer), the pump blocks, the outbox
        # (send buffer) fills, and send() events stop firing.
        self._inbox: Store = Store(env, capacity=capacity)
        self._outbox: Store = Store(env, capacity=capacity)
        self.closed = False
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self._on_break: list[Callable[["Channel"], None]] = []
        self._pump = src.spawn(self._run(), label=f"chan:{self.name}")
        src.on_fail(lambda _n: self.close())
        dst.on_fail(lambda _n: self.close())

    # -- public API -----------------------------------------------------------
    def send(self, payload: Any, size: int) -> Event:
        """Queue a message; returns the put event (fires on acceptance)."""
        global _MSG_SEQ
        if self.closed:
            raise ChannelClosedError(self.name)
        _MSG_SEQ += 1
        msg = Message(payload=payload, size=int(size), sent_at=self.env.now, seq=_MSG_SEQ)
        return self._outbox.put(msg)

    def send_front(self, payload: Any, size: int) -> None:
        """Send ``payload`` ahead of everything queued (token insertion).

        Meteor Shower places 1-hop tokens "at the head of the queue" of
        the output buffers so they are not delayed behind backpressured
        data (§III-B).  Bypasses the outbox capacity (tokens are tiny).
        """
        global _MSG_SEQ
        if self.closed:
            raise ChannelClosedError(self.name)
        _MSG_SEQ += 1
        msg = Message(payload=payload, size=int(size), sent_at=self.env.now, seq=_MSG_SEQ)
        self._outbox.put_front(msg)

    def recv(self) -> Event:
        """Event that fires with the next delivered :class:`Message`.

        After a close, any messages already delivered drain first; then the
        receiver sees :class:`ChannelClosedError`.
        """
        if self.closed and not len(self._inbox):
            ev = Event(self.env, name=f"recv-closed:{self.name}")
            ev.fail(ChannelClosedError(self.name))
            return ev
        return self._inbox.get()

    @property
    def in_flight(self) -> int:
        return len(self._outbox)

    @property
    def pending(self) -> int:
        """Delivered but not yet consumed messages."""
        return len(self._inbox)

    def on_break(self, callback: Callable[["Channel"], None]) -> None:
        self._on_break.append(callback)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._pump.is_alive:
            self._pump.interrupt("channel-closed")
        # Wake blocked receivers with an error.
        while self._inbox._getters:
            getter = self._inbox._getters.popleft()
            getter.fail(ChannelClosedError(self.name))
        observers, self._on_break = list(self._on_break), []
        for cb in observers:
            cb(self)

    # -- internals --------------------------------------------------------------
    def _run(self):
        try:
            while True:
                msg = yield self._outbox.get()
                # serialise on sender NIC, then propagate
                yield from self.src.nic_out.transfer(msg.size)
                yield self.env.timeout(self.latency)
                if self.closed or not self.dst.alive:
                    return
                yield self._inbox.put(msg)
                self.messages_delivered += 1
                self.bytes_delivered += msg.size
        except Interrupt:
            return
