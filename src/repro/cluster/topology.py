"""Data-center topology: racks, power domains, spare nodes.

The paper's failure study (Table I / §II-B1) is about a 2400+-node Google
data center organised as 30+ racks of ~80 blade servers; its evaluation
runs on 56 EC2 nodes.  :class:`DataCenter` supports both: an arbitrary
number of racks, a shared-storage node, and a pool of spare nodes used to
restart HAUs after failures (the paper restarts failed HAUs "on other
healthy nodes").
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.cluster.channel import Channel, DEFAULT_LATENCY
from repro.cluster.node import (
    DEFAULT_CORES,
    DEFAULT_NIC_BW,
    Node,
)
from repro.simulation.core import Environment, SimulationError


@dataclass
class ClusterSpec:
    """Shape and hardware parameters of a simulated cluster."""

    workers: int = 55
    spares: int = 8
    racks: int = 4
    cores_per_node: int = DEFAULT_CORES
    nic_bw: float = DEFAULT_NIC_BW
    # 2012 EC2 m1-class instance storage / EBS: the paper's Fig. 14/16
    # checkpoint and recovery times imply ~40 MB/s effective at the shared
    # storage node and ~60 MB/s on local instance disks.
    disk_bw: float = 60_000_000.0
    storage_disk_bw: float = 40_000_000.0
    latency: float = DEFAULT_LATENCY

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("cluster needs at least one worker")
        if self.racks < 1:
            raise ValueError("cluster needs at least one rack")


class Rack:
    """A failure-correlation domain (top-of-rack switch + power feed)."""

    def __init__(self, rack_id: str):
        self.rack_id = rack_id
        self.nodes: list[Node] = []

    def fail_all(self, cause: str = "rack-failure") -> list[Node]:
        """Rack switch/power failure: every hosted node fail-stops."""
        victims = [n for n in self.nodes if n.alive]
        for node in victims:
            node.fail(cause)
        return victims

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Rack {self.rack_id} nodes={len(self.nodes)}>"


class DataCenter:
    """Nodes + racks + storage node + spare pool + channel factory."""

    def __init__(self, env: Environment, spec: ClusterSpec | None = None):
        self.env = env
        self.spec = spec or ClusterSpec()
        self.racks: list[Rack] = [Rack(f"rack{i}") for i in range(self.spec.racks)]
        self.workers: list[Node] = []
        self.spares: list[Node] = []
        self._channels: list[Channel] = []

        def make(node_id: str, rack: Rack, disk_bw: float) -> Node:
            node = Node(
                env,
                node_id,
                rack=rack.rack_id,
                cores=self.spec.cores_per_node,
                nic_bw=self.spec.nic_bw,
                disk_bw=disk_bw,
            )
            rack.nodes.append(node)
            return node

        for i in range(self.spec.workers):
            rack = self.racks[i % self.spec.racks]
            self.workers.append(make(f"w{i}", rack, self.spec.disk_bw))
        for i in range(self.spec.spares):
            rack = self.racks[i % self.spec.racks]
            self.spares.append(make(f"spare{i}", rack, self.spec.disk_bw))
        # Storage (and controller) node lives in rack 0, faster disks.
        self.storage_node = make("storage", self.racks[0], self.spec.storage_disk_bw)

    # -- lookups -----------------------------------------------------------------
    @property
    def all_nodes(self) -> list[Node]:
        return self.workers + self.spares + [self.storage_node]

    def node(self, node_id: str) -> Node:
        for n in self.all_nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(node_id)

    def rack_of(self, node: Node) -> Rack:
        for rack in self.racks:
            if node in rack.nodes:
                return rack
        raise KeyError(node.node_id)

    def alive_workers(self) -> list[Node]:
        return [n for n in self.workers if n.alive]

    def claim_spare(self) -> Node:
        """Take a healthy spare out of the pool (for HAU restart)."""
        for i, node in enumerate(self.spares):
            if node.alive:
                return self.spares.pop(i)
        raise SimulationError("no healthy spare nodes left")

    def spares_available(self) -> int:
        return sum(1 for n in self.spares if n.alive)

    # -- channels ----------------------------------------------------------------
    def connect(
        self,
        src: Node,
        dst: Node,
        name: str = "",
        capacity: float = float("inf"),
        batch_quantum: float = 0.0,
    ) -> Channel:
        chan = Channel(
            self.env,
            src,
            dst,
            latency=self.spec.latency,
            name=name,
            capacity=capacity,
            batch_quantum=batch_quantum,
        )
        self._channels.append(chan)
        return chan

    def channels(self) -> Iterator[Channel]:
        return iter(self._channels)
