"""Cluster substrate: nodes, racks, links, reliable channels, topology.

Models a commodity data center of the kind the paper targets (EC2-like:
two-core nodes, 1 Gbps Ethernet, rack-organised).  All quantities are
simulated — see DESIGN.md "Simulation-time conventions".
"""

from repro.cluster.node import Node, NodeDownError
from repro.cluster.channel import Channel, ChannelClosedError, Message
from repro.cluster.topology import DataCenter, Rack, ClusterSpec

__all__ = [
    "Node",
    "NodeDownError",
    "Channel",
    "ChannelClosedError",
    "Message",
    "DataCenter",
    "Rack",
    "ClusterSpec",
]
