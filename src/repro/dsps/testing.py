"""Small deterministic operators and graphs for tests and examples.

These are not toys in the pejorative sense: :class:`WindowSum` has the
batching state profile (grow, emit, reset) that application-aware
checkpointing exploits, and :class:`VerifySink` checkpoints its full
delivery log so exactly-once semantics can be asserted bit-for-bit after
failure and recovery.
"""

from __future__ import annotations


from repro.dsps.operator import Emit, Operator, SinkOperator, SourceOperator


class IntervalSource(SourceOperator):
    """Emits ``count`` integer tuples at a fixed interval (deterministic)."""

    def __init__(
        self,
        count: int = 100,
        interval: float = 0.1,
        size: int = 10_000,
        start: int = 0,
        name: str = "",
    ):
        super().__init__(name)
        self.count = count
        self.interval = interval
        self.out_size = size
        self.start = start

    def generate(self):
        for i in range(self.start, self.start + self.count):
            yield (self.interval, Emit(payload=i, size=self.out_size, key=i))


class WindowSum(Operator):
    """Accumulates ``window`` tuples, then emits their sum and resets.

    State size follows the paper's batch-processing sawtooth: it ramps up
    within a window and collapses to (near) zero at the boundary.
    """

    state_attrs = ("pool", "windows_emitted")

    def __init__(self, window: int = 10, name: str = ""):
        super().__init__(name)
        self.window = window
        self.pool: list = []
        self.windows_emitted = 0

    def on_tuple(self, port, tup):
        self.pool.append(tup)
        if len(self.pool) >= self.window:
            total = sum(t.payload for t in self.pool)
            size = max(64, self.pool[0].size)
            self.pool = []
            self.windows_emitted += 1
            return [Emit(payload=total, size=size, key=self.windows_emitted)]
        return []


class PassThrough(Operator):
    """Stateless 1:1 operator with an optional payload transform."""

    def __init__(self, fn=None, name: str = ""):
        super().__init__(name)
        self.fn = fn or (lambda x: x)

    def on_tuple(self, port, tup):
        return [Emit(payload=self.fn(tup.payload), size=tup.size, key=tup.key)]


class VerifySink(SinkOperator):
    """A sink whose full delivery log is checkpointed state.

    After a rollback the log is restored to the consistent cut, so the
    final log of a failed-and-recovered run must equal the failure-free
    run's — the exactly-once assertion.
    """

    state_attrs = ("received_count", "payload_log")

    def __init__(self, name: str = ""):
        super().__init__(name, keep_payloads=False)
        self.payload_log: list = []

    def on_tuple(self, port, tup):
        self.received_count += 1
        self.payload_log.append(tup.payload)
        return []


def make_chain_graph(
    source_count: int = 60,
    interval: float = 0.05,
    window: int = 5,
    tuple_size: int = 50_000,
):
    """source -> windowsum -> passthrough -> sink, with a holder dict."""
    from repro.dsps.graph import QueryGraph

    holder: dict = {}

    def make_sink():
        s = VerifySink()
        holder["sink"] = s
        return [s]

    g = QueryGraph()
    g.add_hau(
        "src",
        lambda: [IntervalSource(count=source_count, interval=interval, size=tuple_size)],
        is_source=True,
    )
    g.add_hau("agg", lambda: [WindowSum(window=window)])
    g.add_hau("mid", lambda: [PassThrough(fn=lambda x: x * 2)])
    g.add_hau("sink", make_sink, is_sink=True)
    g.connect("src", "agg")
    g.connect("agg", "mid")
    g.connect("mid", "sink")
    return g, holder


def make_diamond_graph(
    source_count: int = 60,
    interval: float = 0.05,
    window: int = 5,
    tuple_size: int = 50_000,
):
    """Two sources joining into one aggregate, then a sink (Fig. 6 shape)."""
    from repro.dsps.graph import QueryGraph

    holder: dict = {}

    def make_sink():
        s = VerifySink()
        holder["sink"] = s
        return [s]

    class TaggedJoin(Operator):
        state_attrs = ("counts",)

        def __init__(self):
            super().__init__()
            self.counts = {0: 0, 1: 0}

        def on_tuple(self, port, tup):
            self.counts[port] = self.counts.get(port, 0) + 1
            return [Emit(payload=(port, tup.payload), size=tup.size, key=tup.key)]

    g = QueryGraph()
    g.add_hau(
        "s0",
        lambda: [IntervalSource(count=source_count, interval=interval, size=tuple_size)],
        is_source=True,
    )
    g.add_hau(
        "s1",
        lambda: [
            IntervalSource(
                count=source_count, interval=interval * 1.3, size=tuple_size, start=1000
            )
        ],
        is_source=True,
    )
    g.add_hau("a", lambda: [WindowSum(window=window)])
    g.add_hau("b", lambda: [PassThrough()])
    g.add_hau("join", lambda: [TaggedJoin()])
    g.add_hau("sink", make_sink, is_sink=True)
    g.connect("s0", "a")
    g.connect("s1", "b")
    g.connect("a", "join", dst_port=0)
    g.connect("b", "join", dst_port=1)
    g.connect("join", "sink")
    return g, holder
